//! `lcm-cli` — the workspace's command-line front door for the analysis
//! daemon: `lcm-cli serve` runs an `lcm-serve` daemon on a Unix socket,
//! `lcm-cli client` talks to one (one JSON line per request, one per
//! reply, printed verbatim so shell pipelines can post-process it).
//!
//! ```text
//! lcm-cli serve  --socket PATH [--tcp ADDR] [--workers N] [--queue N]
//!                [--cache-dir DIR] [--jobs N] [--trace-out PATH]
//! lcm-cli client (--socket PATH | --tcp ADDR) status
//! lcm-cli client (--socket PATH | --tcp ADDR) stats
//! lcm-cli client (--socket PATH | --tcp ADDR) metrics    # Prometheus text, not JSON
//! lcm-cli client (--socket PATH | --tcp ADDR) shutdown
//! lcm-cli client (--socket PATH | --tcp ADDR) analyze [--engine pht|stl] [--retries N]
//!                (--file PATH | --source SRC | -)   # `-` reads stdin
//! ```
//!
//! Exit status: 0 on success, 1 on a server/protocol error, 2 on a
//! usage error.

use std::io::Read;
use std::process::ExitCode;

use lcm::detect::EngineKind;
use lcm::serve::{Client, ServeConfig, Server};

fn main() -> ExitCode {
    // When re-executed by a fleet supervisor (LCM_FLEET_WORKER=1) this
    // process is an analysis worker, not a CLI: divert before parsing.
    lcm::fleet::maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("store") => store(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        // Hidden: the fleet worker entry point (`lcm-cli worker`), used
        // as an explicit `worker_cmd` target. Speaks the length-delimited
        // task protocol on stdin/stdout and never returns.
        Some("worker") => lcm::fleet::worker_main(),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage_error("expected a subcommand: serve | client | store | fuzz"),
    }
}

const USAGE: &str = "\
lcm-cli — analysis daemon and client

  lcm-cli serve  --socket PATH [--tcp ADDR] [--workers N] [--queue N]
                 [--cache-dir DIR] [--jobs N] [--fleet N] [--trace-out PATH]
                 [--events-out PATH]
  lcm-cli client (--socket PATH | --tcp ADDR) status | stats | metrics | shutdown
  lcm-cli client (--socket PATH | --tcp ADDR) analyze [--engine pht|stl] [--retries N]
                 (--file PATH | --source SRC | -)
  lcm-cli store  compact --cache-dir DIR
  lcm-cli fuzz   [--seed N] [--count N] [--jobs N] [--quick]

`serve` runs until a client sends `shutdown`, SIGTERM, or SIGINT (both
signals drain queued requests before exiting). `--tcp ADDR`
additionally listens on a TCP address (`host:port`; `host:0` picks a
free port) with the identical protocol. `--cache-dir` persists results
in DIR/results.lcmstore so repeat submissions are cache hits.
`--fleet N` runs analyses in N supervised child processes (crash
isolation: a worker segfault degrades one function instead of killing
the daemon). `--trace-out` records a Chrome trace of the daemon's
lifetime, written on shutdown. `--events-out` appends a JSONL
supervision event log (kills, restarts, steals, redeliveries, crash
forensics) in fleet mode. `client metrics` prints Prometheus
exposition text (the one reply that is not a JSON line).
`client analyze -` reads mini-C source from stdin. `store compact`
rewrites DIR/results.lcmstore keeping only the live (latest) record
per fingerprint, via an atomic temp-file-plus-rename. `fuzz` runs the
differential sweep of DESIGN.md §6i: COUNT seed-keyed random programs
through the speculative reference oracle and all three static engines,
re-verifies repairs, and certifies fence minimality on a sample; it
prints a JSON report line and exits 1 on any soundness mismatch
(shrunk counterexamples go to stderr). `--quick` shrinks the oracle's
input lattice and choice budget for CI latency.
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Pulls `--flag VALUE` / `--flag=VALUE` out of `args`, leaving the rest.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let prefix = format!("{flag}=");
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&prefix) {
            let v = v.to_string();
            args.remove(i);
            return Ok(Some(v));
        }
        if args[i] == flag {
            if i + 1 >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            args.remove(i);
            return Ok(Some(args.remove(i)));
        }
        i += 1;
    }
    Ok(None)
}

fn parse_num(v: &str, flag: &str) -> Result<usize, String> {
    v.parse()
        .map_err(|_| format!("{flag} expects a number, got {v:?}"))
}

fn serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let parsed = (|| -> Result<(ServeConfig, Option<String>), String> {
        let socket = take_value(&mut args, "--socket")?
            .ok_or_else(|| "serve needs --socket PATH".to_string())?;
        let trace_out = take_value(&mut args, "--trace-out")?;
        let mut config = ServeConfig::new(socket);
        config.tcp = take_value(&mut args, "--tcp")?;
        if let Some(v) = take_value(&mut args, "--workers")? {
            config.workers = parse_num(&v, "--workers")?;
        }
        if let Some(v) = take_value(&mut args, "--queue")? {
            config.queue_cap = parse_num(&v, "--queue")?;
        }
        if let Some(v) = take_value(&mut args, "--jobs")? {
            config.detector.jobs = parse_num(&v, "--jobs")?;
        }
        if let Some(v) = take_value(&mut args, "--cache-dir")? {
            config.cache_dir = Some(v.into());
        }
        if let Some(v) = take_value(&mut args, "--fleet")? {
            config.fleet = parse_num(&v, "--fleet")?;
        }
        if let Some(v) = take_value(&mut args, "--events-out")? {
            config.events_out = Some(v.into());
        }
        config.handle_signals = true;
        if let Some(extra) = args.first() {
            return Err(format!("unknown serve argument {extra:?}"));
        }
        Ok((config, trace_out))
    })();
    let (config, trace_out) = match parsed {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    eprintln!(
        "lcm-serve: listening on {} (cache: {})",
        config.socket.display(),
        config
            .cache_dir
            .as_ref()
            .map_or("disabled".to_string(), |d| d.display().to_string()),
    );
    if trace_out.is_some() {
        lcm::obs::trace::enable();
    }
    let outcome = Server::bind(config).and_then(|server| {
        if let Some(addr) = server.tcp_addr() {
            eprintln!("lcm-serve: listening on tcp {addr}");
        }
        server.run()
    });
    if let Some(path) = trace_out {
        lcm::obs::trace::disable();
        match lcm::obs::trace::export_to_file(std::path::Path::new(&path)) {
            Ok(()) => eprintln!("lcm-serve: trace written to {path}"),
            Err(e) => eprintln!("lcm-serve: writing trace to {path}: {e}"),
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lcm-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn store(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    if args.first().map(String::as_str) != Some("compact") {
        return usage_error("store needs a command: compact");
    }
    args.remove(0);
    let dir = match take_value(&mut args, "--cache-dir") {
        Ok(Some(dir)) => dir,
        Ok(None) => return usage_error("store compact needs --cache-dir DIR"),
        Err(e) => return usage_error(&e),
    };
    if let Some(extra) = args.first() {
        return usage_error(&format!("unknown store argument {extra:?}"));
    }
    let path = std::path::Path::new(&dir).join("results.lcmstore");
    let run = lcm::store::Store::open(&path).and_then(|store| store.compact());
    match run {
        Ok(live) => {
            println!("compacted {}: {live} live record(s)", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lcm-cli: compacting {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    use lcm::core::jsonw::Json;
    let mut args = args.to_vec();
    let parsed = (|| -> Result<lcm::fuzz::FuzzConfig, String> {
        let mut cfg = lcm::fuzz::FuzzConfig::default();
        if let Some(v) = take_value(&mut args, "--seed")? {
            cfg.seed = v
                .parse()
                .map_err(|_| format!("--seed expects a number, got {v:?}"))?;
        }
        if let Some(v) = take_value(&mut args, "--count")? {
            cfg.count = parse_num(&v, "--count")?;
        }
        if let Some(v) = take_value(&mut args, "--jobs")? {
            cfg.jobs = parse_num(&v, "--jobs")?;
        }
        if let Some(at) = args.iter().position(|a| a == "--quick") {
            args.remove(at);
            cfg.quick = true;
        }
        if let Some(extra) = args.first() {
            return Err(format!("unknown fuzz argument {extra:?}"));
        }
        Ok(cfg)
    })();
    let cfg = match parsed {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    eprintln!(
        "lcm-fuzz: sweeping {} programs (seed {}, {})",
        cfg.count,
        cfg.seed,
        if cfg.quick {
            "quick oracle"
        } else {
            "full oracle"
        },
    );
    let report = lcm::fuzz::run_sweep(&cfg);
    for m in &report.mismatches {
        eprintln!(
            "lcm-fuzz: MISMATCH at seed {} index {} — {:?} engine clean, oracle leaks; shrunk:\n{}",
            m.seed, m.index, m.engine, m.shrunk_source
        );
    }
    let num = |n: usize| Json::Num(n as f64);
    let line = Json::Obj(vec![
        ("ok".into(), Json::Bool(report.ok())),
        ("seed".into(), Json::Num(cfg.seed as f64)),
        ("programs".into(), num(report.programs)),
        ("compile_failures".into(), num(report.compile_failures)),
        ("arch_leaky".into(), num(report.arch_leaky)),
        ("spec_leaky".into(), num(report.spec_leaky)),
        ("secure".into(), num(report.secure)),
        (
            "engine_flagged".into(),
            Json::Arr(report.engine_flagged.iter().map(|&n| num(n)).collect()),
        ),
        ("overapprox".into(), Json::Num(report.overapprox as f64)),
        ("mismatches".into(), num(report.mismatches.len())),
        ("repairs_checked".into(), num(report.repairs_checked)),
        ("repairs_clean".into(), num(report.repairs_clean)),
        (
            "repairs_oracle_clean".into(),
            num(report.repairs_oracle_clean),
        ),
        ("minimality_checked".into(), num(report.minimality_checked)),
        (
            "minimality_certified".into(),
            num(report.minimality_certified),
        ),
    ]);
    println!("{}", line.render());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn client(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<String, String> {
        let socket = take_value(&mut args, "--socket")?;
        let tcp = take_value(&mut args, "--tcp")?;
        let retries = match take_value(&mut args, "--retries")? {
            Some(v) => parse_num(&v, "--retries")?,
            None => 1,
        };
        let client = match (socket, tcp) {
            (Some(path), None) => Client::new(path),
            (None, Some(addr)) => Client::tcp(addr),
            _ => return Err("client needs exactly one of --socket PATH or --tcp ADDR".into()),
        }
        .retries(retries);
        let cmd = if args.is_empty() {
            return Err(
                "client needs a command: status | stats | metrics | shutdown | analyze".into(),
            );
        } else {
            args.remove(0)
        };
        let reply = match cmd.as_str() {
            "status" => client.status(),
            "stats" => client.stats(),
            "metrics" => {
                // The one non-JSON reply: raw Prometheus text, printed
                // verbatim (no `.render()` round-trip).
                if let Some(extra) = args.first() {
                    return Err(format!("unknown client argument {extra:?}"));
                }
                return client
                    .metrics()
                    .map(|text| text.trim_end().to_string())
                    .map_err(|e| format!("request failed: {e}"));
            }
            "shutdown" => client.shutdown(),
            "analyze" => {
                let engine = match take_value(&mut args, "--engine")? {
                    None => EngineKind::Pht,
                    Some(name) => lcm::serve::wire::engine_of_name(&name)
                        .ok_or_else(|| format!("unknown engine {name:?} (pht | stl)"))?,
                };
                let file = take_value(&mut args, "--file")?;
                let source = take_value(&mut args, "--source")?;
                let stdin = args.iter().any(|a| a == "-");
                args.retain(|a| a != "-");
                match (source, file, stdin) {
                    (Some(src), None, false) => client.analyze_source(&src, engine),
                    (None, Some(path), false) => client.analyze_file(&path, engine),
                    (None, None, true) => {
                        let mut src = String::new();
                        std::io::stdin()
                            .read_to_string(&mut src)
                            .map_err(|e| format!("reading stdin: {e}"))?;
                        client.analyze_source(&src, engine)
                    }
                    _ => {
                        return Err(
                            "analyze needs exactly one of --file PATH, --source SRC, or -".into(),
                        )
                    }
                }
            }
            other => return Err(format!("unknown client command {other:?}")),
        };
        if let Some(extra) = args.first() {
            return Err(format!("unknown client argument {extra:?}"));
        }
        reply
            .map(|json| json.render())
            .map_err(|e| format!("request failed: {e}"))
    })();
    match run {
        Ok(reply) => {
            println!("{reply}");
            ExitCode::SUCCESS
        }
        Err(e) if e.starts_with("request failed:") => {
            eprintln!("lcm-cli: {e}");
            ExitCode::FAILURE
        }
        Err(e) => usage_error(&e),
    }
}
