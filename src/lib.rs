//! Facade crate for the LCM workspace: re-exports every subsystem.
//!
//! This workspace reproduces *"Axiomatic Hardware-Software Contracts for
//! Security"* (Mosier, Lachnitt, Nemati, Trippel — ISCA 2022): leakage
//! containment models (LCMs), the subrosa-style litmus toolkit, and the
//! Clou-style static leakage detector with fence-insertion repair.
//!
//! # Quickstart
//!
//! ```
//! use lcm::minic;
//! use lcm::detect::{Detector, EngineKind, DetectorConfig};
//!
//! let src = r#"
//!     int A[16]; int B[256]; int size_A; int tmp;
//!     void victim(int y) {
//!         int x;
//!         if (y < size_A) {
//!             x = A[y];
//!             tmp = tmp & B[x];
//!         }
//!     }
//! "#;
//! let module = minic::compile(src).expect("compiles");
//! let report = Detector::new(DetectorConfig::default())
//!     .analyze_module(&module, EngineKind::Pht);
//! assert!(report.functions[0].transmitters.iter().any(|t| t.class.is_universal()));
//! ```

pub use lcm_aeg as aeg;
pub use lcm_core as core;
pub use lcm_corpus as corpus;
pub use lcm_detect as detect;
pub use lcm_fleet as fleet;
pub use lcm_fuzz as fuzz;
pub use lcm_haunted as haunted;
pub use lcm_ir as ir;
pub use lcm_litmus as litmus;
pub use lcm_minic as minic;
pub use lcm_obs as obs;
pub use lcm_relalg as relalg;
pub use lcm_sat as sat;
pub use lcm_serve as serve;
pub use lcm_store as store;

use lcm_core::govern::AnalysisError;
use lcm_detect::{Detector, EngineKind, ModuleReport};

/// Compiles mini-C source and analyzes every public function with the
/// given engine.
///
/// Front-end failures surface as [`AnalysisError::MalformedIr`] rather
/// than a panic, mirroring how the detector degrades individual
/// functions whose IR cannot be built.
///
/// # Errors
///
/// Returns [`AnalysisError::MalformedIr`] when `src` does not compile.
pub fn analyze_source(
    src: &str,
    detector: &Detector,
    engine: EngineKind,
) -> Result<ModuleReport, AnalysisError> {
    let module = minic::compile(src).map_err(AnalysisError::from)?;
    Ok(detector.analyze_module(&module, engine))
}

/// [`analyze_source`] routed through a content-addressed result store:
/// functions whose fingerprint (canonical IR + findings-affecting
/// config) is already in `store` are served from it without running an
/// engine, and fresh completed results are inserted for next time.
///
/// Each [`detect::FunctionReport::cache`] records whether that function
/// hit, missed, or bypassed the store. Warm re-runs of unchanged source
/// are all hits and byte-identical in their findings.
///
/// # Errors
///
/// Returns [`AnalysisError::MalformedIr`] when `src` does not compile.
pub fn analyze_source_cached(
    src: &str,
    detector: &Detector,
    engine: EngineKind,
    store: &store::Store,
) -> Result<ModuleReport, AnalysisError> {
    let module = minic::compile(src).map_err(AnalysisError::from)?;
    Ok(store::analyze_module_cached(
        detector, &module, engine, store,
    ))
}
