//! Tier-1: the analysis daemon answers exactly what an in-process run
//! answers.
//!
//! The wire reply embeds the full per-function report minus timing, so
//! the round-trip test can demand *rendered-JSON equality* between the
//! daemon's `functions` array and `lcm::serve::wire::module_report_json`
//! of an in-process [`lcm::analyze_source`] run — same findings, same
//! order, same fields, for every engine. A second group proves the
//! retry/fault path: a dropped connection (the `serve.drop_conn` site)
//! is retried and succeeds without the caller noticing.

use lcm::core::fault::{site, FaultPlan};
use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::serve::wire::module_report_json;
use lcm::serve::{Client, ServeConfig, Server};
use std::path::PathBuf;

fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

/// Unix socket paths are length-limited (~100 bytes); keep them short
/// and unique.
fn temp_socket(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("lcm-t-{tag}-{}-{n}.sock", std::process::id()))
}

const VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp; int sec_key;
    void victim_a(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_b(int y) { if (y < size) tmp &= B[A[y] * 256]; }
"#;

#[test]
fn daemon_reply_matches_in_process_run_for_every_engine() {
    if env_faults_armed() {
        return;
    }
    let handle = Server::spawn(ServeConfig::new(temp_socket("rt"))).unwrap();
    let client = Client::new(handle.socket().clone());
    let det = Detector::new(DetectorConfig::default());
    for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
        let reply = client.analyze_source(VICTIMS, engine).unwrap();
        let in_process = lcm::analyze_source(VICTIMS, &det, engine).unwrap();
        assert_eq!(
            reply.get("functions").unwrap().render(),
            module_report_json(&in_process).render(),
            "{engine:?}: daemon and in-process reports must render identically"
        );
        assert_eq!(reply.get("degraded").and_then(|v| v.as_u64()), Some(0));
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn daemon_serves_files_and_reports_cache_traffic() {
    if env_faults_armed() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("lcm-t-filecache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("victim.c");
    std::fs::write(&prog, VICTIMS).unwrap();

    let mut config = ServeConfig::new(temp_socket("fc"));
    config.cache_dir = Some(dir.join("cache"));
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(handle.socket().clone());

    // `file` and `source` submissions of the same program share cache
    // entries: addressing is by content, not by transport.
    let cold = client
        .analyze_file(prog.to_str().unwrap(), EngineKind::Pht)
        .unwrap();
    assert_eq!(cold.get("cache_hits").and_then(|v| v.as_u64()), Some(0));
    let warm = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
    assert_eq!(warm.get("cache_hits").and_then(|v| v.as_u64()), Some(2));
    // Findings identical modulo the hit/miss labels.
    let strip = |v: &lcm::core::jsonw::Json| {
        v.render()
            .replace("\"cache\":\"hit\"", "\"cache\":\"-\"")
            .replace("\"cache\":\"miss\"", "\"cache\":\"-\"")
    };
    assert_eq!(
        strip(cold.get("functions").unwrap()),
        strip(warm.get("functions").unwrap())
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("analyses").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("cache_hits").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("store_entries").and_then(|v| v.as_u64()), Some(2));
    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_connection_is_invisible_behind_the_retry() {
    if env_faults_armed() {
        return;
    }
    let mut config = ServeConfig::new(temp_socket("drop"));
    config.faults = FaultPlan::default().arm(site::SERVE_DROP_CONN, Some(0));
    let handle = Server::spawn(config).unwrap();
    // Default client: one retry. The first accepted connection is
    // dropped; the retry lands on ordinal 1 and succeeds.
    let client = Client::new(handle.socket().clone());
    let reply = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    let (_, _, _, dropped) = handle.snapshot();
    assert_eq!(dropped, 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// CI fault-matrix entry point for `serve.drop_conn`: with the site
/// armed through `LCM_FAULT` (an `@index` spec), the daemon must drop
/// that connection and the client's bounded retry must still deliver
/// the answer — proving the env wiring end to end. A no-op otherwise.
#[test]
fn env_armed_drop_conn_is_retried_end_to_end() {
    let Ok(armed) = std::env::var(lcm::core::fault::FAULT_ENV) else {
        return;
    };
    // Only meaningful for an indexed drop_conn plan: an unindexed one
    // drops *every* connection and no bounded retry can succeed.
    let indexed_drop = armed
        .split(',')
        .any(|spec| spec.trim().starts_with(site::SERVE_DROP_CONN) && spec.contains('@'));
    if !indexed_drop {
        return;
    }
    // `Server::bind` merges `LCM_FAULT` itself; nothing to arm here.
    let handle = Server::spawn(ServeConfig::new(temp_socket("envdrop"))).unwrap();
    let client = Client::new(handle.socket().clone()).retries(2);
    let reply = client.status().unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    let (_, _, _, dropped) = handle.snapshot();
    assert!(dropped >= 1, "armed fault never fired");
    client.shutdown().unwrap();
    handle.join().unwrap();
}
