//! Tier-1: the analysis daemon answers exactly what an in-process run
//! answers.
//!
//! The wire reply embeds the full per-function report minus timing, so
//! the round-trip test can demand *rendered-JSON equality* between the
//! daemon's `functions` array and `lcm::serve::wire::module_report_json`
//! of an in-process [`lcm::analyze_source`] run — same findings, same
//! order, same fields, for every engine, over every protocol shape
//! (v1 one-shot, v2 pipelined, v2 batched) and both transports (Unix,
//! TCP). The warm-path pin extends this to the hot-reply memo: every
//! replay of a fully cache-hit program must be byte-identical to the
//! first fully-hit reply. A further group proves the retry/fault
//! paths: a dropped connection (`serve.drop_conn`) and a torn reply
//! (`serve.partial_write`) are retried and succeed without the caller
//! noticing.

use lcm::core::fault::{site, FaultPlan};
use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::serve::wire::module_report_json;
use lcm::serve::{Client, ServeConfig, Server};
use std::path::PathBuf;

fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

/// Unix socket paths are length-limited (~100 bytes); keep them short
/// and unique.
fn temp_socket(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("lcm-t-{tag}-{}-{n}.sock", std::process::id()))
}

const VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp; int sec_key;
    void victim_a(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_b(int y) { if (y < size) tmp &= B[A[y] * 256]; }
"#;

#[test]
fn daemon_reply_matches_in_process_run_for_every_engine() {
    if env_faults_armed() {
        return;
    }
    let handle = Server::spawn(ServeConfig::new(temp_socket("rt"))).unwrap();
    let client = Client::new(handle.socket().clone());
    let det = Detector::new(DetectorConfig::default());
    for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
        let reply = client.analyze_source(VICTIMS, engine).unwrap();
        let in_process = lcm::analyze_source(VICTIMS, &det, engine).unwrap();
        assert_eq!(
            reply.get("functions").unwrap().render(),
            module_report_json(&in_process).render(),
            "{engine:?}: daemon and in-process reports must render identically"
        );
        assert_eq!(reply.get("degraded").and_then(|v| v.as_u64()), Some(0));
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn daemon_serves_files_and_reports_cache_traffic() {
    if env_faults_armed() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("lcm-t-filecache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("victim.c");
    std::fs::write(&prog, VICTIMS).unwrap();

    let mut config = ServeConfig::new(temp_socket("fc"));
    config.cache_dir = Some(dir.join("cache"));
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(handle.socket().clone());

    // `file` and `source` submissions of the same program share cache
    // entries: addressing is by content, not by transport.
    let cold = client
        .analyze_file(prog.to_str().unwrap(), EngineKind::Pht)
        .unwrap();
    assert_eq!(cold.get("cache_hits").and_then(|v| v.as_u64()), Some(0));
    let warm = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
    assert_eq!(warm.get("cache_hits").and_then(|v| v.as_u64()), Some(2));
    // Findings identical modulo the hit/miss labels.
    let strip = |v: &lcm::core::jsonw::Json| {
        v.render()
            .replace("\"cache\":\"hit\"", "\"cache\":\"-\"")
            .replace("\"cache\":\"miss\"", "\"cache\":\"-\"")
    };
    assert_eq!(
        strip(cold.get("functions").unwrap()),
        strip(warm.get("functions").unwrap())
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("analyses").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("cache_hits").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("store_entries").and_then(|v| v.as_u64()), Some(2));
    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_connection_is_invisible_behind_the_retry() {
    if env_faults_armed() {
        return;
    }
    let mut config = ServeConfig::new(temp_socket("drop"));
    config.faults = FaultPlan::default().arm(site::SERVE_DROP_CONN, Some(0));
    let handle = Server::spawn(config).unwrap();
    // Default client: one retry. The first accepted connection is
    // dropped; the retry lands on ordinal 1 and succeeds.
    let client = Client::new(handle.socket().clone());
    let reply = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    let (_, _, _, dropped) = handle.snapshot();
    assert_eq!(dropped, 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The protocol-v2 byte-equality pin: every reply shape — v1 one-shot,
/// v2 pipelined at depths 1/4/8, v2 batched — over both Unix and TCP
/// must embed the exact `functions` array an in-process run renders.
#[test]
fn v2_replies_match_in_process_runs_over_unix_and_tcp() {
    if env_faults_armed() {
        return;
    }
    let mut config = ServeConfig::new(temp_socket("v2rt"));
    config.tcp = Some("127.0.0.1:0".into());
    let handle = Server::spawn(config).unwrap();
    let det = Detector::new(DetectorConfig::default());
    let expected =
        module_report_json(&lcm::analyze_source(VICTIMS, &det, EngineKind::Pht).unwrap()).render();
    let clients = [
        Client::new(handle.socket().clone()),
        Client::tcp(handle.tcp_addr().unwrap().to_string()),
    ];
    for client in &clients {
        // v1 one-shot.
        let reply = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
        assert_eq!(reply.get("functions").unwrap().render(), expected);
        // v2 pipelined, replies matched by id.
        for depth in [1usize, 4, 8] {
            let mut conn = client.connect().unwrap();
            let mut pending: std::collections::HashSet<u64> = (0..depth)
                .map(|_| conn.send_analyze(VICTIMS, EngineKind::Pht).unwrap())
                .collect();
            while !pending.is_empty() {
                let (id, v) = conn.recv().unwrap();
                assert!(pending.remove(&id), "unexpected reply id {id}");
                assert_eq!(v.get("functions").unwrap().render(), expected);
            }
        }
        // v2 batched: every element renders as its one-shot would.
        let mut conn = client.connect().unwrap();
        let items = vec![(VICTIMS, EngineKind::Pht); 3];
        let bid = conn.send_batch(&items).unwrap();
        let (id, v) = conn.recv().unwrap();
        assert_eq!(id, bid);
        assert_eq!(v.get("failed").and_then(|v| v.as_u64()), Some(0));
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        for r in results {
            assert_eq!(r.get("functions").unwrap().render(), expected);
        }
    }
    clients[0].shutdown().unwrap();
    handle.join().unwrap();
}

/// The warm-path (hot-reply memo) byte pin: once a program is fully
/// cache-hit, every later reply — v1 replay, v2 pipelined, v2 batched,
/// Unix or TCP — must be byte-identical to the first fully-hit reply.
#[test]
fn warm_replies_replay_byte_identically() {
    if env_faults_armed() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("lcm-t-warmpin-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut config = ServeConfig::new(temp_socket("wp"));
    config.tcp = Some("127.0.0.1:0".into());
    config.cache_dir = Some(dir.clone());
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(handle.socket().clone());
    let frame = lcm::serve::client::analyze_request(Some(VICTIMS), None, EngineKind::Pht);

    let _cold = client.request_line(&frame).unwrap();
    // The first fully-hit run: the reply every replay must reproduce.
    let warm = client.request_line(&frame).unwrap();
    let warm = warm.trim_end();
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");

    // v1 replay (served from the memo) is byte-identical.
    assert_eq!(client.request_line(&frame).unwrap().trim_end(), warm);
    // ... over TCP too.
    let tcp = Client::tcp(handle.tcp_addr().unwrap().to_string());
    assert_eq!(tcp.request_line(&frame).unwrap().trim_end(), warm);

    // v2 pipelined: each reply is the warm line with the id prepended.
    let mut conn = client.connect().unwrap();
    let ids: Vec<u64> = (0..8)
        .map(|_| conn.send_analyze(VICTIMS, EngineKind::Pht).unwrap())
        .collect();
    for _ in &ids {
        let line = conn.recv_raw_line().unwrap();
        let line = line.trim_end();
        let comma = line.find(',').unwrap();
        assert!(line.starts_with("{\"id\":"), "{line}");
        assert_eq!(&line[comma + 1..], &warm[1..]);
    }

    // v2 batched: elements are the warm line verbatim.
    let items = vec![(VICTIMS, EngineKind::Pht); 4];
    let bid = conn.send_batch(&items).unwrap();
    let line = conn.recv_raw_line().unwrap();
    let elems = vec![warm.to_string(); 4].join(",");
    assert_eq!(
        line.trim_end(),
        format!("{{\"id\":{bid},\"ok\":true,\"results\":[{elems}],\"failed\":0}}")
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A daemon in `--fleet` mode answers byte-identically to a plain
/// daemon (and thus to the in-process run): crash isolation is
/// invisible on the wire. Workers are the sibling `lcm-cli` binary in
/// `worker` mode, never the test harness.
#[test]
fn fleet_daemon_replies_match_in_process_runs() {
    if env_faults_armed() {
        return;
    }
    let mut config = ServeConfig::new(temp_socket("fleet"));
    config.fleet = 2;
    config.fleet_cmd = Some(vec![
        env!("CARGO_BIN_EXE_lcm-cli").to_string(),
        "worker".into(),
    ]);
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(handle.socket().clone());
    let det = Detector::new(DetectorConfig::default());
    for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
        let reply = client.analyze_source(VICTIMS, engine).unwrap();
        let in_process = lcm::analyze_source(VICTIMS, &det, engine).unwrap();
        assert_eq!(
            reply.get("functions").unwrap().render(),
            module_report_json(&in_process).render(),
            "{engine:?}: fleet daemon and in-process reports must render identically"
        );
        assert_eq!(reply.get("degraded").and_then(|v| v.as_u64()), Some(0));
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// SIGTERM triggers the same graceful drain a `shutdown` request does:
/// the daemon answers in-flight work, stops accepting, and `run`
/// returns cleanly. The handler is opt-in (`handle_signals`), flips one
/// flag, and the watcher reuses the drain/stop/self-connection path.
#[test]
fn sigterm_drains_the_daemon_gracefully() {
    if env_faults_armed() {
        return;
    }
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn getpid() -> i32;
    }
    const SIGTERM: i32 = 15;
    let mut config = ServeConfig::new(temp_socket("sigterm"));
    config.handle_signals = true;
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(handle.socket().clone());
    // The daemon is alive and answering before the signal.
    let reply = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    unsafe { kill(getpid(), SIGTERM) };
    // The watcher polls every 100ms; the drain then stops the run loop.
    handle.join().unwrap();
}

/// The shed-load satellite: a `busy` reply is retryable when (and only
/// when) the caller opts in with `retry_busy`. A hand-rolled one-shot
/// server replies `busy` to the first connection and a real answer to
/// the second — the opted-in client's bounded backoff absorbs the
/// first, the default client surfaces it.
#[test]
fn busy_replies_are_retried_only_by_opted_in_clients() {
    use std::io::{BufRead, BufReader, Write};
    let path = temp_socket("busy");
    std::fs::remove_file(&path).ok();
    let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
    let server = std::thread::spawn(move || {
        for (i, conn) in listener.incoming().take(3).enumerate() {
            let conn = conn.unwrap();
            let mut line = String::new();
            BufReader::new(&conn).read_line(&mut line).unwrap();
            let reply = if i < 2 {
                "{\"ok\":false,\"error\":\"busy: queue full\"}\n"
            } else {
                "{\"ok\":true,\"drained\":true}\n"
            };
            (&conn).write_all(reply.as_bytes()).unwrap();
            conn.shutdown(std::net::Shutdown::Both).ok();
        }
    });

    // Two busy replies, two extra attempts allowed: the third attempt
    // lands the real answer.
    let client = Client::new(path.clone()).retry_busy(2);
    let reply = client.status().unwrap();
    assert_eq!(reply.get("drained").and_then(|v| v.as_bool()), Some(true));
    server.join().unwrap();

    // Off by default: the same first contact surfaces the busy error.
    std::fs::remove_file(&path).ok();
    let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
    let server = std::thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(&conn).read_line(&mut line).unwrap();
        (&conn)
            .write_all(b"{\"ok\":false,\"error\":\"busy: queue full\"}\n")
            .unwrap();
    });
    let err = Client::new(path.clone()).status().unwrap_err();
    assert!(err.to_string().contains("busy"), "got {err}");
    server.join().unwrap();
    std::fs::remove_file(&path).ok();
}

/// CI fault-matrix entry point for `serve.partial_write`: with the
/// site armed through `LCM_FAULT` (an `@index` spec), the indexed
/// reply is torn mid-line and the connection shut down — the v1
/// client must treat the newline-less reply as a drop and its bounded
/// retry must still deliver the full answer. A no-op otherwise.
#[test]
fn env_armed_partial_write_is_retried_end_to_end() {
    let Ok(armed) = std::env::var(lcm::core::fault::FAULT_ENV) else {
        return;
    };
    let indexed_tear = armed
        .split(',')
        .any(|spec| spec.trim().starts_with(site::SERVE_PARTIAL_WRITE) && spec.contains('@'));
    if !indexed_tear {
        return;
    }
    let handle = Server::spawn(ServeConfig::new(temp_socket("envtear"))).unwrap();
    let client = Client::new(handle.socket().clone()).retries(2);
    let reply = client.analyze_source(VICTIMS, EngineKind::Pht).unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    let (_, _, _, torn, _) = handle.snapshot_v2();
    assert!(torn >= 1, "armed fault never fired");
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// CI fault-matrix entry point for `serve.drop_conn`: with the site
/// armed through `LCM_FAULT` (an `@index` spec), the daemon must drop
/// that connection and the client's bounded retry must still deliver
/// the answer — proving the env wiring end to end. A no-op otherwise.
#[test]
fn env_armed_drop_conn_is_retried_end_to_end() {
    let Ok(armed) = std::env::var(lcm::core::fault::FAULT_ENV) else {
        return;
    };
    // Only meaningful for an indexed drop_conn plan: an unindexed one
    // drops *every* connection and no bounded retry can succeed.
    let indexed_drop = armed
        .split(',')
        .any(|spec| spec.trim().starts_with(site::SERVE_DROP_CONN) && spec.contains('@'));
    if !indexed_drop {
        return;
    }
    // `Server::bind` merges `LCM_FAULT` itself; nothing to arm here.
    let handle = Server::spawn(ServeConfig::new(temp_socket("envdrop"))).unwrap();
    let client = Client::new(handle.socket().clone()).retries(2);
    let reply = client.status().unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    let (_, _, _, dropped) = handle.snapshot();
    assert!(dropped >= 1, "armed fault never fired");
    client.shutdown().unwrap();
    handle.join().unwrap();
}
