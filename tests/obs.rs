//! Tier-1: observability must never observe its way into the results.
//!
//! The `lcm-obs` tracer and metrics registry sit inside every analysis
//! phase (A-CFG build, S-AEG build, engines, solver, cache, daemon).
//! The contract is that they are *write-only* side channels: enabling
//! tracing changes what gets recorded, never what gets computed. This
//! test enforces that differentially — the rendered `ModuleReport`
//! wire JSON (timing-free by construction) must be byte-identical with
//! tracing off and on, for every engine, including under any
//! `LCM_FAULT` campaign the CI matrix arms (faults key off the function
//! index, so both runs see the same failures).
//!
//! The same test then validates the trace it just recorded with the
//! bench crate's Chrome-trace shape checker (the library behind the
//! `tracecheck` binary CI runs on `--trace-out` artifacts): balanced
//! begin/end, per-thread monotone timestamps, proper nesting.

use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::serve::wire::module_report_json;

fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

const VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp; int sec_key;
    void victim_a(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_b(int y) { if (y < size) tmp &= B[A[y] * 256]; }
    void safe(int y) { tmp = y + sec_key; }
"#;

/// One test function on purpose: the tracer's enabled flag is process
/// global, so interleaving with a concurrently running sibling test
/// would make "tracing off" a lie.
#[test]
fn reports_are_byte_identical_with_tracing_on_and_off() {
    let det = Detector::new(DetectorConfig::default());
    // The litmus-shaped victims fall entirely inside the pre-screen's
    // decidable fragment (see tests/budgets.rs), so a second detector
    // with the pre-filter disabled forces real solver traffic — that
    // covers the `sat_solve` span and the latency histogram.
    let det_solver = Detector::new(DetectorConfig {
        disable_prefilter: true,
        ..DetectorConfig::default()
    });
    let engines = [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf];
    let run_all = || -> Vec<Result<String, String>> {
        let mut out = Vec::new();
        for d in [&det, &det_solver] {
            for engine in engines {
                out.push(
                    lcm::analyze_source(VICTIMS, d, engine)
                        .map(|r| module_report_json(&r).render())
                        .map_err(|e| e.to_string()),
                );
            }
        }
        out
    };

    assert!(!lcm::obs::trace::is_enabled());
    let off = run_all();

    lcm::obs::trace::enable();
    let on = run_all();
    lcm::obs::trace::disable();

    for (i, (off, on)) in off.iter().zip(&on).enumerate() {
        assert_eq!(
            off,
            on,
            "{:?} (config {}): rendered report must not depend on tracing",
            engines[i % engines.len()],
            i / engines.len(),
        );
    }

    // The traced runs must have produced a structurally valid Chrome
    // trace covering the analysis pipeline.
    let doc = lcm::obs::trace::export_chrome_trace();
    let stats = lcm_bench::trace::validate(&doc).expect("exported trace must be shape-valid");

    // Span taxonomy: with no faults armed, a full three-engine run over
    // a compiling module must include the pipeline's named phases.
    // (Under a fault campaign a fault can fire before any span opens —
    // e.g. `worker_panic` aborts every worker at its first instruction —
    // so there only the exported shape is asserted.)
    if !env_faults_armed() {
        assert!(stats.spans > 0, "traced analysis produced no spans");
        for name in ["acfg_build", "saeg_build", "engine_run", "sat_solve"] {
            assert!(
                doc.contains(&format!("\"name\":\"{name}\"")),
                "trace is missing expected span `{name}`"
            );
        }
        // The same pipeline feeds the registry; a clean run must have
        // registered the query counters and the solver histogram.
        let prom = lcm::obs::metrics::global().render_prometheus();
        assert!(prom.contains("# TYPE lcm_sat_queries_total counter"));
        assert!(prom.contains("lcm_solve_latency_seconds_bucket"));
    }

    // Whatever the fault plan did to the run, the JSON exposition block
    // the bench binaries print must stay parseable.
    let json = lcm::obs::metrics::global().render_json();
    lcm::core::jsonw::parse(&json).expect("metrics JSON block must parse");
}
