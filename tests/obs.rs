//! Tier-1: observability must never observe its way into the results.
//!
//! The `lcm-obs` tracer and metrics registry sit inside every analysis
//! phase (A-CFG build, S-AEG build, engines, solver, cache, daemon).
//! The contract is that they are *write-only* side channels: enabling
//! tracing changes what gets recorded, never what gets computed. This
//! test enforces that differentially — the rendered `ModuleReport`
//! wire JSON (timing-free by construction) must be byte-identical with
//! tracing off and on, for every engine, including under any
//! `LCM_FAULT` campaign the CI matrix arms (faults key off the function
//! index, so both runs see the same failures).
//!
//! The same test then validates the trace it just recorded with the
//! bench crate's Chrome-trace shape checker (the library behind the
//! `tracecheck` binary CI runs on `--trace-out` artifacts): balanced
//! begin/end, per-thread monotone timestamps, proper nesting.
//!
//! The fleet extends the contract across the process boundary
//! (DESIGN.md §6j): worker-side span recording and metrics shipping
//! must be byte-invisible in the rendered findings at every worker
//! count and under every armed `fleet.*` fault, and a supervised crash
//! must produce exactly one structured forensic record naming the task
//! that was in flight — without perturbing the findings.

use std::time::Duration;

use lcm::core::fault::{site, FaultPlan};
use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::fleet::{Fleet, FleetConfig};
use lcm::serve::wire::{analyze_reply, module_report_json};

fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

const VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp; int sec_key;
    void victim_a(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_b(int y) { if (y < size) tmp &= B[A[y] * 256]; }
    void safe(int y) { tmp = y + sec_key; }
"#;

/// One test function on purpose: the tracer's enabled flag is process
/// global, so interleaving with a concurrently running sibling test
/// would make "tracing off" a lie.
#[test]
fn reports_are_byte_identical_with_tracing_on_and_off() {
    let det = Detector::new(DetectorConfig::default());
    // The litmus-shaped victims fall entirely inside the pre-screen's
    // decidable fragment (see tests/budgets.rs), so a second detector
    // with the pre-filter disabled forces real solver traffic — that
    // covers the `sat_solve` span and the latency histogram.
    let det_solver = Detector::new(DetectorConfig {
        disable_prefilter: true,
        ..DetectorConfig::default()
    });
    let engines = [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf];
    let run_all = || -> Vec<Result<String, String>> {
        let mut out = Vec::new();
        for d in [&det, &det_solver] {
            for engine in engines {
                out.push(
                    lcm::analyze_source(VICTIMS, d, engine)
                        .map(|r| module_report_json(&r).render())
                        .map_err(|e| e.to_string()),
                );
            }
        }
        out
    };

    assert!(!lcm::obs::trace::is_enabled());
    let off = run_all();

    lcm::obs::trace::enable();
    let on = run_all();
    lcm::obs::trace::disable();

    for (i, (off, on)) in off.iter().zip(&on).enumerate() {
        assert_eq!(
            off,
            on,
            "{:?} (config {}): rendered report must not depend on tracing",
            engines[i % engines.len()],
            i / engines.len(),
        );
    }

    // The traced runs must have produced a structurally valid Chrome
    // trace covering the analysis pipeline.
    let doc = lcm::obs::trace::export_chrome_trace();
    let stats = lcm_bench::trace::validate(&doc).expect("exported trace must be shape-valid");

    // Span taxonomy: with no faults armed, a full three-engine run over
    // a compiling module must include the pipeline's named phases.
    // (Under a fault campaign a fault can fire before any span opens —
    // e.g. `worker_panic` aborts every worker at its first instruction —
    // so there only the exported shape is asserted.)
    if !env_faults_armed() {
        assert!(stats.spans > 0, "traced analysis produced no spans");
        for name in ["acfg_build", "saeg_build", "engine_run", "sat_solve"] {
            assert!(
                doc.contains(&format!("\"name\":\"{name}\"")),
                "trace is missing expected span `{name}`"
            );
        }
        // The same pipeline feeds the registry; a clean run must have
        // registered the query counters and the solver histogram.
        let prom = lcm::obs::metrics::global().render_prometheus();
        assert!(prom.contains("# TYPE lcm_sat_queries_total counter"));
        assert!(prom.contains("lcm_solve_latency_seconds_bucket"));
    }

    // Whatever the fault plan did to the run, the JSON exposition block
    // the bench binaries print must stay parseable.
    let json = lcm::obs::metrics::global().render_json();
    lcm::core::jsonw::parse(&json).expect("metrics JSON block must parse");
}

/// A four-gadget module (mirrors tests/fleet.rs): enough functions to
/// shard across workers, small enough for debug-profile processes.
const FOUR_VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp;
    void victim_0(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_1(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_2(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_3(int y) { if (y < size) tmp &= B[A[y] * 512]; }
"#;

/// Fleet knobs for tests: the sibling `lcm-cli worker` binary, and the
/// heartbeat grace shrunk so injected failures reap in ~1s. Worker
/// tracing is pinned per fleet via [`FleetConfig::trace_workers`] —
/// these tests never touch the process-global tracer, which belongs to
/// the single-test-function contract above.
fn test_fleet(workers: usize, trace_workers: bool) -> FleetConfig {
    FleetConfig {
        worker_cmd: vec![env!("CARGO_BIN_EXE_lcm-cli").to_string(), "worker".into()],
        task_deadline: Duration::from_secs(60),
        heartbeat_grace: Duration::from_secs(1),
        trace_workers: Some(trace_workers),
        ..FleetConfig::new(workers)
    }
}

fn fleet_reply(fleet: &Fleet, config: &DetectorConfig, engine: EngineKind) -> String {
    let m = lcm::minic::compile(FOUR_VICTIMS).expect("compiles");
    let report = fleet.analyze_module(FOUR_VICTIMS, &m, engine, config, None);
    analyze_reply(&report, engine)
}

/// The cross-process differential: worker-side telemetry (span
/// recording + metrics deltas riding every result frame) must be
/// byte-invisible in the rendered findings, at 1 and 4 workers, for
/// all three engines. Runs under the CI `LCM_FAULT` matrix unskipped:
/// both sides see the same armed plan, and `fleet.*` sites converge by
/// redelivery on both sides.
#[test]
fn fleet_findings_are_byte_identical_with_worker_tracing_on_and_off() {
    let config = DetectorConfig::default();
    for workers in [1, 4] {
        let traced = Fleet::new(test_fleet(workers, true));
        let untraced = Fleet::new(test_fleet(workers, false));
        for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
            let on = fleet_reply(&traced, &config, engine);
            let off = fleet_reply(&untraced, &config, engine);
            assert_eq!(
                on, off,
                "{workers} worker(s), {engine:?}: worker tracing must be byte-invisible"
            );
        }
        traced.shutdown();
        untraced.shutdown();
    }
}

/// Crash forensics: an armed `fleet.worker_crash` (a real SIGKILL
/// mid-task) must emit exactly one structured `worker_exit` crash
/// record into the JSONL event log, naming the faulted task's function
/// and store fingerprint — while the findings converge byte-identical
/// to the in-process run. Skipped under the env fault matrix, which
/// arms sites this test's event-count assertion does not model.
#[test]
fn armed_worker_crash_emits_one_forensic_event_naming_the_task() {
    if env_faults_armed() {
        return;
    }
    let events_path =
        std::env::temp_dir().join(format!("lcm-t-forensics-{}.jsonl", std::process::id()));
    std::fs::remove_file(&events_path).ok();

    // Fire the SIGKILL on victim_1's first delivery only.
    let config = DetectorConfig {
        faults: FaultPlan::default().arm(site::FLEET_WORKER_CRASH, Some(1)),
        ..DetectorConfig::default()
    };
    let m = lcm::minic::compile(FOUR_VICTIMS).expect("compiles");
    let engine = EngineKind::Pht;
    let clean = analyze_reply(
        &Detector::new(DetectorConfig::default()).analyze_module(&m, engine),
        engine,
    );

    let fleet = Fleet::new(FleetConfig {
        events_out: Some(events_path.clone()),
        ..test_fleet(2, false)
    });
    let got = fleet_reply(&fleet, &config, engine);
    fleet.shutdown();
    assert_eq!(got, clean, "a crashed-and-redelivered run must converge");

    let log = std::fs::read_to_string(&events_path).expect("event log must exist");
    std::fs::remove_file(&events_path).ok();
    let events: Vec<lcm::core::jsonw::Json> = log
        .lines()
        .map(|l| lcm::core::jsonw::parse(l).expect("every event line must parse"))
        .collect();
    assert!(!events.is_empty(), "the supervision run must log events");

    let crashes: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("event").and_then(|v| v.as_str()) == Some("worker_exit")
                && e.get("reason").and_then(|v| v.as_str()) == Some("crash")
        })
        .collect();
    assert_eq!(
        crashes.len(),
        1,
        "exactly one crash record expected, got: {log}"
    );
    let crash = crashes[0];
    let last_task = crash.get("last_task").expect("crash record names its task");
    assert_eq!(
        last_task.get("fn").and_then(|v| v.as_str()),
        Some("victim_1"),
        "the faulted function must be named"
    );
    let fp = lcm::store::clou_fingerprint(&m, "victim_1", &config, engine);
    assert_eq!(
        last_task.get("fingerprint").and_then(|v| v.as_str()),
        Some(format!("{:032x}", fp.0).as_str()),
        "the forensic record must carry the task's store fingerprint"
    );
    for field in ["slot", "incarnation", "pid", "uptime_ms", "restarts"] {
        assert!(
            crash.get(field).is_some(),
            "crash record missing `{field}`: {log}"
        );
    }

    // The redelivery that absorbed the crash is also on the record.
    assert!(
        events
            .iter()
            .any(|e| e.get("event").and_then(|v| v.as_str()) == Some("redeliver")),
        "the crash's redelivery must be logged: {log}"
    );
}
