//! Tier-1: the supervised multi-process worker fleet is byte-invisible.
//!
//! The standing invariant (DESIGN.md §6h): a fleet run's rendered
//! report is byte-identical to the in-process run at every worker
//! count, under every armed `fleet.*` fault. Process crashes, hangs,
//! and torn result frames are absorbed by redelivery; only the two
//! circuit breakers (per-function attempts, per-slot restarts) are
//! allowed to surface — as deterministic `Degraded` results that are
//! never cached.
//!
//! Workers are the test binary's sibling `lcm-cli` in `worker` mode —
//! never `current_exe` (which is the test harness itself and would
//! recurse into the test suite).

use std::time::Duration;

use lcm::core::fault::{site, FaultPlan};
use lcm::core::govern::AnalysisError;
use lcm::detect::{CacheStatus, Detector, DetectorConfig, EngineKind, FunctionStatus};
use lcm::fleet::{Fleet, FleetConfig};
use lcm::serve::wire::analyze_reply;

/// True when the surrounding environment armed `LCM_FAULT` (the CI
/// fault matrix). Tests that assert on *specific* degradations skip
/// then; the byte-equality tests run regardless — both sides of the
/// comparison see the same armed plan, and `fleet.*` sites must
/// converge by redelivery (that convergence is exactly what the CI
/// matrix exercises here).
fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

/// A four-gadget module: enough functions to shard across workers,
/// small enough for debug-profile worker processes.
const FOUR_VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp;
    void victim_0(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_1(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_2(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_3(int y) { if (y < size) tmp &= B[A[y] * 512]; }
"#;

/// Fleet knobs for tests: the sibling `lcm-cli worker` binary, and
/// time knobs shrunk so injected hangs are reaped in milliseconds.
fn test_fleet(workers: usize) -> FleetConfig {
    FleetConfig {
        worker_cmd: vec![env!("CARGO_BIN_EXE_lcm-cli").to_string(), "worker".into()],
        task_deadline: Duration::from_secs(60),
        // Long enough for a debug-profile worker to exec and start
        // beating, short enough that injected hangs reap in ~1s.
        heartbeat_grace: Duration::from_secs(1),
        ..FleetConfig::new(workers)
    }
}

fn in_process_reply(source: &str, config: &DetectorConfig, engine: EngineKind) -> String {
    let m = lcm::minic::compile(source).expect("compiles");
    let report = Detector::new(config.clone()).analyze_module(&m, engine);
    analyze_reply(&report, engine)
}

fn fleet_reply(fleet: &Fleet, source: &str, config: &DetectorConfig, engine: EngineKind) -> String {
    let m = lcm::minic::compile(source).expect("compiles");
    let report = fleet.analyze_module(source, &m, engine, config, None);
    analyze_reply(&report, engine)
}

/// The standing invariant, fault-free: worker counts 1 and 4 both
/// render byte-identically to the in-process run, for every engine.
#[test]
fn fleet_reply_is_byte_identical_to_in_process() {
    let config = DetectorConfig::default();
    for workers in [1, 4] {
        let fleet = Fleet::new(test_fleet(workers));
        for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
            let expect = in_process_reply(FOUR_VICTIMS, &config, engine);
            let got = fleet_reply(&fleet, FOUR_VICTIMS, &config, engine);
            assert_eq!(got, expect, "{workers} worker(s), {engine:?}");
        }
        fleet.shutdown();
    }
}

/// The standing invariant under every armed `fleet.*` fault: the first
/// delivery of each task crashes / freezes / tears its worker, the
/// redelivery (faults stripped) succeeds, and the rendered reply is
/// byte-identical to the clean in-process run. `fleet.worker_crash` is
/// a real `SIGKILL` mid-task — this is the kill-9 end-to-end test.
#[test]
fn armed_fleet_faults_converge_to_identical_bytes() {
    let clean = in_process_reply(FOUR_VICTIMS, &DetectorConfig::default(), EngineKind::Pht);
    for fault_site in [
        site::FLEET_WORKER_CRASH,
        site::FLEET_WORKER_HANG,
        site::FLEET_TASK_TORN,
    ] {
        let config = DetectorConfig {
            faults: FaultPlan::default().arm(fault_site, None),
            ..DetectorConfig::default()
        };
        let fleet = Fleet::new(test_fleet(2));
        let got = fleet_reply(&fleet, FOUR_VICTIMS, &config, EngineKind::Pht);
        assert_eq!(got, clean, "armed {fault_site} must converge");
        fleet.shutdown();
    }
}

/// A SIGKILLed worker never loses completed work: functions whose
/// results were already received stay completed; only in-flight work is
/// redelivered. Run the module twice through the same fleet — the
/// second run proves the pool recovered (restart budget resets per
/// run) and still matches byte-for-byte.
#[test]
fn killed_workers_lose_nothing_and_the_pool_recovers() {
    let clean = in_process_reply(FOUR_VICTIMS, &DetectorConfig::default(), EngineKind::Pht);
    let config = DetectorConfig {
        faults: FaultPlan::default().arm(site::FLEET_WORKER_CRASH, None),
        ..DetectorConfig::default()
    };
    let fleet = Fleet::new(test_fleet(2));
    let first = fleet_reply(&fleet, FOUR_VICTIMS, &config, EngineKind::Pht);
    let second = fleet_reply(&fleet, FOUR_VICTIMS, &config, EngineKind::Pht);
    assert_eq!(first, clean);
    assert_eq!(second, clean);
    fleet.shutdown();
}

/// The per-function circuit breaker: with `refire_faults_on_retry` the
/// injected SIGKILL fires on every delivery, so the function kills
/// `max_task_attempts` workers and is then reported `Degraded` — and
/// its degraded result is never inserted into the store.
#[test]
fn restart_storm_trips_the_circuit_breaker_and_is_never_cached() {
    if env_faults_armed() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("lcm-t-fleetstorm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("results.lcmstore");
    std::fs::remove_file(&store_path).ok();
    let store = lcm::store::Store::open(&store_path).unwrap();

    let config = DetectorConfig {
        faults: FaultPlan::default().arm(site::FLEET_WORKER_CRASH, None),
        ..DetectorConfig::default()
    };
    let fleet = Fleet::new(FleetConfig {
        refire_faults_on_retry: true,
        ..test_fleet(2)
    });
    let m = lcm::minic::compile(FOUR_VICTIMS).expect("compiles");
    let report = fleet.analyze_module(FOUR_VICTIMS, &m, EngineKind::Pht, &config, Some(&store));
    fleet.shutdown();

    assert_eq!(report.functions.len(), 4);
    for f in &report.functions {
        match &f.status {
            FunctionStatus::Degraded(AnalysisError::WorkerPanic { message }) => {
                assert!(
                    message.contains("fleet: worker")
                        && (message.contains("lost") || message.contains("exhausted")),
                    "{}: unexpected degradation `{message}`",
                    f.name
                );
            }
            other => panic!("{}: expected fleet degradation, got {other:?}", f.name),
        }
        assert_eq!(
            f.cache,
            CacheStatus::Bypass,
            "{}: degraded ⇒ bypass",
            f.name
        );
        let fp = lcm::store::clou_fingerprint(&m, &f.name, &config, EngineKind::Pht);
        assert!(
            store.lookup_clou(fp).is_none(),
            "{}: a repeatedly-fatal function must never be cached",
            f.name
        );
    }
    assert_eq!(store.len(), 0, "nothing cacheable came out of the storm");
    std::fs::remove_file(&store_path).ok();
}

/// The per-slot circuit breaker: a worker command that dies instantly
/// burns through the restart budget; the run ends with every function
/// deterministically degraded — never a spin, never a panic.
#[test]
fn unrunnable_worker_pool_degrades_and_terminates() {
    if env_faults_armed() {
        return;
    }
    let fleet = Fleet::new(FleetConfig {
        worker_cmd: vec!["false".into()],
        max_worker_restarts: 2,
        ..test_fleet(2)
    });
    let m = lcm::minic::compile(FOUR_VICTIMS).expect("compiles");
    let report = fleet.analyze_module(
        FOUR_VICTIMS,
        &m,
        EngineKind::Pht,
        &DetectorConfig::default(),
        None,
    );
    fleet.shutdown();
    assert_eq!(report.functions.len(), 4);
    for f in &report.functions {
        assert!(
            matches!(
                &f.status,
                FunctionStatus::Degraded(AnalysisError::WorkerPanic { message })
                    if message.starts_with("fleet:")
            ),
            "{}: got {:?}",
            f.name,
            f.status
        );
        assert!(f.transmitters.is_empty());
    }
}

/// Fleet + store: a cold fleet run misses and inserts, a warm fleet run
/// is all hits, and both runs' findings match the in-process cached
/// path byte-for-byte (modulo the runtime fields the reply does not
/// render for hits — `analyze_reply` output is compared whole).
#[test]
fn fleet_cache_discipline_matches_in_process() {
    if env_faults_armed() {
        return;
    }
    let dir = std::env::temp_dir().join(format!("lcm-t-fleetcache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("results.lcmstore");
    std::fs::remove_file(&store_path).ok();
    let store = lcm::store::Store::open(&store_path).unwrap();

    let config = DetectorConfig::default();
    let m = lcm::minic::compile(FOUR_VICTIMS).expect("compiles");
    let fleet = Fleet::new(test_fleet(2));
    let cold = fleet.analyze_module(FOUR_VICTIMS, &m, EngineKind::Pht, &config, Some(&store));
    let warm = fleet.analyze_module(FOUR_VICTIMS, &m, EngineKind::Pht, &config, Some(&store));
    fleet.shutdown();

    assert!(cold.functions.iter().all(|f| f.cache == CacheStatus::Miss));
    assert!(warm.functions.iter().all(|f| f.cache == CacheStatus::Hit));
    for (c, w) in cold.functions.iter().zip(&warm.functions) {
        assert_eq!(c.transmitters, w.transmitters, "{}", c.name);
    }

    // The warm fleet reply matches the warm in-process cached reply.
    let det = Detector::new(config.clone());
    let in_proc = lcm::store::analyze_module_cached(&det, &m, EngineKind::Pht, &store);
    assert_eq!(
        analyze_reply(&warm, EngineKind::Pht),
        analyze_reply(&in_proc, EngineKind::Pht),
    );
    std::fs::remove_file(&store_path).ok();
}
