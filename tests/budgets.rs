//! Tier-1: query budgets on the litmus suites are pinned.
//!
//! The whole point of the query-avoidance layer is that `sat_queries`
//! stays small and `queries_avoided` large; both are deterministic for
//! a fixed suite at `jobs = 1`. Pinning them catches silent regressions
//! (a pre-screen bailing to the solver, an enumeration change blowing
//! up the query count) the findings-equality tests cannot see.
//!
//! If you *deliberately* change enumeration order, the pre-screen's
//! decidable fragment, or the litmus corpus, re-record the constants
//! below (print `(q, a)` from this test) and justify the movement in
//! the PR description.

use lcm::corpus::all_litmus;
use lcm::detect::{Detector, DetectorConfig, EngineKind};

fn budget(engine: EngineKind) -> (u64, u64) {
    let det = Detector::new(DetectorConfig {
        jobs: 1,
        ..DetectorConfig::default()
    });
    let (mut q, mut a) = (0u64, 0u64);
    for (_suite, benches) in all_litmus() {
        for b in benches {
            let t = det.analyze_module(&b.module(), engine).timings();
            q += t.sat_queries;
            a += t.queries_avoided;
        }
    }
    (q, a)
}

/// The litmus programs' feasibility stacks all fall inside the
/// pre-screen's exactly-decidable fragment (positive arch lits, at most
/// one branch decision), so the solver is never consulted at all.
#[test]
fn litmus_query_budgets_are_pinned() {
    assert_eq!(
        budget(EngineKind::Pht),
        (0, 391),
        "PHT (sat_queries, queries_avoided)"
    );
    assert_eq!(
        budget(EngineKind::Stl),
        (0, 309),
        "STL (sat_queries, queries_avoided)"
    );
}

/// And with the layer disabled, the same workload pays for every one of
/// those answers at the solver — the counters trade places.
#[test]
fn disabled_prefilter_routes_everything_to_the_solver() {
    let det = Detector::new(DetectorConfig {
        jobs: 1,
        disable_prefilter: true,
        ..DetectorConfig::default()
    });
    let (mut q, mut a) = (0u64, 0u64);
    for (_suite, benches) in all_litmus() {
        for b in benches {
            let t = det.analyze_module(&b.module(), EngineKind::Pht).timings();
            q += t.sat_queries;
            a += t.queries_avoided;
        }
    }
    assert_eq!(a, 0, "disabled run must not screen");
    // The pre-filter also removes engine-level checks entirely
    // (prefilter_hits), so the solver-path query count is at least the
    // screened count of the default run.
    assert!(q >= 391, "solver-path queries: {q}");
}
