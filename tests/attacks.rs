//! Integration: the paper's worked attacks (§4.2) end-to-end through the
//! facade — each figure's execution is consistent where the paper says,
//! ruled out by the confidentiality predicates the paper says, and
//! classified per Table 1.

use lcm::core::confidentiality::{
    ConfidentialityModel, NaiveTsoLift, PsfLcm, SilentStoreLcm, X86Lcm,
};
use lcm::core::mcm::{ConsistencyModel, Sc, Tso};
use lcm::core::taxonomy::TransmittedField;
use lcm::core::{detect_leakage, TransmitterClass};
use lcm::litmus::programs;

#[test]
fn fig2b_spectre_v1_true_universal_transmitter_is_transient() {
    let (x, ids) = programs::spectre_v1();
    assert!(x.well_formed().is_ok());
    assert!(Tso.check(&x).is_ok());
    assert!(Sc.check(&x).is_ok(), "single-threaded: SC-consistent too");
    let r = detect_leakage(&x);
    // The bounds check restricts 6; 6s is the *true* UDT (§3.2.4).
    let udts: Vec<_> = r
        .transmitters
        .iter()
        .filter(|t| t.class == TransmitterClass::UniversalData)
        .collect();
    assert!(udts.iter().any(|t| t.event == ids.e6 && !t.transient));
    assert!(udts.iter().any(|t| t.event == ids.e6s && t.transient));
}

#[test]
fn fig3_variant_access_commits_limiting_scope() {
    let (x, ids) = programs::spectre_v1_var();
    let r = detect_leakage(&x);
    let udt = r
        .transmitters
        .iter()
        .find(|t| t.event == ids.e6s && t.class == TransmitterClass::UniversalData)
        .expect("UDT present");
    assert!(udt.transient, "the transmitter is transient");
    assert!(
        !udt.access_transient,
        "but the access commits (STT's blind spot)"
    );
}

#[test]
fn fig4a_spectre_v4_confidentiality_predicate_design() {
    let (x, ids) = programs::spectre_v4();
    // The heart of §4.2's Spectre v4 discussion: the execution exhibits an
    // frx ∪ tfo_loc cycle.
    let cycle_rel = x.frx().union(&x.tfo_loc());
    assert!(lcm::relalg::acyclic(&x.frx()), "frx alone is acyclic");
    assert!(
        !lcm::relalg::acyclic(&cycle_rel),
        "frx ∪ tfo_loc has the v4 cycle"
    );
    // x86 permits it; the naive lift of sc_per_loc does not.
    assert!(X86Lcm.check(&x).is_ok());
    assert!(NaiveTsoLift.check(&x).is_err());
    // Leakage involves a transient transmitter AND transient access.
    let r = detect_leakage(&x);
    let udt = r
        .transmitters
        .iter()
        .find(|t| t.event == ids.e6s && t.class == TransmitterClass::UniversalData)
        .unwrap();
    assert!(udt.transient && udt.access_transient);
}

#[test]
fn fig4b_psf_needs_alias_prediction() {
    let (x, ids) = programs::spectre_psf();
    assert!(
        X86Lcm.check(&x).is_err(),
        "no alias prediction on vanilla x86 model"
    );
    assert!(PsfLcm.check(&x).is_ok(), "PSF hardware permits it");
    let r = detect_leakage(&x);
    assert!(r
        .transmitters
        .iter()
        .any(|t| t.event == ids.e5s && t.class == TransmitterClass::UniversalData));
}

#[test]
fn fig5a_silent_store_transmits_data_field() {
    let (x, ids) = programs::silent_stores();
    assert!(SilentStoreLcm.check(&x).is_ok());
    assert!(X86Lcm.check(&x).is_err());
    let r = detect_leakage(&x);
    let t = r.transmitters.iter().find(|t| t.event == ids.w2).unwrap();
    assert_eq!(t.field, TransmittedField::Data);
    // Every other transmitter in this paper conveys the address field.
    let (x2, _) = programs::spectre_v1();
    assert!(detect_leakage(&x2)
        .transmitters
        .iter()
        .all(|t| t.field == TransmittedField::Address));
}

#[test]
fn fig5b_imp_universal_read_gadget_without_architectural_events() {
    let (x, ids) = programs::imp_prefetch();
    let r = detect_leakage(&x);
    let t = r
        .transmitters
        .iter()
        .find(|t| t.event == ids.p3 && t.class == TransmitterClass::UniversalData)
        .expect("prefetch UDT");
    assert_eq!(t.access, Some(ids.p2));
    assert_eq!(t.index, Some(ids.p1));
    // Prefetches participate in no architectural relation (§4.2).
    assert!(x.po().successors(ids.p1.0).next().is_none());
    assert!(x.rf().predecessors(ids.p2.0).next().is_none());
    assert!(x.com().predecessors(ids.p3.0).next().is_none());
}

#[test]
fn receivers_are_targets_of_culprit_edges() {
    for (name, x) in [
        ("v1", programs::spectre_v1().0),
        ("v4", programs::spectre_v4().0),
        ("psf", programs::spectre_psf().0),
        ("silent", programs::silent_stores().0),
        ("imp", programs::imp_prefetch().0),
    ] {
        let r = detect_leakage(&x);
        assert!(!r.is_clean(), "{name} leaks");
        for v in &r.violations {
            assert_eq!(
                v.receiver, v.culprit.1,
                "{name}: receiver is the culprit target"
            );
            assert!(r.receivers.contains(&v.receiver));
        }
        for t in &r.transmitters {
            assert!(
                x.rfx().contains(t.event.0, t.receiver.0) || t.event == t.receiver,
                "{name}: transmitter sources rfx into its receiver"
            );
        }
    }
}
