//! Integration: subrosa-style exhaustive validation of the §4.1
//! non-interference definitions — over *all* microarchitectural witnesses
//! of small templates, the interference-free ones are exactly those whose
//! `comx` matches architectural expectation.

use lcm::core::confidentiality::{ConfidentialityModel, X86Lcm};
use lcm::core::exec::{Execution, ExecutionBuilder};
use lcm::core::noninterference::{implied_microarch, interference_free, violations};
use lcm::core::EventId;
use lcm::litmus::enumerate::{microarch_witnesses, Litmus};

struct PermitAll;
impl ConfidentialityModel for PermitAll {
    fn name(&self) -> &'static str {
        "permit-all"
    }
    fn check(
        &self,
        _: &Execution,
    ) -> Result<(), lcm::core::confidentiality::ConfidentialityViolation> {
        Ok(())
    }
}

/// Template: R x; W x; R x(hit from the write).
fn rwr(rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]) -> Execution {
    let mut b = ExecutionBuilder::new();
    let r1 = b.read("x");
    let w = b.write("x");
    let r2 = b.read_hit("x");
    b.po_chain(&[r1, w, r2]);
    b.rf(w, r2);
    for &(a, c) in rfx {
        b.rfx(a, c);
    }
    for &(a, c) in cox {
        b.cox(a, c);
    }
    b.build()
}

#[test]
fn exactly_one_interference_free_witness_for_straight_line_code() {
    // Deterministic single-threaded code has exactly one implied
    // microarchitectural execution; every other witness deviates and is
    // detected. The confidentiality predicate matters here (§3.2.2): a
    // permit-all hardware model admits cyclic rfx ∪ cox witnesses that the
    // non-interference mappings alone do not rule out — the x86 LCM
    // rejects them.
    let template = rwr(&[], &[]);
    let witnesses = microarch_witnesses(&template, &X86Lcm, &rwr);
    assert!(
        witnesses.len() > 1,
        "several witnesses exist: {}",
        witnesses.len()
    );
    let clean: Vec<&Execution> = witnesses.iter().filter(|x| interference_free(x)).collect();
    assert_eq!(clean.len(), 1, "exactly one interference-free witness");
    // And it carries the implied rfx/cox.
    let (rfx, cox) = implied_microarch(clean[0]);
    assert_eq!(clean[0].rfx(), &rfx);
    assert!(rfx.is_subset(clean[0].rfx()));
    assert!(cox.is_subset(clean[0].cox()));
}

#[test]
fn every_deviating_witness_names_a_receiver_with_a_source() {
    let template = rwr(&[], &[]);
    for x in microarch_witnesses(&template, &X86Lcm, &rwr) {
        for v in violations(&x) {
            // The receiver is the culprit edge's target...
            assert_eq!(v.receiver, v.culprit.1);
            // ...and when an actual source exists it differs from the
            // expected one (otherwise there would be no violation).
            if let Some(actual) = v.actual_source {
                assert_ne!(actual, v.expected.0);
            }
        }
    }
}

#[test]
fn consistent_executions_of_litmus_programs_have_detectable_witness_space() {
    // For each consistent architectural execution of a small program, the
    // enumerated microarchitectural witnesses always include at least one
    // deviating (leaky) option under the permissive hardware model —
    // microarchitectural non-determinism is what attackers exploit.
    let l = Litmus::parse("W x; R x").unwrap();
    for arch in l.consistent_executions(&lcm::core::mcm::Tso) {
        // Rebuild closure: reconstruct the same arch execution with given
        // microarch edges. (Single-threaded: rf/co are forced, so a fresh
        // build with the same ops reproduces them.)
        let make = |rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]| {
            let mut b = ExecutionBuilder::new();
            let w = b.write("x");
            let r = b.read("x");
            b.po(w, r);
            b.rf(w, r);
            for &(a, c) in rfx {
                b.rfx(a, c);
            }
            for &(a, c) in cox {
                b.cox(a, c);
            }
            b.build()
        };
        if arch.rf().pairs().count() < 2 {
            continue; // only consider the forwarding outcome
        }
        let witnesses = microarch_witnesses(&make(&[], &[]), &PermitAll, &make);
        let leaky = witnesses.iter().filter(|x| !interference_free(x)).count();
        assert!(leaky >= 1, "a deviating witness exists");
        let clean = witnesses.iter().filter(|x| interference_free(x)).count();
        assert!(clean >= 1, "the implied witness exists");
    }
}

#[test]
fn paper_attacks_all_violate_rf_non_interference() {
    // §4: "Spectre attacks violate the rf-non-interference predicate of
    // our leakage definition" — every worked PHT/STL/PSF attack's
    // violations include an Rf one.
    use lcm::core::NiPredicate;
    use lcm::litmus::programs;
    for (name, x) in [
        ("v1", programs::spectre_v1().0),
        ("v1var", programs::spectre_v1_var().0),
        ("v4", programs::spectre_v4().0),
        ("psf", programs::spectre_psf().0),
    ] {
        let vs = violations(&x);
        assert!(
            vs.iter().any(|v| v.predicate == NiPredicate::Rf),
            "{name}: rf-NI violated"
        );
    }
    // The silent-store attack is the co-NI case instead.
    let (x, _) = programs::silent_stores();
    assert!(violations(&x)
        .iter()
        .any(|v| v.predicate == NiPredicate::Co));
}
