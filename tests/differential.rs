//! Tier-1: intra-function parallelism and persistent incremental SAT
//! are observational no-ops.
//!
//! Two switches landed on the residual hot path and neither may move a
//! finding:
//!
//! 1. **Intra-function work splitting** — left-over worker threads run
//!    engine work units ((branch, direction) pairs, loads, baseline
//!    paths) on per-worker solver clones. Per-unit results are pure and
//!    merge in unit order, so `--jobs 2/4/8` must render byte-identical
//!    to serial for every engine.
//! 2. **Persistent incremental solving** — one solver per function kept
//!    warm across the assumption-stack queries, learnt clauses
//!    retained. Satisfiability is semantic, so the fresh-solver-per-
//!    query oracle (`disable_incremental` / `LCM_DISABLE_INCREMENTAL`)
//!    must produce the same reports.
//!
//! This file runs inside the `LCM_FAULT` CI matrix. Faults key off the
//! function index, so *which* functions degrade is identical at every
//! job count — but a degraded function's findings are documented as a
//! lower bound (whatever was gathered before the trip), and the trip
//! point is scheduling-dependent under intra-function parallelism. So
//! under an armed campaign the cross-jobs assertions compare completed
//! functions exactly and degraded functions by (name, error) only;
//! with no faults armed the whole rendered module report must match
//! byte for byte. The incremental-vs-oracle comparison is serial on
//! both sides (same query sequence, same governed abort points), so it
//! stays byte-exact even under faults.

use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::haunted::{HauntedConfig, HauntedEngine};
use lcm::serve::wire::module_report_json;

fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

/// Multi-branch, multi-load victims so every engine produces more than
/// one work unit per function (the splitter only engages above one).
const VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp; int sec[16];
    void victim_a(int y) {
        if (y < size) { tmp &= B[A[y] * 512]; }
        if (y > 0) { tmp &= B[A[y & 15] * 256]; }
    }
    void victim_stl(int idx) {
        int r = idx & 15;
        sec[r] = 0;
        tmp &= B[sec[r]];
        if (r < size) { tmp &= B[A[r] * 256]; }
    }
    void safe(int y) { tmp = y + 1; }
"#;

fn compile() -> lcm::ir::Module {
    lcm::minic::compile(VICTIMS).expect("victims compile")
}

const ENGINES: [EngineKind; 3] = [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf];

#[test]
fn findings_are_identical_across_job_counts_for_every_engine() {
    let m = compile();
    for engine in ENGINES {
        for disable_incremental in [false, true] {
            let run = |jobs: usize| {
                Detector::new(DetectorConfig {
                    jobs,
                    disable_incremental,
                    ..DetectorConfig::default()
                })
                .analyze_module(&m, engine)
            };
            let serial = run(1);
            for jobs in [2, 4, 8] {
                let par = run(jobs);
                let label =
                    format!("{engine:?}, jobs={jobs}, disable_incremental={disable_incremental}");
                assert_eq!(serial.functions.len(), par.functions.len(), "{label}");
                for (s, p) in serial.functions.iter().zip(&par.functions) {
                    assert_eq!(s.name, p.name, "{label}: function order");
                    assert_eq!(
                        format!("{:?}", s.status),
                        format!("{:?}", p.status),
                        "{label}/{}: status",
                        s.name
                    );
                    if s.status.is_completed() {
                        assert_eq!(
                            s.transmitters, p.transmitters,
                            "{label}/{}: findings",
                            s.name
                        );
                        assert_eq!(s.saeg_size, p.saeg_size, "{label}/{}: size", s.name);
                    }
                }
                if !env_faults_armed() {
                    assert_eq!(
                        module_report_json(&serial).render(),
                        module_report_json(&par).render(),
                        "{label}: rendered module report must be byte-identical"
                    );
                }
            }
        }
    }
}

/// The persistent incremental solver and the fresh-solver-per-query
/// oracle must render byte-identical reports — serial on both sides, so
/// this holds under every fault campaign too. The pre-filter is
/// disabled to force real solver traffic (the litmus-shaped victims
/// are otherwise fully pre-screen-decidable; see tests/budgets.rs).
#[test]
fn incremental_and_oracle_solving_render_identical_reports() {
    let m = compile();
    for engine in ENGINES {
        let run = |disable_incremental: bool| {
            Detector::new(DetectorConfig {
                jobs: 1,
                disable_prefilter: true,
                disable_incremental,
                ..DetectorConfig::default()
            })
            .analyze_module(&m, engine)
        };
        let incremental = run(false);
        let oracle = run(true);
        assert_eq!(
            module_report_json(&incremental).render(),
            module_report_json(&oracle).render(),
            "{engine:?}: incremental on/off must not move a finding"
        );
        // The counters tell the two modes apart: oracle mode never
        // reuses a solver; warm persistent solvers do (skipped under
        // fault campaigns, where governed aborts cut solver traffic).
        if !env_faults_armed() {
            assert_eq!(
                oracle.timings().solver_reuses,
                0,
                "{engine:?}: oracle mode must never reuse a solver"
            );
            assert!(
                incremental.timings().solver_reuses > 0,
                "{engine:?}: persistent mode should reuse warm solvers"
            );
        }
    }
}

/// The haunted baseline's path-splitting must be exact too: full leak
/// lists, path counts, and exhaustion flags at jobs 2/4/8 equal serial.
/// The tight-budget variant pins the path-granular budget semantics:
/// the cutoff is applied during the in-order merge, so exhaustion is
/// reproduced identically no matter how many workers enumerated past
/// it. (The baseline is ungoverned — no fault sites — so this holds
/// inside the fault matrix as well.)
#[test]
fn baseline_reports_are_identical_across_job_counts() {
    let m = compile();
    for engine in [HauntedEngine::Pht, HauntedEngine::Stl] {
        for step_budget in [HauntedConfig::default().step_budget, 40] {
            let run = |jobs: usize| {
                lcm::haunted::analyze_module(
                    &m,
                    engine,
                    HauntedConfig {
                        jobs,
                        step_budget,
                        ..HauntedConfig::default()
                    },
                )
            };
            let serial = run(1);
            for jobs in [2, 4, 8] {
                let par = run(jobs);
                let label = format!("{engine:?}, jobs={jobs}, budget={step_budget}");
                assert_eq!(serial.functions.len(), par.functions.len(), "{label}");
                for (s, p) in serial.functions.iter().zip(&par.functions) {
                    assert_eq!(s.name, p.name, "{label}: order");
                    assert_eq!(s.leaks, p.leaks, "{label}/{}: leaks", s.name);
                    assert_eq!(
                        s.paths_explored, p.paths_explored,
                        "{label}/{}: paths",
                        s.name
                    );
                    assert_eq!(s.exhausted, p.exhausted, "{label}/{}: exhausted", s.name);
                    assert_eq!(s.degraded, p.degraded, "{label}/{}: degraded", s.name);
                }
            }
        }
    }
}
