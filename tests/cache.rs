//! Tier-1: the content-addressed result store is invisible except for
//! speed.
//!
//! Three guarantees back `--cache-dir` and the daemon's cache:
//!
//! 1. **cold vs warm differential** — a warm re-run of unchanged source
//!    performs *zero* engine analyses (every function `cache: hit`) and
//!    its findings are byte-identical to the cold run's, modulo the
//!    timing fields and the hit/miss labels themselves;
//! 2. **precise invalidation** — a one-byte source change invalidates
//!    exactly the changed function (and its callers, whose canonical
//!    encoding embeds the callee); untouched functions still hit;
//! 3. **corruption recovery** — a truncated tail, a flipped checksum
//!    byte, or a garbage header degrade the store to cold (recovered or
//!    reset, re-analyzed, re-inserted), never to an abort.

use lcm::core::fault::FaultPlan;
use lcm::detect::{CacheStatus, Detector, DetectorConfig, EngineKind, ModuleReport};
use lcm::serve::wire::module_report_json;
use lcm::store::{CacheCounts, Store};
use std::path::PathBuf;

/// See tests/resilience.rs: the CI fault matrix arms `LCM_FAULT` for
/// every test in the workspace, and `Store::open` merges it in.
fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

/// A fresh store path in the temp dir (unique per test).
fn temp_store(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lcm-cache-{tag}-{}.lcmstore", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

const THREE_VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp;
    void victim_a(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_b(int y) { if (y < size) tmp &= B[A[y] * 256]; }
    void victim_c(int y) { if (y < size) tmp &= B[A[y] * 128]; }
"#;

fn detector() -> Detector {
    Detector::new(DetectorConfig::default())
}

/// The findings as a canonical string with the volatile fields removed:
/// `module_report_json` already excludes timing, and the cache labels
/// (the one legitimate cold/warm difference) are normalized away.
fn findings_fingerprint(report: &ModuleReport) -> String {
    module_report_json(report)
        .render()
        .replace("\"cache\":\"hit\"", "\"cache\":\"-\"")
        .replace("\"cache\":\"miss\"", "\"cache\":\"-\"")
}

#[test]
fn warm_rerun_is_all_hits_with_identical_findings() {
    if env_faults_armed() {
        return;
    }
    let path = temp_store("warm");
    let store = Store::open(&path).unwrap();
    let det = detector();

    let cold = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    assert_eq!(
        CacheCounts::of(&cold),
        CacheCounts {
            hits: 0,
            misses: 3,
            bypassed: 0
        }
    );
    assert!(!cold.is_clean(), "the gadgets must actually leak");

    let warm = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    assert_eq!(
        CacheCounts::of(&warm),
        CacheCounts {
            hits: 3,
            misses: 0,
            bypassed: 0
        }
    );
    // Zero engine analyses on the warm run: no SAT queries, and the
    // per-function phase clocks attribute time only to `cache`.
    let t = warm.timings();
    assert_eq!(t.sat_queries, 0, "warm run must not touch the solver");
    assert_eq!(t.cache_hits, 3);

    assert_eq!(findings_fingerprint(&cold), findings_fingerprint(&warm));

    // An uncached run agrees too (the cache changes nothing but labels).
    let uncached = lcm::analyze_source(THREE_VICTIMS, &det, EngineKind::Pht).unwrap();
    assert_eq!(
        findings_fingerprint(&uncached).replace("\"cache\":\"bypass\"", "\"cache\":\"-\""),
        findings_fingerprint(&warm)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn engines_and_configs_do_not_share_entries() {
    if env_faults_armed() {
        return;
    }
    let path = temp_store("keyed");
    let store = Store::open(&path).unwrap();
    let det = detector();
    lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();

    // A different engine misses (fingerprints embed the engine tag)...
    let stl = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Stl, &store).unwrap();
    assert_eq!(CacheCounts::of(&stl).hits, 0);

    // ...as does a findings-affecting config change...
    let deep = Detector::new(DetectorConfig {
        window: DetectorConfig::default().window + 1,
        ..DetectorConfig::default()
    });
    let r = lcm::analyze_source_cached(THREE_VICTIMS, &deep, EngineKind::Pht, &store).unwrap();
    assert_eq!(CacheCounts::of(&r).hits, 0, "speculation window is keyed");

    // ...but a speed-only change (jobs) still hits every entry.
    let par = Detector::new(DetectorConfig {
        jobs: 4,
        ..DetectorConfig::default()
    });
    let r = lcm::analyze_source_cached(THREE_VICTIMS, &par, EngineKind::Pht, &store).unwrap();
    assert_eq!(CacheCounts::of(&r).hits, 3, "jobs must not be keyed");
    std::fs::remove_file(&path).ok();
}

#[test]
fn one_byte_change_invalidates_exactly_that_function() {
    if env_faults_armed() {
        return;
    }
    let path = temp_store("invalidate");
    let store = Store::open(&path).unwrap();
    let det = detector();
    lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();

    // One byte: victim_b's multiplier 256 -> 255.
    let edited = THREE_VICTIMS.replace("A[y] * 256", "A[y] * 255");
    assert_eq!(edited.len(), THREE_VICTIMS.len());
    let r = lcm::analyze_source_cached(&edited, &det, EngineKind::Pht, &store).unwrap();
    for f in &r.functions {
        let expect = if f.name == "victim_b" {
            CacheStatus::Miss
        } else {
            CacheStatus::Hit
        };
        assert_eq!(f.cache, expect, "{}", f.name);
    }

    // The edited variant is now cached as well — both versions coexist
    // (content addressing, not path addressing).
    let r = lcm::analyze_source_cached(&edited, &det, EngineKind::Pht, &store).unwrap();
    assert_eq!(CacheCounts::of(&r).hits, 3);
    let r = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    assert_eq!(CacheCounts::of(&r).hits, 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn editing_a_callee_invalidates_its_callers_too() {
    if env_faults_armed() {
        return;
    }
    let src_v1 = r#"
        int A[16]; int B[4096]; int size; int tmp;
        int leak(int x) { return B[x * 512]; }
        void caller(int y) { if (y < size) tmp &= leak(A[y]); }
        void bystander(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    "#;
    // Change only `leak`'s body; `caller`'s text is untouched but its
    // behaviour (and canonical encoding, which embeds callees) changed.
    let src_v2 = src_v1.replace("x * 512", "x * 256");

    let path = temp_store("deps");
    let store = Store::open(&path).unwrap();
    let det = detector();
    lcm::analyze_source_cached(src_v1, &det, EngineKind::Pht, &store).unwrap();
    let r = lcm::analyze_source_cached(&src_v2, &det, EngineKind::Pht, &store).unwrap();
    for f in &r.functions {
        let expect = if f.name == "bystander" {
            CacheStatus::Hit
        } else {
            CacheStatus::Miss
        };
        assert_eq!(f.cache, expect, "{}", f.name);
    }
    std::fs::remove_file(&path).ok();
}

/// Damages the store file with `mutate`, reopens, and proves the store
/// degrades to (at worst) cold: open succeeds, a full re-run completes
/// with findings identical to the pristine run, and a further re-run is
/// warm again.
fn corruption_round_trip(tag: &str, mutate: impl FnOnce(&mut Vec<u8>)) {
    let path = temp_store(tag);
    let det = detector();
    let pristine = {
        let store = Store::open(&path).unwrap();
        lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap()
    }; // drop closes the file

    let mut bytes = std::fs::read(&path).unwrap();
    mutate(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();

    let store = Store::open(&path).expect("recovery must not fail the open");
    let s = store.stats();
    assert!(
        s.recovered_drop > 0 || s.reset || s.loaded < 3,
        "damage went unnoticed: {s:?}"
    );
    let rerun = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    assert_eq!(
        module_report_json(&pristine)
            .render()
            .replace("\"cache\":\"miss\"", "\"cache\":\"-\"")
            .replace("\"cache\":\"hit\"", "\"cache\":\"-\""),
        module_report_json(&rerun)
            .render()
            .replace("\"cache\":\"miss\"", "\"cache\":\"-\"")
            .replace("\"cache\":\"hit\"", "\"cache\":\"-\""),
        "recovered run differs from pristine"
    );
    // Dropped records were re-inserted by the rerun: warm again.
    let warm = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    assert_eq!(
        CacheCounts::of(&warm),
        CacheCounts {
            hits: 3,
            misses: 0,
            bypassed: 0
        }
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_tail_recovers_to_cold() {
    if env_faults_armed() {
        return;
    }
    corruption_round_trip("truncate", |bytes| {
        // A torn final write: half the last record is gone.
        let cut = bytes.len() - bytes.len() / 8;
        bytes.truncate(cut);
    });
}

#[test]
fn flipped_checksum_byte_recovers_to_cold() {
    if env_faults_armed() {
        return;
    }
    corruption_round_trip("bitflip", |bytes| {
        // Flip one byte near the tail (inside the last record's
        // payload or checksum) — the record must fail verification.
        let i = bytes.len() - 9;
        bytes[i] ^= 0xFF;
    });
}

#[test]
fn garbage_header_resets_the_store() {
    if env_faults_armed() {
        return;
    }
    corruption_round_trip("header", |bytes| {
        bytes[0] = b'#'; // no longer the JSON header line
    });
}

/// The `store.corrupt_record` fault site end to end: the store damages
/// its own appended records on disk, and the *next* open recovers. The
/// running process keeps its in-memory copy, so the current session is
/// unaffected — exactly the torn-write model.
#[test]
fn corrupt_record_fault_degrades_next_open_to_cold() {
    if env_faults_armed() {
        return;
    }
    let path = temp_store("fault");
    let det = detector();
    {
        let faults =
            FaultPlan::default().arm(lcm::core::fault::site::STORE_CORRUPT_RECORD, Some(1));
        let store = Store::open_with_faults(&path, faults).unwrap();
        let r = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
        assert_eq!(CacheCounts::of(&r).misses, 3);
        // Same session: in-memory copies answer regardless of the disk.
        let r = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
        assert_eq!(CacheCounts::of(&r).hits, 3);
    }
    let store = Store::open(&path).expect("open recovers");
    assert!(store.stats().recovered_drop > 0, "{:?}", store.stats());
    let r = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    let c = CacheCounts::of(&r);
    assert!(c.misses > 0, "the damaged record must miss: {c:?}");
    assert_eq!(c.hits + c.misses, 3);
    std::fs::remove_file(&path).ok();
}

/// CI fault-matrix entry point for `store.corrupt_record`: with the
/// site armed through `LCM_FAULT`, the store damages its own appended
/// records on disk ([`Store::open`] merges the env plan itself), the
/// next open must *recover* rather than abort, and a full re-run must
/// complete with correct results — proving the env wiring end to end.
/// A no-op when the armed plan does not include the site.
#[test]
fn env_armed_corrupt_record_recovers_end_to_end() {
    let Ok(armed) = std::env::var(lcm::core::fault::FAULT_ENV) else {
        return;
    };
    if !armed.split(',').any(|spec| {
        spec.trim()
            .starts_with(lcm::core::fault::site::STORE_CORRUPT_RECORD)
    }) {
        return;
    }
    let path = temp_store("envfault");
    let det = detector();
    let pristine = {
        let store = Store::open(&path).unwrap();
        lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap()
    };
    assert!(pristine.all_completed());
    let store = Store::open(&path).expect("recovery must not fail the open");
    assert!(
        store.stats().recovered_drop > 0,
        "armed fault never damaged a record: {:?}",
        store.stats()
    );
    let rerun = lcm::analyze_source_cached(THREE_VICTIMS, &det, EngineKind::Pht, &store).unwrap();
    assert!(rerun.all_completed());
    assert_eq!(
        findings_fingerprint(&pristine),
        findings_fingerprint(&rerun)
    );
    std::fs::remove_file(&path).ok();
}

/// Degraded analyses are never cached: a warm run cannot launder a
/// lower-bound result into a completed-looking hit.
#[test]
fn degraded_results_are_not_cached() {
    if env_faults_armed() {
        return;
    }
    let path = temp_store("degraded");
    let store = Store::open(&path).unwrap();
    let strict = Detector::new(DetectorConfig {
        budgets: lcm::core::govern::Budgets {
            timeout: Some(std::time::Duration::ZERO),
            ..lcm::core::govern::Budgets::default()
        },
        ..DetectorConfig::default()
    });
    let r = lcm::analyze_source_cached(THREE_VICTIMS, &strict, EngineKind::Pht, &store).unwrap();
    assert_eq!(r.degraded_count(), 3);
    // A degraded function bypasses the cache (its findings are a lower
    // bound, not the answer).
    assert_eq!(
        CacheCounts::of(&r),
        CacheCounts {
            hits: 0,
            misses: 0,
            bypassed: 3
        }
    );
    assert_eq!(store.len(), 0, "nothing persisted");

    // With the budget lifted, the same module misses (no poisoning) and
    // completes.
    let r =
        lcm::analyze_source_cached(THREE_VICTIMS, &detector(), EngineKind::Pht, &store).unwrap();
    assert_eq!(CacheCounts::of(&r).misses, 3);
    assert!(r.all_completed());
    std::fs::remove_file(&path).ok();
}
