//! Tier-1: repair re-verification over the litmus corpus.
//!
//! Closes the gap where `repair()` outputs were never re-checked: every
//! repaired litmus program must re-analyze leak-free — under *all three*
//! engines for the joint `repair_all` fixpoint — and single-pass
//! `repair_once` fence counts are pinned per suite so a placement change
//! shows up as a diff here.

use lcm::corpus::all_litmus;
use lcm::detect::{repair_all, repair_once, Detector, DetectorConfig, EngineKind};

const ENGINES: [EngineKind; 3] = [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf];

fn det() -> Detector {
    Detector::new(DetectorConfig::default())
}

#[test]
fn every_litmus_repair_re_verifies_clean_under_all_engines() {
    let det = det();
    for (suite, benches) in all_litmus() {
        for b in benches {
            let m = b.module();
            let (fixed, _fences) = repair_all(&m, &det);
            for engine in ENGINES {
                let r = det.analyze_module(&fixed, engine);
                assert!(
                    r.is_clean(),
                    "{suite}/{}: {engine:?} still finds {} leak(s) after repair_all",
                    b.name,
                    r.findings().count()
                );
            }
        }
    }
}

#[test]
fn repair_once_fence_counts_are_pinned() {
    // Single-pass fence totals per (suite, engine). These pin the repair
    // *placement* strategy: a change to the greedy set cover or to the
    // engines' findings moves these numbers.
    let expected: &[(&str, [usize; 3])] = &[
        ("litmus-pht", [17, 45, 29]),
        ("litmus-stl", [1, 29, 18]),
        ("litmus-fwd", [5, 17, 15]),
        ("litmus-new", [4, 8, 7]),
    ];
    let det = det();
    for (suite, benches) in all_litmus() {
        let want = expected
            .iter()
            .find(|(s, _)| *s == suite)
            .map(|(_, c)| *c)
            .expect("suite in table");
        for (ei, engine) in ENGINES.into_iter().enumerate() {
            let total: usize = benches
                .iter()
                .map(|b| {
                    let m = b.module();
                    let report = det.analyze_module(&m, engine);
                    repair_once(&m, &report, det.config().spec).1
                })
                .sum();
            assert_eq!(
                total, want[ei],
                "{suite} under {engine:?}: single-pass fence total changed"
            );
        }
    }
}
