//! Integration: the full Clou pipeline (Fig. 6) — C source → IR → A-CFG →
//! S-AEG → leakage detection → fence repair → re-analysis — plus the
//! invariant that repair preserves architectural semantics.

use lcm::core::speculation::SpeculationConfig;
use lcm::core::TransmitterClass;
use lcm::detect::{repair, Detector, DetectorConfig, EngineKind};
use lcm::ir::interp::{InterpOutcome, Machine};
use lcm::ir::verify::verify_module;

const VICTIM: &str = r#"
    int array1[16]; int array2[4096]; int array1_size; int temp;
    int victim(int x) {
        if (x < array1_size)
            temp &= array2[array1[x] * 512];
        return temp;
    }
"#;

#[test]
fn full_pipeline_detect_repair_reanalyze() {
    let module = lcm::minic::compile(VICTIM).unwrap();
    assert!(verify_module(&module).is_empty());

    let det = Detector::new(DetectorConfig::default());
    let report = det.analyze_module(&module, EngineKind::Pht);
    assert!(report.count(TransmitterClass::UniversalData) >= 1);
    assert!(report.functions[0].saeg_size > 0);

    let (fixed, fences) = repair(&module, &det, EngineKind::Pht);
    assert_eq!(fences, 1, "one lfence repairs vanilla Spectre v1 (§6.1)");
    assert!(
        verify_module(&fixed).is_empty(),
        "repaired module is valid IR"
    );
    assert!(det.analyze_module(&fixed, EngineKind::Pht).is_clean());
}

#[test]
fn repair_preserves_architectural_semantics() {
    let module = lcm::minic::compile(VICTIM).unwrap();
    let det = Detector::new(DetectorConfig::default());
    let (fixed, _) = repair(&module, &det, EngineKind::Pht);

    // Fences change no architectural result: interpret both modules on a
    // grid of inputs with identical initial memory.
    for x in [-1i64, 0, 3, 15, 16, 100] {
        let run = |m: &lcm::ir::Module| {
            let mut mach = Machine::new(m);
            mach.set_global("array1_size", 0, 16);
            mach.set_global("temp", 0, -1);
            for i in 0..16 {
                mach.set_global("array1", i, i64::from(i) * 3 % 7);
            }
            mach.call("victim", &[x], 1_000_000).unwrap()
        };
        let (orig, fixed_out) = (run(&module), run(&fixed));
        assert_eq!(orig, fixed_out, "x={x}");
        let InterpOutcome::Returned(Some(_)) = orig else {
            panic!("victim returns a value")
        };
    }
}

#[test]
fn saeg_sizes_track_source_size() {
    let small = lcm::minic::compile("int A[4]; int t; void f(int i) { t = A[0]; }").unwrap();
    let large = lcm::minic::compile(
        "int A[64]; int t;
         void f(int i) { t = A[0]+A[1]+A[2]+A[3]+A[4]+A[5]+A[6]+A[7]+A[8]+A[9]; }",
    )
    .unwrap();
    let cfg = SpeculationConfig::default();
    let s1 = lcm::aeg::Saeg::build(&small, "f", cfg).unwrap();
    let s2 = lcm::aeg::Saeg::build(&large, "f", cfg).unwrap();
    assert!(s2.events.len() > s1.events.len());
}

#[test]
fn engines_differ_only_in_speculation_primitive() {
    // §5.3: a program with only an STL-style leak is invisible to the PHT
    // engine and vice versa.
    let stl_only = lcm::minic::compile(
        r#"
        int slot; int pub_ary[4096]; int tmp;
        void f(int v) {
            slot = v & 15;
            tmp &= pub_ary[slot];
        }"#,
    )
    .unwrap();
    let det = Detector::new(DetectorConfig::default());
    assert!(det.analyze_module(&stl_only, EngineKind::Pht).is_clean());
    assert!(!det.analyze_module(&stl_only, EngineKind::Stl).is_clean());

    let pht_only = lcm::minic::compile(
        r#"
        int A[16]; int B[4096]; int size_A; int tmp;
        void f(register int y) {
            if (y < size_A)
                tmp &= B[A[y]];
        }"#,
    )
    .unwrap();
    assert!(!det.analyze_module(&pht_only, EngineKind::Pht).is_clean());
    assert!(det.analyze_module(&pht_only, EngineKind::Stl).is_clean());
}

#[test]
fn undefined_calls_are_havocked_and_analyzed() {
    let module = lcm::minic::compile(
        r#"
        int buf[64]; int size; int tmp; int table[4096];
        void f(int n, int *dst) {
            memcpy(dst, n);
            if (n < size)
                tmp &= table[buf[n]];
        }"#,
    )
    .unwrap();
    let det = Detector::new(DetectorConfig::default());
    let report = det.analyze_module(&module, EngineKind::Pht);
    assert!(report.count(TransmitterClass::UniversalData) >= 1);
}

#[test]
fn inlined_callee_leak_detected_in_caller() {
    let module = lcm::minic::compile(
        r#"
        int A[16]; int B[4096]; int size_A; int tmp;
        int gadget(int y) { return B[A[y] * 512]; }
        void caller(int y) {
            if (y < size_A)
                tmp &= gadget(y);
        }"#,
    )
    .unwrap();
    let det = Detector::new(DetectorConfig::default());
    let caller = det.analyze_function(&module, "caller", EngineKind::Pht);
    assert!(
        caller
            .transmitters
            .iter()
            .any(|f| f.class == TransmitterClass::UniversalData),
        "the leak crosses the (inlined) call boundary"
    );
}

#[test]
fn loop_summarization_covers_loop_body_leaks() {
    let module = lcm::minic::compile(
        r#"
        int A[16]; int B[4096]; int size_A; int tmp;
        void f(int n) {
            int i;
            for (i = 0; i < n; i += 1) {
                if (i < size_A)
                    tmp &= B[A[i] * 512];
            }
        }"#,
    )
    .unwrap();
    let det = Detector::new(DetectorConfig::default());
    let r = det.analyze_function(&module, "f", EngineKind::Pht);
    assert!(
        !r.transmitters.is_empty(),
        "two unrollings expose the body leak"
    );
}
