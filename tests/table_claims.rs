//! Integration: the §6.1 per-benchmark claims over the corpus ground
//! truth — the qualitative content of Table 2.

use lcm::core::TransmitterClass;
use lcm::corpus::{crypto, litmus_fwd, litmus_new, litmus_pht, litmus_stl, Intended};
use lcm::detect::{repair, Detector, DetectorConfig, EngineKind};
use lcm::haunted::{HauntedConfig, HauntedEngine};

fn det() -> Detector {
    Detector::new(DetectorConfig::default())
}

#[test]
fn clou_finds_all_intended_pht_transmitters() {
    // "Clou identifies all intended transmitters in the PHT programs."
    for b in litmus_pht() {
        let m = b.module();
        let r = det().analyze_module(&m, EngineKind::Pht);
        match b.intended {
            Intended::PhtUdt => assert!(
                r.count(TransmitterClass::UniversalData) >= 1,
                "{}: UDT expected, got {:?}",
                b.name,
                r.findings().map(|f| f.class).collect::<Vec<_>>()
            ),
            Intended::PhtDt => assert!(
                r.count(TransmitterClass::Data) + r.count(TransmitterClass::Control) >= 1,
                "{}: DT/CT expected",
                b.name
            ),
            _ => {}
        }
    }
}

#[test]
fn clou_stl_finds_intended_stl_leaks_and_mislabelled_secure() {
    for b in litmus_stl() {
        let m = b.module();
        let r = det().analyze_module(&m, EngineKind::Stl);
        match b.intended {
            Intended::StlLeak => {
                assert!(!r.is_clean(), "{}: STL leak expected", b.name);
            }
            Intended::MislabelledSecure => {
                // The STL13 claim: the original suite labels it secure;
                // Clou finds leakage anyway.
                assert!(!r.is_clean(), "{}: mislabelled-secure leak expected", b.name);
            }
            Intended::Secure
                // stl07 (register) and stl08 (lfence) are truly clean.
                // stl06/stl12 are masked-index programs: the paper
                // documents these as Clou false positives (no semantic
                // reasoning about masking) — so no assertion either way.
                if (b.name == "stl07" || b.name == "stl08") => {
                    assert!(r.is_clean(), "{}: must stay clean", b.name);
                }
            _ => {}
        }
    }
}

#[test]
fn masked_stl_programs_are_documented_false_positives() {
    // §6.1: "Clou does not perform semantic analysis and thus cannot
    // reason about the implications of index masking." Pin the behaviour
    // so a future semantic-analysis feature shows up as a diff here.
    let fp: Vec<&str> = litmus_stl()
        .iter()
        .filter(|b| b.intended == Intended::Secure && b.name != "stl07" && b.name != "stl08")
        .map(|b| b.name)
        .collect();
    assert_eq!(fp, ["stl06", "stl12"]);
    for name in fp {
        let b = litmus_stl().into_iter().find(|b| b.name == name).unwrap();
        let r = det().analyze_module(&b.module(), EngineKind::Stl);
        assert!(
            !r.is_clean(),
            "{name}: expected (documented) false positive"
        );
    }
}

#[test]
fn fwd_and_new_leaks_found() {
    // "Clou finds all intended leakage in the FWD and NEW benchmarks."
    for b in litmus_fwd().into_iter().chain(litmus_new()) {
        let m = b.module();
        let pht = det().analyze_module(&m, EngineKind::Pht);
        assert!(!pht.is_clean(), "{}: PHT leakage expected", b.name);
    }
}

#[test]
fn repair_mitigates_all_detected_litmus_leakage() {
    // "We direct Clou to perform fence insertion in all benchmarks and
    // confirm that all initially-detected leakage is mitigated."
    let d = det();
    for (engine, benches) in [
        (EngineKind::Pht, litmus_pht()),
        (EngineKind::Stl, litmus_stl()),
        (EngineKind::Pht, litmus_fwd()),
        (EngineKind::Pht, litmus_new()),
    ] {
        for b in benches {
            let m = b.module();
            let report = d.analyze_module(&m, engine);
            if report.is_clean() {
                continue;
            }
            let (fixed, fences) = repair(&m, &d, engine);
            assert!(fences >= 1, "{}: fences inserted", b.name);
            let re = d.analyze_module(&fixed, engine);
            assert!(re.is_clean(), "{}: repaired but still leaks", b.name);
        }
    }
}

#[test]
fn pht_repairs_use_one_fence() {
    // Paper: 1 fence per vulnerable program for PHT benchmarks.
    let d = det();
    for b in litmus_pht() {
        if b.intended != Intended::PhtUdt && b.intended != Intended::PhtDt {
            continue;
        }
        let m = b.module();
        let report = d.analyze_module(&m, EngineKind::Pht);
        if report.is_clean() {
            continue;
        }
        let (fixed, fences) = repair(&m, &d, EngineKind::Pht);
        // The paper inserts one fence per vulnerable *source* program; our
        // repair works on the A-CFG, where loop unrolling (pht05) and
        // short-circuit lowering (pht06) multiply the speculation sites.
        // Bound: at most one fence per conditional branch of the repaired
        // A-CFG (exactness for the single-branch case is asserted in
        // tests/pipeline.rs).
        let branches: usize = fixed
            .functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .filter(|b| matches!(b.term, lcm::ir::Terminator::CondBr { .. }))
            .count();
        assert!(
            fences <= 2 * branches,
            "{}: {fences} fences exceeds both sides of {branches} speculation sites",
            b.name
        );
    }
}

#[test]
fn crypto_universal_leakage_matches_ground_truth() {
    // The paper searches crypto libraries for UDTs/UCTs only. Constant-
    // time kernels stay universal-free; the seeded gadgets are found.
    let d = det();
    for b in crypto::all_crypto() {
        let m = b.module();
        let r = d.analyze_module(&m, EngineKind::Pht);
        let universal =
            r.count(TransmitterClass::UniversalData) + r.count(TransmitterClass::UniversalControl);
        match b.intended {
            Intended::Secure | Intended::NonTransientLeak => assert_eq!(
                universal, 0,
                "{}: no universal (speculative) transmitters expected",
                b.name
            ),
            _ => assert!(universal >= 1, "{}: universal leakage expected", b.name),
        }
    }
}

#[test]
fn non_transient_crypto_leakage_caught_dynamically() {
    // The AES T-table kernel is invisible to the Spectre engines (no
    // speculation primitive) but leaks non-transiently: the dynamic
    // trace-level analysis flags data transmitters, tea/chacha stay
    // clean.
    use lcm::aeg::trace::execution_from_trace;
    use lcm::core::detect_leakage;
    use lcm::ir::interp::Machine;

    let dt_count = |b: &lcm::corpus::Bench, f: &str, setup: &[(&str, u32, i64)]| {
        let m = b.module();
        let mut mach = Machine::new(&m);
        for &(g, i, v) in setup {
            mach.set_global(g, i, v);
        }
        let (_, trace) = mach.call_traced(f, &[], 2_000_000).unwrap();
        let x = execution_from_trace(&m, &trace);
        detect_leakage(&x)
            .summary()
            .into_iter()
            .filter(|t| t.class.severity_rank() >= TransmitterClass::Data.severity_rank())
            .count()
    };

    let aes = crypto::aes_ttable_like();
    assert!(
        dt_count(&aes, "aes_round", &[("sec_rk", 0, 0x5a), ("st", 0, 0x13)]) >= 1,
        "T-table round leaks data-dependent state"
    );
    let tea = crypto::tea();
    assert_eq!(
        dt_count(&tea, "tea_encrypt", &[("tea_k", 0, 7)]),
        0,
        "tea is constant-time at trace level too"
    );
    let chacha = crypto::chacha_like();
    assert_eq!(
        dt_count(&chacha, "double_round", &[]),
        0,
        "chacha is constant-time"
    );
}

#[test]
fn baseline_detects_but_does_not_classify() {
    // BH finds PHT leaks in the classic victim but reports flat counts.
    let b = &litmus_pht()[0];
    let m = b.module();
    let r = lcm::haunted::analyze_module(&m, HauntedEngine::Pht, HauntedConfig::default());
    assert!(r.total_leaks() >= 1);
    // And misses nothing the paper says it finds on NEW (BH succeeds on
    // NEW where Pitchfork fails, §6.1).
    for b in litmus_new() {
        let m = b.module();
        let r = lcm::haunted::analyze_module(&m, HauntedEngine::Pht, HauntedConfig::default());
        assert!(
            r.total_leaks() >= 1,
            "{}: baseline finds NEW leakage",
            b.name
        );
    }
}

#[test]
fn tea_is_clean_of_universal_transmitters_under_both_engines() {
    let b = crypto::tea();
    let m = b.module();
    let d = det();
    for engine in [EngineKind::Pht, EngineKind::Stl] {
        let r = d.analyze_module(&m, engine);
        assert_eq!(r.count(TransmitterClass::UniversalData), 0);
        assert_eq!(r.count(TransmitterClass::UniversalControl), 0);
        assert_eq!(
            r.count(TransmitterClass::Data),
            0,
            "tea is fully constant-time"
        );
    }
}
