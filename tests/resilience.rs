//! Tier-1: the resilience layer degrades gracefully and is an
//! observational no-op when idle.
//!
//! Three guarantees back the `--timeout-ms`/`--max-conflicts` flags and
//! the `LCM_FAULT` injection matrix:
//!
//! 1. with no faults armed and budgets at their defaults (or merely
//!    generous), findings are *identical* to an ungoverned run and every
//!    function reports `Completed`;
//! 2. each [`AnalysisError`] variant is reachable through its fault site
//!    (or organically through a zero budget) and degrades only the
//!    targeted function, keeping whatever findings were already made;
//! 3. a worker panic under `--jobs N` is confined to its function: the
//!    other N−1 functions complete with unchanged findings.

use std::time::Duration;

use lcm::core::fault::{site, FaultPlan};
use lcm::core::govern::{AnalysisError, BudgetKind, Budgets};
use lcm::corpus::all_litmus;
use lcm::detect::{Detector, DetectorConfig, EngineKind, FunctionStatus, ModuleReport};

/// True when the surrounding environment armed `LCM_FAULT` (the CI
/// fault matrix). Every test that assumes a clean environment skips
/// itself then — the armed plan merges into *every* `analyze_module`.
fn env_faults_armed() -> bool {
    std::env::var(lcm::core::fault::FAULT_ENV).is_ok_and(|v| !v.trim().is_empty())
}

/// A four-function module, each function an independent Spectre-v1
/// gadget with at least one universal finding.
const FOUR_VICTIMS: &str = r#"
    int A[16]; int B[4096]; int size; int tmp;
    void victim_0(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_1(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_2(int y) { if (y < size) tmp &= B[A[y] * 512]; }
    void victim_3(int y) { if (y < size) tmp &= B[A[y] * 512]; }
"#;

fn detector(budgets: Budgets, faults: FaultPlan, jobs: usize) -> Detector {
    Detector::new(DetectorConfig {
        jobs,
        budgets,
        faults,
        ..DetectorConfig::default()
    })
}

/// Analyzes `FOUR_VICTIMS` with the given budgets/faults.
fn run_four(budgets: Budgets, faults: FaultPlan, jobs: usize) -> ModuleReport {
    let m = lcm::minic::compile(FOUR_VICTIMS).expect("compiles");
    detector(budgets, faults, jobs).analyze_module(&m, EngineKind::Pht)
}

/// The status of the single function of a one-gadget module analyzed
/// with `faults` armed.
fn single_status(faults: FaultPlan) -> FunctionStatus {
    let m = lcm::minic::compile(
        "int A[16]; int B[4096]; int size; int tmp;
         void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }",
    )
    .expect("compiles");
    let r = detector(Budgets::default(), faults, 1).analyze_module(&m, EngineKind::Pht);
    r.functions[0].status.clone()
}

/// Guarantee 1: a governor armed with generous budgets changes nothing —
/// findings, order, witness seeds, and sizes all match the ungoverned
/// run on every litmus program, for every engine, and everything
/// reports `Completed`.
#[test]
fn generous_budgets_are_an_observational_noop() {
    if env_faults_armed() {
        return;
    }
    let generous = Budgets {
        timeout: Some(Duration::from_secs(3600)),
        max_conflicts: Some(u64::MAX / 2),
        max_saeg_nodes: Some(usize::MAX / 2),
        max_saeg_edges: Some(usize::MAX / 2),
    };
    for (suite, benches) in all_litmus() {
        for b in benches {
            let m = b.module();
            for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
                let plain = detector(Budgets::default(), FaultPlan::default(), 1)
                    .analyze_module(&m, engine);
                let governed =
                    detector(generous, FaultPlan::default(), 1).analyze_module(&m, engine);
                assert!(
                    plain.all_completed() && governed.all_completed(),
                    "{suite}/{}/{engine:?}: all completed",
                    b.name
                );
                assert_eq!(plain.functions.len(), governed.functions.len());
                for (p, g) in plain.functions.iter().zip(&governed.functions) {
                    assert_eq!(p.name, g.name, "{suite}/{}: order", b.name);
                    assert_eq!(
                        p.transmitters, g.transmitters,
                        "{suite}/{}/{}/{engine:?}: findings governed vs ungoverned",
                        b.name, p.name
                    );
                    assert_eq!(p.saeg_size, g.saeg_size);
                }
            }
        }
    }
}

#[test]
fn timeout_fault_degrades_with_timeout() {
    if env_faults_armed() {
        return;
    }
    let s = single_status(FaultPlan::default().arm(site::TIMEOUT, Some(0)));
    assert!(
        matches!(s, FunctionStatus::Degraded(AnalysisError::Timeout { .. })),
        "got {s:?}"
    );
}

#[test]
fn conflict_budget_fault_degrades_with_budget_exceeded() {
    if env_faults_armed() {
        return;
    }
    let s = single_status(FaultPlan::default().arm(site::CONFLICT_BUDGET, Some(0)));
    assert_eq!(
        s,
        FunctionStatus::Degraded(AnalysisError::BudgetExceeded {
            kind: BudgetKind::SolverConflicts
        })
    );
}

/// The node budget is exercised *organically*: a 1-node ceiling trips on
/// any real function.
#[test]
fn node_budget_degrades_organically() {
    if env_faults_armed() {
        return;
    }
    let r = run_four(
        Budgets {
            max_saeg_nodes: Some(1),
            ..Budgets::default()
        },
        FaultPlan::default(),
        1,
    );
    assert_eq!(r.degraded_count(), r.functions.len());
    for f in &r.functions {
        assert_eq!(
            f.status,
            FunctionStatus::Degraded(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegNodes
            }),
            "{}",
            f.name
        );
    }
}

#[test]
fn edge_budget_fault_degrades_with_budget_exceeded() {
    if env_faults_armed() {
        return;
    }
    let s = single_status(FaultPlan::default().arm(site::EDGE_BUDGET, Some(0)));
    assert_eq!(
        s,
        FunctionStatus::Degraded(AnalysisError::BudgetExceeded {
            kind: BudgetKind::SaegEdges
        })
    );
}

#[test]
fn malformed_ir_fault_degrades_with_malformed_ir() {
    if env_faults_armed() {
        return;
    }
    let s = single_status(FaultPlan::default().arm(site::MALFORMED_IR, Some(0)));
    assert!(
        matches!(
            s,
            FunctionStatus::Degraded(AnalysisError::MalformedIr { .. })
        ),
        "got {s:?}"
    );
}

#[test]
fn solver_abort_fault_degrades_with_solver_abort() {
    if env_faults_armed() {
        return;
    }
    let s = single_status(FaultPlan::default().arm(site::SOLVER_ABORT, Some(0)));
    assert_eq!(s, FunctionStatus::Degraded(AnalysisError::SolverAbort));
}

/// Guarantee 2 for timeouts, organically: a zero wall-clock budget trips
/// at the first poll, before any per-function work.
#[test]
fn zero_timeout_degrades_every_function() {
    if env_faults_armed() {
        return;
    }
    let r = run_four(
        Budgets {
            timeout: Some(Duration::ZERO),
            ..Budgets::default()
        },
        FaultPlan::default(),
        1,
    );
    assert_eq!(r.degraded_count(), 4);
    for f in &r.functions {
        assert_eq!(
            f.status,
            FunctionStatus::Degraded(AnalysisError::Timeout { budget_ms: 0 }),
            "{}",
            f.name
        );
    }
}

/// Guarantee 3: a worker panic in function 1 under `--jobs 4` degrades
/// only function 1; the other three complete with findings identical to
/// the fault-free run.
#[test]
fn worker_panic_is_confined_to_its_function() {
    if env_faults_armed() {
        return;
    }
    let clean = run_four(Budgets::default(), FaultPlan::default(), 4);
    assert!(clean.all_completed());
    assert!(!clean.is_clean(), "the gadgets must actually leak");

    let faulty = run_four(
        Budgets::default(),
        FaultPlan::default().arm(site::WORKER_PANIC, Some(1)),
        4,
    );
    assert_eq!(faulty.functions.len(), 4);
    assert_eq!(faulty.degraded_count(), 1);
    for (i, (c, f)) in clean.functions.iter().zip(&faulty.functions).enumerate() {
        assert_eq!(c.name, f.name, "function order");
        if i == 1 {
            assert!(
                matches!(
                    f.status,
                    FunctionStatus::Degraded(AnalysisError::WorkerPanic { .. })
                ),
                "got {:?}",
                f.status
            );
            assert!(f.transmitters.is_empty(), "panicked worker yields nothing");
        } else {
            assert_eq!(f.status, FunctionStatus::Completed);
            assert_eq!(
                c.transmitters, f.transmitters,
                "{}: findings unchanged by the neighbouring panic",
                f.name
            );
        }
    }
}

/// Partial results survive degradation: keep whatever was found before
/// the governor tripped, never garbage. A degraded function's findings
/// must be a (possibly empty) prefix-closed subset of the completed
/// run's findings.
#[test]
fn degraded_findings_are_a_lower_bound() {
    if env_faults_armed() {
        return;
    }
    let clean = run_four(Budgets::default(), FaultPlan::default(), 1);
    let clean_keys: Vec<_> = clean.functions[0]
        .transmitters
        .iter()
        .map(lcm::detect::Finding::key)
        .collect();
    // A conflict-budget fault trips at the first feasibility query, so
    // the degraded run found no more than the clean run.
    let degraded = run_four(
        Budgets::default(),
        FaultPlan::default().arm(site::CONFLICT_BUDGET, None),
        1,
    );
    for f in &degraded.functions {
        assert!(!f.status.is_completed());
        for t in &f.transmitters {
            assert!(
                clean_keys.contains(&t.key()),
                "{}: degraded run invented finding {t:?}",
                f.name
            );
        }
    }
}

/// The facade's `analyze_source` surfaces front-end failures as
/// `MalformedIr` instead of panicking.
#[test]
fn analyze_source_reports_malformed_source() {
    if env_faults_armed() {
        return;
    }
    let det = Detector::new(DetectorConfig::default());
    let err = lcm::analyze_source("int A[-3];", &det, EngineKind::Pht).unwrap_err();
    assert!(
        matches!(err, AnalysisError::MalformedIr { .. }),
        "got {err:?}"
    );
    let ok = lcm::analyze_source(FOUR_VICTIMS, &det, EngineKind::Pht).expect("valid source");
    assert_eq!(ok.functions.len(), 4);
    assert!(ok.all_completed());
}

/// CI fault-matrix entry point: when the environment arms `LCM_FAULT`,
/// the armed site must actually degrade analysis (proving the env wiring
/// end to end). A no-op when the environment is clean.
#[test]
fn env_armed_fault_degrades_analysis() {
    if !env_faults_armed() {
        return;
    }
    // Dotted sites (`store.corrupt_record`, `serve.drop_conn`) are
    // subsystem-scoped: they fire in the result store / daemon, not in
    // a plain detector run, so nothing would degrade here. Their
    // end-to-end env wiring is proven by tests/cache.rs and
    // tests/server.rs instead.
    let armed = std::env::var(lcm::core::fault::FAULT_ENV).unwrap();
    if armed
        .split(',')
        .all(|spec| spec.split('@').next().unwrap_or("").contains('.'))
    {
        return;
    }
    let r = run_four(Budgets::default(), FaultPlan::default(), 2);
    assert!(
        r.degraded_count() > 0,
        "LCM_FAULT armed but nothing degraded"
    );
    let site = std::env::var(lcm::core::fault::FAULT_ENV).unwrap();
    let site = site.split('@').next().unwrap_or("").trim().to_string();
    for f in r.degraded() {
        let err = f.status.error().expect("degraded");
        let matches_site = match site.as_str() {
            site::TIMEOUT => matches!(err, AnalysisError::Timeout { .. }),
            site::CONFLICT_BUDGET => matches!(
                err,
                AnalysisError::BudgetExceeded {
                    kind: BudgetKind::SolverConflicts
                }
            ),
            site::NODE_BUDGET => matches!(
                err,
                AnalysisError::BudgetExceeded {
                    kind: BudgetKind::SaegNodes
                }
            ),
            site::EDGE_BUDGET => matches!(
                err,
                AnalysisError::BudgetExceeded {
                    kind: BudgetKind::SaegEdges
                }
            ),
            site::MALFORMED_IR => matches!(err, AnalysisError::MalformedIr { .. }),
            site::WORKER_PANIC => matches!(err, AnalysisError::WorkerPanic { .. }),
            site::SOLVER_ABORT => matches!(err, AnalysisError::SolverAbort),
            _ => true, // compound plans: any degradation counts
        };
        assert!(
            matches_site,
            "{}: {err} does not match site `{site}`",
            f.name
        );
    }
}
