//! Integration: the extensions beyond the paper's tool, exercised through
//! the facade (each is marked "extension" in the rustdoc; see DESIGN.md
//! §4b).

use lcm::core::cat::{presets, CatModel};
use lcm::core::confidentiality::{SilentStoreLcm, X86Lcm};
use lcm::core::exec::ExecutionBuilder;
use lcm::core::speculation::SpeculationPrimitive;
use lcm::core::{EventId, TransmitterClass};
use lcm::detect::{describe, repair, witness_dot, Detector, DetectorConfig, EngineKind};
use lcm::litmus::enumerate::{compare_models, Litmus};

#[test]
fn psf_engine_and_repair_roundtrip() {
    let src = r#"
        int C[2]; int A[4096]; int B[4096]; int tmp;
        void psf_victim(register int y) {
            C[0] = 64;
            tmp &= B[A[C[1] * y]];
        }"#;
    let m = lcm::minic::compile(src).unwrap();
    let det = Detector::new(DetectorConfig::default());
    let report = det.analyze_module(&m, EngineKind::Psf);
    assert!(!report.is_clean());
    assert!(report
        .findings()
        .all(|f| f.primitive == SpeculationPrimitive::AliasPrediction));
    // Repair converges for the PSF engine too.
    let (fixed, fences) = repair(&m, &det, EngineKind::Psf);
    assert!(fences >= 1);
    assert!(det.analyze_module(&fixed, EngineKind::Psf).is_clean());
}

#[test]
fn witness_rendering_through_facade() {
    let src = r#"
        int A[16]; int B[4096]; int size; int tmp;
        void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }"#;
    let m = lcm::minic::compile(src).unwrap();
    let det = Detector::new(DetectorConfig::default());
    let report = det.analyze_module(&m, EngineKind::Pht);
    let f = report
        .findings()
        .find(|f| f.class == TransmitterClass::UniversalData)
        .unwrap();
    let saeg = lcm::aeg::Saeg::build(&m, "victim", det.config().spec).unwrap();
    let dot = witness_dot(&saeg, f);
    assert!(dot.contains("UDT") && dot.contains("mispredicted"));
    let text = describe(&saeg, f);
    assert!(text.contains("UDT") && text.contains("index"));
}

#[test]
fn cat_language_expresses_the_paper_presets() {
    for (name, spec) in [
        ("sc_per_loc", presets::SC_PER_LOC),
        ("tso", presets::TSO),
        ("sc", presets::SC),
        ("naive-x", presets::SC_PER_LOC_X),
    ] {
        assert!(CatModel::parse(name, spec).is_ok(), "{name} parses");
    }
    // And the naive lift disagrees with the x86 confidentiality predicate
    // on the Spectre v4 witness, as §4.2 demands.
    let (x, _) = lcm::litmus::programs::spectre_v4();
    let naive = CatModel::parse("naive", presets::SC_PER_LOC_X).unwrap();
    assert!(naive.eval(&x).is_err());
    assert!(lcm::core::confidentiality::ConfidentialityModel::check(&X86Lcm, &x).is_ok());
}

#[test]
fn model_comparison_orders_hardware_by_leakiness() {
    let make = |rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]| {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.silent_write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        for &(a, c) in rfx {
            b.rfx(a, c);
        }
        for &(a, c) in cox {
            b.cox(a, c);
        }
        b.build()
    };
    let template = make(&[], &[]);
    let cmp = compare_models(&template, &SilentStoreLcm, &X86Lcm, &make);
    assert!(cmp.first_is_weaker());
    assert!(cmp.leaky_only_first > 0);
}

#[test]
fn secret_filter_composes_with_engines() {
    let src = r#"
        int sec_tab[16]; int pub_tab[16]; int B[4096]; int size; int tmp;
        void mixed(int x) {
            if (x < size) {
                tmp &= B[sec_tab[x] * 16];
                tmp &= B[pub_tab[x] * 16];
            }
        }"#;
    let m = lcm::minic::compile(src).unwrap();
    let all = Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Pht);
    let filtered = Detector::new(DetectorConfig {
        secret_filter: true,
        ..DetectorConfig::default()
    })
    .analyze_module(&m, EngineKind::Pht);
    let count = |r: &lcm::detect::ModuleReport| {
        r.findings()
            .filter(|f| f.class == TransmitterClass::UniversalData)
            .count()
    };
    assert!(count(&filtered) >= 1, "secret chain survives");
    assert!(count(&filtered) < count(&all), "public chain filtered out");
}

#[test]
fn litmus_text_format_drives_cat_models() {
    let sb = Litmus::parse("W x; R y || W y; R x").unwrap();
    let tso = CatModel::parse("TSO", presets::TSO).unwrap();
    let sc = CatModel::parse("SC", presets::SC).unwrap();
    assert_eq!(sb.consistent_executions(&tso).len(), 4);
    assert_eq!(sb.consistent_executions(&sc).len(), 3);
}

#[test]
fn interference_findings_are_marked_and_self_describing() {
    let src = r#"
        int A[4096]; int idx_tbl[16]; int size; int tmp;
        void victim(int x) {
            if (x < size) { tmp &= A[idx_tbl[x] * 16]; }
            tmp &= A[0];
        }"#;
    let m = lcm::minic::compile(src).unwrap();
    let det = Detector::new(DetectorConfig {
        detect_interference: true,
        ..DetectorConfig::default()
    });
    let report = det.analyze_module(&m, EngineKind::Pht);
    let f = report
        .findings()
        .find(|f| f.interference)
        .expect("interference finding");
    let saeg = lcm::aeg::Saeg::build(&m, "victim", det.config().spec).unwrap();
    assert!(describe(&saeg, f).contains("speculative interference"));
}
