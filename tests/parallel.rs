//! Tier-1: the parallel analysis driver is an observational no-op.
//!
//! Two guarantees back every `--jobs` flag in the bench binaries:
//!
//! 1. `analyze_module` produces *identical* findings (not just identical
//!    counts) for any worker count — results are collected in function
//!    order, and each function's analysis is self-contained;
//! 2. the feasibility memo inside the SAT layer only short-circuits
//!    queries whose answer a fresh, uncached solver would reproduce.

use lcm::aeg::{Feasibility, Saeg};
use lcm::corpus::synth::{synthetic_library, SynthConfig};
use lcm::corpus::{all_litmus, litmus_pht, litmus_stl};
use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::haunted::{HauntedConfig, HauntedEngine};

/// Findings must match exactly — same order, same witnesses — across
/// jobs = 1, 2, 4 on every litmus program (pht + stl suites), so table
/// output is byte-identical modulo the time columns.
#[test]
fn analyze_module_is_deterministic_across_job_counts() {
    let suites = [("litmus-pht", litmus_pht()), ("litmus-stl", litmus_stl())];
    for (suite, benches) in suites {
        let engine = if suite == "litmus-stl" {
            EngineKind::Stl
        } else {
            EngineKind::Pht
        };
        for b in benches {
            let m = b.module();
            let serial = Detector::new(DetectorConfig {
                jobs: 1,
                ..DetectorConfig::default()
            })
            .analyze_module(&m, engine);
            for jobs in [2, 4] {
                let par = Detector::new(DetectorConfig {
                    jobs,
                    ..DetectorConfig::default()
                })
                .analyze_module(&m, engine);
                assert_eq!(
                    serial.functions.len(),
                    par.functions.len(),
                    "{suite}/{}: function count, jobs={jobs}",
                    b.name
                );
                for (s, p) in serial.functions.iter().zip(&par.functions) {
                    assert_eq!(s.name, p.name, "{suite}/{}: order, jobs={jobs}", b.name);
                    assert_eq!(
                        s.transmitters, p.transmitters,
                        "{suite}/{}/{}: findings, jobs={jobs}",
                        b.name, s.name
                    );
                    assert_eq!(s.saeg_size, p.saeg_size);
                }
            }
        }
    }
}

/// The Binsec/Haunted baseline fans out the same way and must agree
/// with its serial self on leak counts per function.
#[test]
fn haunted_baseline_is_deterministic_across_job_counts() {
    for (suite, benches) in all_litmus() {
        let engine = if suite == "litmus-stl" {
            HauntedEngine::Stl
        } else {
            HauntedEngine::Pht
        };
        for b in benches {
            let m = b.module();
            let serial = lcm::haunted::analyze_module(
                &m,
                engine,
                HauntedConfig {
                    jobs: 1,
                    ..HauntedConfig::default()
                },
            );
            let par = lcm::haunted::analyze_module(
                &m,
                engine,
                HauntedConfig {
                    jobs: 4,
                    ..HauntedConfig::default()
                },
            );
            let leaks = |r: &lcm::haunted::HauntedModuleReport| {
                r.functions
                    .iter()
                    .map(|f| (f.name.clone(), f.leaks.len()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(leaks(&serial), leaks(&par), "{suite}/{}", b.name);
        }
    }
}

/// Memoized feasibility answers equal fresh-solver answers: replay a
/// deterministic query workload on a seeded synthetic module against
/// (a) one trie-memoizing instance with the reachability pre-screen
/// force-disabled and (b) a fresh pre-screening instance per query —
/// cross-validating the trie memo, the solver, and the pre-screen
/// against each other.
#[test]
fn feasibility_memo_matches_uncached_solving() {
    let cfg = SynthConfig {
        seed: 0xfea5,
        functions: 4,
        ..SynthConfig::libsodium_scale()
    };
    let (src, _) = synthetic_library(cfg);
    let m = lcm::minic::compile(&src).expect("synthetic library compiles");
    let det = Detector::new(DetectorConfig::default());

    let mut total_queries = 0u64;
    let mut total_hits = 0u64;
    for f in m.public_functions() {
        let acfg = lcm::ir::acfg::build_acfg(&m, &f.name).expect("acfg");
        let saeg = Saeg::from_acfg(&f.name, acfg, det.config().spec);
        let mut memoized = Feasibility::with_prefilter(&saeg, false);
        let blocks: Vec<_> = saeg.topo_blocks().to_vec();
        // Ask each pairwise reachability question twice: the second
        // round is answered from the memo and must not change verdicts.
        for round in 0..2 {
            for &a in &blocks {
                for &b in &blocks {
                    let la = memoized.arch_lit(a);
                    let lb = memoized.arch_lit(b);
                    let mark = memoized.mark();
                    memoized.push(la);
                    memoized.push(lb);
                    let got = memoized.check_stack();
                    memoized.truncate(mark);

                    let mut fresh = Feasibility::new(&saeg);
                    let expect = fresh.check(&[la, lb]);
                    assert_eq!(got, expect, "{}: {a:?},{b:?} round {round}", f.name);
                }
            }
        }
        let stats = memoized.stats();
        total_queries += stats.queries;
        total_hits += stats.memo_hits;
    }
    assert!(total_queries > 0);
    // Round two is pure memo traffic, so at least half the queries hit.
    assert!(
        total_hits * 2 >= total_queries,
        "memo should absorb the replay: {total_hits}/{total_queries}"
    );
}
