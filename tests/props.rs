//! Cross-crate property tests: the DESIGN.md §5 invariants that span
//! subsystems.

use lcm::core::mcm::{ConsistencyModel, Sc, Tso};
use lcm::ir::interp::{InterpOutcome, Machine};
use lcm::litmus::enumerate::{Litmus, Op};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random litmus programs: architectural-semantics laws.
// ---------------------------------------------------------------------

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Op::r),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Op::w),
        Just(Op::F),
    ]
}

fn litmus_strategy() -> impl Strategy<Value = Litmus> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..=3), 1..=2)
        .prop_map(Litmus::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tso_is_weaker_than_sc(l in litmus_strategy()) {
        let sc = l.consistent_executions(&Sc);
        let tso = l.consistent_executions(&Tso);
        prop_assert!(sc.len() <= tso.len(), "SC ⊆ TSO violated");
        // And every SC-consistent execution is TSO-consistent: check by
        // re-evaluating the TSO predicate on the SC set.
        for x in &sc {
            prop_assert!(Tso.check(x).is_ok());
        }
    }

    #[test]
    fn candidate_executions_are_well_formed_and_fr_is_derived(l in litmus_strategy()) {
        for x in l.candidate_executions() {
            prop_assert!(x.well_formed().is_ok());
            // fr = rf˘ ; co by construction (§2.1.2).
            let fr = x.fr();
            let derived = x.rf().transpose().compose(x.co());
            prop_assert_eq!(fr, derived);
            // po ⊆ tfo always.
            prop_assert!(x.po().is_subset(x.tfo()));
        }
    }

    #[test]
    fn consistent_executions_have_acyclic_com_po_under_sc(l in litmus_strategy()) {
        for x in l.consistent_executions(&Sc) {
            let r = x.com().union(x.po());
            prop_assert!(lcm::relalg::acyclic(&r));
        }
    }
}

// ---------------------------------------------------------------------
// Random mini-C programs: the A-CFG transformation preserves semantics.
// ---------------------------------------------------------------------

/// A tiny generator of well-formed mini-C functions using arithmetic on
/// two globals, locals, `if`/`else`, and bounded loops (≤ 2 iterations, so
/// two-fold unrolling is exact).
#[derive(Debug, Clone)]
struct RandFn {
    src: String,
}

fn expr_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..8i64).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("a".to_string()),
        Just("G".to_string()),
        Just("H[1]".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = expr_strategy(depth - 1);
    prop_oneof![
        leaf,
        (
            sub.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*"), Just("&"), Just("^")],
            sub
        )
            .prop_map(|(l, o, r)| format!("({l} {o} {r})")),
    ]
    .boxed()
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<String> {
    let assign = (
        prop_oneof![Just("a"), Just("G"), Just("H[0]"), Just("H[2]")],
        expr_strategy(2),
    )
        .prop_map(|(l, e)| format!("{l} = {e};"));
    if depth == 0 {
        return assign.boxed();
    }
    let inner = stmt_strategy(depth - 1);
    prop_oneof![
        4 => assign,
        2 => (expr_strategy(1), inner.clone(), inner.clone())
            .prop_map(|(c, t, e)| format!("if ({c}) {{ {t} }} else {{ {e} }}")),
        1 => (0..=2u32, inner)
            .prop_map(|(n, b)| format!(
                "for (int i = 0; i < {n}; i += 1) {{ {b} }}"
            )),
    ]
    .boxed()
}

fn randfn_strategy() -> impl Strategy<Value = RandFn> {
    proptest::collection::vec(stmt_strategy(2), 1..6).prop_map(|stmts| RandFn {
        src: format!(
            "int G; int H[4];\nint f(int x) {{ int a = x; {} return a + G + H[0]; }}",
            stmts.join("\n    ")
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acfg_preserves_interpreter_semantics(rf in randfn_strategy(), x in -4i64..8) {
        let module = lcm::minic::compile(&rf.src).expect("generated source compiles");
        prop_assert!(lcm::ir::verify::verify_module(&module).is_empty());
        let acfg = lcm::ir::acfg::build_acfg(&module, "f").expect("A-CFG");
        let mut m2 = lcm::ir::Module::new();
        m2.globals = module.globals.clone();
        m2.add_function(acfg);

        let run = |m: &lcm::ir::Module| {
            let mut mach = Machine::new(m);
            mach.set_global("G", 0, 5);
            mach.set_global("H", 1, 7);
            mach.call("f", &[x], 1_000_000).unwrap()
        };
        let orig = run(&module);
        let transformed = run(&m2);
        prop_assert_eq!(&orig, &transformed, "source:\n{}", rf.src);
        let InterpOutcome::Returned(Some(_)) = orig else {
            return Err(TestCaseError::fail("f must return a value"));
        };
    }

    #[test]
    fn detector_never_panics_and_repair_converges(rf in randfn_strategy()) {
        use lcm::detect::{repair, Detector, DetectorConfig, EngineKind};
        let module = lcm::minic::compile(&rf.src).expect("compiles");
        let det = Detector::new(DetectorConfig::default());
        for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
            let report = det.analyze_module(&module, engine);
            if !report.is_clean() {
                let (fixed, fences) = repair(&module, &det, engine);
                prop_assert!(fences >= 1);
                prop_assert!(
                    det.analyze_module(&fixed, engine).is_clean(),
                    "repair did not converge for {:?} on:\n{}",
                    engine,
                    rf.src
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Relational algebra: closure laws against a naive reference.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `Relation::transitive_closure` (the bitset doubling in lcm-relalg)
    /// agrees with a textbook Floyd–Warshall on random relations up to
    /// n = 24 — the query-avoidance pre-filter in lcm-aeg leans on this
    /// closure for its reachability verdicts, so it gets its own oracle.
    #[test]
    fn transitive_closure_matches_floyd_warshall(
        n in 2..=24usize,
        bits in proptest::collection::vec(any::<bool>(), (24 * 24)..=(24 * 24)),
    ) {
        use lcm::relalg::Relation;
        let mut r = Relation::empty(n);
        for a in 0..n {
            for b in 0..n {
                if bits[a * 24 + b] {
                    r.insert(a, b);
                }
            }
        }
        let closed = r.transitive_closure();

        // Reference: plain boolean Floyd–Warshall.
        let mut reach = vec![vec![false; n]; n];
        for a in 0..n {
            for b in 0..n {
                reach[a][b] = bits[a * 24 + b];
            }
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }

        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    closed.contains(a, b),
                    reach[a][b],
                    "pair ({}, {}) of n={}", a, b, n
                );
            }
        }
    }
}
