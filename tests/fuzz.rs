//! Tier-1: the differential fuzzing subsystem end to end (DESIGN.md
//! §6i) — generator determinism across job counts, a zero-mismatch
//! quick sweep, enumeration-strategy agreement, and the fuzz-derived
//! corpus regressions. Runs inside the `LCM_FAULT` CI matrix: none of
//! these properties may move while faults fire elsewhere.

use lcm::corpus::{fuzz_regressions, Intended};
use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::fuzz::{generate_batch, run_sweep, FuzzConfig, LeakKind, OracleConfig};
use lcm::litmus::enumerate::Litmus;

/// Same seed, different worker counts: byte-identical programs.
#[test]
fn generator_is_deterministic_across_job_counts() {
    let baseline: Vec<String> = generate_batch(9, 64, 1)
        .iter()
        .map(|p| p.source())
        .collect();
    for jobs in [4, 8] {
        let got: Vec<String> = generate_batch(9, 64, jobs)
            .iter()
            .map(|p| p.source())
            .collect();
        assert_eq!(baseline, got, "batch diverged at --jobs {jobs}");
    }
    // And re-generation of a single index matches its batch slot.
    for (i, src) in baseline.iter().enumerate().step_by(17) {
        assert_eq!(lcm::fuzz::generate(9, i).source(), *src);
    }
}

/// A quick differential sweep stays mismatch-free and re-verifies its
/// repairs — the same obligation CI's `lcm-cli fuzz` step asserts.
#[test]
fn quick_sweep_has_no_mismatches() {
    let report = run_sweep(&FuzzConfig {
        seed: 9,
        count: 128,
        quick: true,
        ..Default::default()
    });
    assert!(
        report.ok(),
        "sweep failed: {} mismatches, {} repair failures, {} compile failures",
        report.mismatches.len(),
        report.repair_failures.len(),
        report.compile_failures
    );
    assert_eq!(report.programs, 128);
    assert_eq!(report.repairs_checked, report.repairs_clean);
    assert!(
        report.spec_leaky > 0 && report.secure > 0,
        "degenerate sweep: {} leaky / {} secure",
        report.spec_leaky,
        report.secure
    );
}

/// All four enumeration strategies agree on litmus-sized programs —
/// the streamed, symmetry-reduced, and parallel counts are the
/// materialized count.
#[test]
fn enumeration_strategies_agree() {
    use lcm::core::mcm::{ConsistencyModel, Sc, Tso};
    let programs = [
        "W x; R y || W y; R x",
        "W x; R y || W y; F; R x",
        "W x; W y; R z || W y; W z; R x || W z; W x; R y",
    ];
    for src in programs {
        let l = Litmus::parse(src).unwrap();
        for model in [&Sc as &(dyn ConsistencyModel + Sync), &Tso] {
            let materialized = l
                .candidate_executions()
                .iter()
                .filter(|x| model.check(x).is_ok())
                .count() as u64;
            assert_eq!(l.count_consistent(model), materialized, "{src}");
            assert_eq!(
                l.count_consistent_symmetric(model).total,
                materialized,
                "{src}"
            );
            for jobs in [1, 4, 8] {
                assert_eq!(l.count_consistent_par(&Sc, jobs), l.count_consistent(&Sc));
            }
        }
    }
}

/// Every fuzz-derived corpus regression keeps its pinned verdict, on
/// both sides of the differential: the reference oracle *and* the
/// matching engine.
#[test]
fn corpus_regressions_keep_their_verdicts() {
    let det = Detector::new(DetectorConfig::default());
    let ocfg = OracleConfig::default();
    for b in fuzz_regressions() {
        let m = b.module();
        let oracle = lcm::fuzz::analyze(&m, "victim", ocfg);
        let engine_finds = |e: EngineKind| !det.analyze_module(&m, e).is_clean();
        match b.intended {
            Intended::PhtUdt | Intended::PhtDt => {
                assert!(oracle.leaks(LeakKind::Pht), "{}: oracle misses PHT", b.name);
                assert!(
                    engine_finds(EngineKind::Pht),
                    "{}: engine misses PHT",
                    b.name
                );
            }
            Intended::StlLeak => {
                assert!(oracle.leaks(LeakKind::Stl), "{}: oracle misses STL", b.name);
                assert!(
                    engine_finds(EngineKind::Stl),
                    "{}: engine misses STL",
                    b.name
                );
            }
            Intended::PsfLeak => {
                assert!(oracle.leaks(LeakKind::Psf), "{}: oracle misses PSF", b.name);
                assert!(
                    engine_finds(EngineKind::Psf),
                    "{}: engine misses PSF",
                    b.name
                );
            }
            Intended::Secure => {
                assert!(
                    oracle.secure(),
                    "{}: oracle claims a leak in a secure program",
                    b.name
                );
            }
            Intended::NonTransientLeak => {
                assert!(oracle.arch_leak, "{}: oracle misses the arch leak", b.name);
            }
            Intended::MislabelledSecure => {}
        }
    }
}
