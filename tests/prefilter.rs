//! Tier-1: the query-avoidance layer is an observational no-op.
//!
//! The reachability pre-screen, the engine-level pre-filter fast paths,
//! and the trie memo only short-circuit work whose outcome the plain
//! SAT path would reproduce. Force-disabling the whole layer via
//! `DetectorConfig::disable_prefilter` must therefore yield *identical*
//! findings — same order, same classes, same witness seeds — on every
//! litmus program and on a seeded synthetic library, for every engine.

use lcm::corpus::all_litmus;
use lcm::corpus::synth::{synthetic_library, SynthConfig};
use lcm::detect::{Detector, DetectorConfig, EngineKind};
use lcm::ir::Module;

fn assert_identical(label: &str, m: &Module, engine: EngineKind) {
    let fast = Detector::new(DetectorConfig {
        jobs: 1,
        ..DetectorConfig::default()
    })
    .analyze_module(m, engine);
    let slow = Detector::new(DetectorConfig {
        jobs: 1,
        disable_prefilter: true,
        ..DetectorConfig::default()
    })
    .analyze_module(m, engine);

    assert_eq!(
        fast.functions.len(),
        slow.functions.len(),
        "{label}: function count"
    );
    for (f, s) in fast.functions.iter().zip(&slow.functions) {
        assert_eq!(f.name, s.name, "{label}: function order");
        assert_eq!(
            f.transmitters, s.transmitters,
            "{label}/{}: findings with vs without pre-filter",
            f.name
        );
        assert_eq!(f.saeg_size, s.saeg_size, "{label}/{}: saeg size", f.name);
    }

    // The disabled run must not have screened anything; the default run
    // should have (on any workload that issues queries at all).
    let ft = fast.timings();
    let st = slow.timings();
    assert_eq!(
        st.queries_avoided, 0,
        "{label}: disabled run still screened"
    );
    assert_eq!(
        st.prefilter_hits, 0,
        "{label}: disabled run still pre-filtered"
    );
    if ft.sat_queries + ft.queries_avoided > 0 {
        assert!(
            ft.sat_queries <= st.sat_queries,
            "{label}: pre-filter increased solver traffic ({} > {})",
            ft.sat_queries,
            st.sat_queries
        );
    }
}

/// Every litmus program, all three engines: findings are byte-identical
/// with the pre-filter layer force-disabled.
#[test]
fn litmus_findings_identical_without_prefilter() {
    for (suite, benches) in all_litmus() {
        for b in benches {
            let m = b.module();
            for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
                assert_identical(&format!("{suite}/{}/{engine:?}", b.name), &m, engine);
            }
        }
    }
}

/// A seeded synthetic library (multi-block functions with branches, so
/// the pre-screen's decision handling is exercised) agrees too.
#[test]
fn synthetic_findings_identical_without_prefilter() {
    let cfg = SynthConfig {
        seed: 0x9f11,
        functions: 6,
        ..SynthConfig::libsodium_scale()
    };
    let (src, _) = synthetic_library(cfg);
    let m = lcm::minic::compile(&src).expect("synthetic library compiles");
    for engine in [EngineKind::Pht, EngineKind::Stl] {
        assert_identical(&format!("synth/{engine:?}"), &m, engine);
    }
}
