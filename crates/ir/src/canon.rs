//! Canonical byte encoding of functions for content addressing.
//!
//! The incremental result cache (`lcm-store`) keys cached per-function
//! analysis results by a *structural fingerprint*: a hash of everything
//! about the program that can influence the function's findings. This
//! module produces the byte stream under that hash.
//!
//! Because A-CFG construction inlines calls exhaustively and unrolls
//! loops ([`acfg::SUMMARY_COPIES`] times), a function's analysis result
//! depends not just on its own body but on the bodies of every
//! transitively-called defined function and on every global any of them
//! references (sizes, pointer-ness, secrecy labels, initializers all
//! feed the alias/taint/secret layers). [`encode_function_deps`]
//! therefore encodes, deterministically:
//!
//! 1. a format version and the unroll depth,
//! 2. the target function's full structure (params, instruction arena,
//!    blocks, terminators),
//! 3. every transitive callee defined in the module, sorted by name,
//! 4. every global referenced by any encoded function, in id order.
//!
//! Changing one byte of one function's source changes only that
//! function's encoding (plus its callers', which inline it) — the
//! invalidation granularity the cache needs.

use std::collections::BTreeSet;

use crate::acfg;
use crate::{Block, Function, GlobalId, Inst, Module, Terminator, Ty};

/// Bumped whenever the encoding (or anything upstream of it that alters
/// analysis results for identical bytes) changes shape.
pub const CANON_VERSION: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ty(out: &mut Vec<u8>, ty: Ty) {
    out.push(match ty {
        Ty::Int => 0,
        Ty::Ptr => 1,
    });
}

fn encode_inst(out: &mut Vec<u8>, inst: &Inst) {
    match inst {
        Inst::Const(v) => {
            out.push(0);
            put_i64(out, *v);
        }
        Inst::Param { index, ty } => {
            out.push(1);
            put_u32(out, *index as u32);
            put_ty(out, *ty);
        }
        Inst::GlobalAddr(g) => {
            out.push(2);
            put_u32(out, g.0);
        }
        Inst::Alloca { name, size } => {
            out.push(3);
            put_str(out, name);
            put_u32(out, *size);
        }
        Inst::Load { addr, ty } => {
            out.push(4);
            put_u32(out, addr.0);
            put_ty(out, *ty);
        }
        Inst::Store { addr, value } => {
            out.push(5);
            put_u32(out, addr.0);
            put_u32(out, value.0);
        }
        Inst::Gep { base, index, scale } => {
            out.push(6);
            put_u32(out, base.0);
            put_u32(out, index.0);
            put_u32(out, *scale);
        }
        Inst::Bin { op, lhs, rhs } => {
            out.push(7);
            out.push(*op as u8);
            put_u32(out, lhs.0);
            put_u32(out, rhs.0);
        }
        Inst::Call { callee, args, ty } => {
            out.push(8);
            put_str(out, callee);
            put_u32(out, args.len() as u32);
            for a in args {
                put_u32(out, a.0);
            }
            put_ty(out, *ty);
        }
        Inst::Havoc {
            callee,
            ptr_args,
            ty,
        } => {
            out.push(9);
            put_str(out, callee);
            put_u32(out, ptr_args.len() as u32);
            for a in ptr_args {
                put_u32(out, a.0);
            }
            put_ty(out, *ty);
        }
        Inst::Fence => out.push(10),
    }
}

fn encode_block(out: &mut Vec<u8>, b: &Block) {
    put_u32(out, b.insts.len() as u32);
    for i in &b.insts {
        put_u32(out, i.0);
    }
    match &b.term {
        Terminator::Br(t) => {
            out.push(0);
            put_u32(out, t.0);
        }
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            out.push(1);
            put_u32(out, cond.0);
            put_u32(out, then_bb.0);
            put_u32(out, else_bb.0);
        }
        Terminator::Ret(v) => {
            out.push(2);
            match v {
                Some(v) => {
                    out.push(1);
                    put_u32(out, v.0);
                }
                None => out.push(0),
            }
        }
    }
}

/// Encodes one function's full structure (name, params, instruction
/// arena, CFG shape). Used by [`encode_function_deps`]; exposed for
/// callers that want single-function (no-inlining) addressing.
pub fn encode_function(out: &mut Vec<u8>, f: &Function) {
    put_str(out, &f.name);
    out.push(f.is_public as u8);
    put_u32(out, f.params.len() as u32);
    for (name, ty) in &f.params {
        put_str(out, name);
        put_ty(out, *ty);
    }
    put_u32(out, f.insts.len() as u32);
    for inst in &f.insts {
        encode_inst(out, inst);
    }
    put_u32(out, f.blocks.len() as u32);
    for b in &f.blocks {
        encode_block(out, b);
    }
}

/// Names of defined functions `f` transitively calls (excluding `f`
/// itself unless recursive), plus the globals any of them (or `f`)
/// references.
fn closure(module: &Module, f: &Function) -> (BTreeSet<String>, BTreeSet<u32>) {
    let mut callees: BTreeSet<String> = BTreeSet::new();
    let mut globals: BTreeSet<u32> = BTreeSet::new();
    let mut work: Vec<&Function> = vec![f];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    seen.insert(&f.name);
    while let Some(cur) = work.pop() {
        for inst in &cur.insts {
            match inst {
                Inst::GlobalAddr(GlobalId(g)) => {
                    globals.insert(*g);
                }
                Inst::Call { callee, .. } | Inst::Havoc { callee, .. } => {
                    if let Some(def) = module.function(callee) {
                        if seen.insert(&def.name) {
                            callees.insert(def.name.clone());
                            work.push(def);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (callees, globals)
}

/// The canonical byte stream addressing `fname`'s analysis inputs: the
/// function itself, its transitive defined callees, and every global
/// they reference. Returns the target function's own encoding even when
/// it is absent from the module (the fingerprint then addresses "no such
/// function", which callers never cache).
pub fn encode_function_deps(module: &Module, fname: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.push(CANON_VERSION);
    put_u32(&mut out, acfg::SUMMARY_COPIES as u32);
    let Some(f) = module.function(fname) else {
        put_str(&mut out, fname);
        return out;
    };
    encode_function(&mut out, f);
    let (callees, globals) = closure(module, f);
    put_u32(&mut out, callees.len() as u32);
    for name in &callees {
        // Defined by construction of `closure`.
        encode_function(&mut out, module.function(name).expect("defined callee"));
    }
    put_u32(&mut out, globals.len() as u32);
    for &g in &globals {
        let gl = &module.globals[g as usize];
        put_u32(&mut out, g);
        put_str(&mut out, &gl.name);
        put_u32(&mut out, gl.size);
        out.push(gl.is_ptr as u8);
        out.push(gl.secret as u8);
        put_u32(&mut out, gl.init.len() as u32);
        for (idx, v) in &gl.init {
            put_u32(&mut out, *idx);
            put_i64(&mut out, *v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Global, Inst, InstId, Terminator, Ty};

    fn two_fn_module() -> Module {
        let mut m = Module::new();
        let g = m.add_global(Global::array("A", 16));
        for name in ["f", "g"] {
            let mut f = Function::new(name, &[("y", Ty::Int)]);
            let bb = f.entry();
            let base = f.global_addr(g);
            let y = f.param(0);
            let addr = f.gep(base, y);
            let ld = f.push(bb, Inst::Load { addr, ty: Ty::Int });
            f.set_term(bb, Terminator::Ret(Some(ld)));
            m.add_function(f);
        }
        m
    }

    #[test]
    fn encoding_is_deterministic() {
        let m = two_fn_module();
        assert_eq!(encode_function_deps(&m, "f"), encode_function_deps(&m, "f"));
    }

    #[test]
    fn touching_one_function_leaves_the_other_encoding_unchanged() {
        let m1 = two_fn_module();
        let mut m2 = two_fn_module();
        // Append an instruction to g only.
        let f = m2.functions.iter_mut().find(|f| f.name == "g").unwrap();
        f.push(crate::BlockId(0), Inst::Fence);
        assert_eq!(
            encode_function_deps(&m1, "f"),
            encode_function_deps(&m2, "f")
        );
        assert_ne!(
            encode_function_deps(&m1, "g"),
            encode_function_deps(&m2, "g")
        );
    }

    #[test]
    fn callee_changes_invalidate_callers() {
        let mut m = Module::new();
        let mut callee = Function::new("helper", &[]);
        callee.is_public = false;
        let mut caller = Function::new("top", &[]);
        let bb = caller.entry();
        caller.push(
            bb,
            Inst::Call {
                callee: "helper".into(),
                args: vec![],
                ty: Ty::Int,
            },
        );
        m.add_function(caller);
        let before = encode_function_deps(&m, "top");
        // Define the callee: inlining now sees a body, so `top` changes.
        callee.push(crate::BlockId(0), Inst::Fence);
        m.add_function(callee);
        let after = encode_function_deps(&m, "top");
        assert_ne!(before, after);
    }

    #[test]
    fn global_labels_feed_the_encoding() {
        let m1 = two_fn_module();
        let mut m2 = two_fn_module();
        m2.globals[0].secret = true;
        assert_ne!(
            encode_function_deps(&m1, "f"),
            encode_function_deps(&m2, "f")
        );
    }

    #[test]
    fn missing_function_still_encodes() {
        let m = two_fn_module();
        let e = encode_function_deps(&m, "nope");
        assert!(!e.is_empty());
        assert_ne!(e, encode_function_deps(&m, "f"));
    }

    #[test]
    fn instid_references_not_order_change_encoding() {
        // Two structurally different functions with the same scheduled
        // count must encode differently.
        let mut f1 = Function::new("x", &[("a", Ty::Int)]);
        let mut f2 = Function::new("x", &[("a", Ty::Int)]);
        let p1 = f1.param(0);
        let p2 = f2.param(0);
        let c1 = f1.iconst(1);
        let c2 = f2.iconst(2);
        f1.value(Inst::Bin {
            op: crate::BinOp::Add,
            lhs: p1,
            rhs: c1,
        });
        f2.value(Inst::Bin {
            op: crate::BinOp::Add,
            lhs: p2,
            rhs: c2,
        });
        let _ = InstId(0);
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        encode_function(&mut b1, &f1);
        encode_function(&mut b2, &f2);
        assert_ne!(b1, b2);
    }
}
