//! Control-flow-graph analyses: orders, dominators, natural loops.

use crate::{BlockId, Function};

/// Successor block ids of each block.
pub fn successors(f: &Function) -> Vec<Vec<BlockId>> {
    f.blocks.iter().map(|b| b.term.successors()).collect()
}

/// Predecessor block ids of each block.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (bi, b) in f.iter_blocks() {
        for s in b.term.successors() {
            preds[s.0 as usize].push(bi);
        }
    }
    preds
}

/// Reverse postorder over blocks reachable from the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let succ = successors(f);
    let n = f.blocks.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 in-progress, 2 done
    let mut post = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let ss = &succ[b];
        if *i < ss.len() {
            let nxt = ss[*i].0 as usize;
            *i += 1;
            if state[nxt] == 0 {
                state[nxt] = 1;
                stack.push((nxt, 0));
            }
        } else {
            state[b] = 2;
            post.push(BlockId(b as u32));
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators (Cooper–Harvey–Kennedy iterative algorithm).
///
/// Returns `idom[b]`, with `idom[entry] == entry`; unreachable blocks map
/// to `None`.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(f);
    let n = f.blocks.len();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let preds = predecessors(f);
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[0] = Some(BlockId(0));

    let intersect = |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].unwrap().0 as usize;
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].unwrap().0 as usize;
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let bi = b.0 as usize;
            let mut new_idom: Option<usize> = None;
            for p in &preds[bi] {
                let pi = p.0 as usize;
                if idom[pi].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => pi,
                    Some(cur) => intersect(&idom, &rpo_index, cur, pi),
                });
            }
            if let Some(ni) = new_idom {
                if idom[bi] != Some(BlockId(ni as u32)) {
                    idom[bi] = Some(BlockId(ni as u32));
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Returns `true` if `a` dominates `b` (reflexive).
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// A natural loop: header plus body blocks (header included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every body block).
    pub header: BlockId,
    /// All blocks in the loop, header first.
    pub body: Vec<BlockId>,
    /// The latch blocks (sources of back edges into the header).
    pub latches: Vec<BlockId>,
}

/// Finds the natural loops of a reducible CFG, merging loops that share a
/// header. Returned in no particular order.
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let preds = predecessors(f);
    let mut by_header: std::collections::BTreeMap<u32, NaturalLoop> = Default::default();
    for (b, blk) in f.iter_blocks() {
        if idom[b.0 as usize].is_none() {
            continue; // unreachable
        }
        for s in blk.term.successors() {
            if dominates(&idom, s, b) {
                // back edge b -> s
                let entry = by_header.entry(s.0).or_insert_with(|| NaturalLoop {
                    header: s,
                    body: vec![s],
                    latches: Vec::new(),
                });
                entry.latches.push(b);
                // Collect body: all blocks reaching b without passing
                // through s.
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if entry.body.contains(&x) {
                        continue;
                    }
                    entry.body.push(x);
                    for &p in &preds[x.0 as usize] {
                        if p != s {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    by_header.into_values().collect()
}

/// Returns `true` if the reachable CFG contains a cycle.
pub fn has_cycle(f: &Function) -> bool {
    !natural_loops(f).is_empty() || has_irreducible_cycle(f)
}

fn has_irreducible_cycle(f: &Function) -> bool {
    // Kahn's algorithm over reachable blocks.
    let rpo = reverse_postorder(f);
    let reachable: std::collections::BTreeSet<u32> = rpo.iter().map(|b| b.0).collect();
    let succ = successors(f);
    let mut indeg = std::collections::BTreeMap::new();
    for &b in &reachable {
        indeg.entry(b).or_insert(0usize);
        for s in &succ[b as usize] {
            if reachable.contains(&s.0) {
                *indeg.entry(s.0).or_insert(0) += 1;
            }
        }
    }
    let mut queue: Vec<u32> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&b, _)| b)
        .collect();
    let mut seen = 0;
    while let Some(b) = queue.pop() {
        seen += 1;
        for s in &succ[b as usize] {
            if let Some(d) = indeg.get_mut(&s.0) {
                *d -= 1;
                if *d == 0 {
                    queue.push(s.0);
                }
            }
        }
    }
    seen != reachable.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Function, Inst, Terminator, Ty};

    /// entry -> header; header -> body | exit; body -> header (a while
    /// loop).
    fn while_loop_fn() -> Function {
        let mut f = Function::new("loopy", &[("n", Ty::Int)]);
        let entry = f.entry();
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let n = f.param(0);
        let zero = f.iconst(0);
        let cond = f.bin(BinOp::Lt, zero, n);
        f.set_term(entry, Terminator::Br(header));
        f.set_term(
            header,
            Terminator::CondBr {
                cond,
                then_bb: body,
                else_bb: exit,
            },
        );
        f.push(body, Inst::Fence);
        f.set_term(body, Terminator::Br(header));
        f.set_term(exit, Terminator::Ret(None));
        f
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = while_loop_fn();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn dominators_of_while_loop() {
        let f = while_loop_fn();
        let idom = dominators(&f);
        assert_eq!(idom[1], Some(BlockId(0))); // header <- entry
        assert_eq!(idom[2], Some(BlockId(1))); // body <- header
        assert_eq!(idom[3], Some(BlockId(1))); // exit <- header
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(dominates(&idom, BlockId(1), BlockId(2)));
        assert!(!dominates(&idom, BlockId(2), BlockId(3)));
    }

    #[test]
    fn natural_loop_detected() {
        let f = while_loop_fn();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        let mut body = l.body.clone();
        body.sort();
        assert_eq!(body, vec![BlockId(1), BlockId(2)]);
        assert!(has_cycle(&f));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut f = Function::new("s", &[]);
        let e = f.entry();
        let b = f.add_block("b");
        f.set_term(e, Terminator::Br(b));
        f.set_term(b, Terminator::Ret(None));
        assert!(natural_loops(&f).is_empty());
        assert!(!has_cycle(&f));
    }

    #[test]
    fn diamond_dominators() {
        // entry -> l | r; l -> join; r -> join.
        let mut f = Function::new("d", &[("c", Ty::Int)]);
        let e = f.entry();
        let l = f.add_block("l");
        let r = f.add_block("r");
        let j = f.add_block("j");
        let c = f.param(0);
        f.set_term(
            e,
            Terminator::CondBr {
                cond: c,
                then_bb: l,
                else_bb: r,
            },
        );
        f.set_term(l, Terminator::Br(j));
        f.set_term(r, Terminator::Br(j));
        f.set_term(j, Terminator::Ret(None));
        let idom = dominators(&f);
        assert_eq!(idom[j.0 as usize], Some(e));
        assert!(!dominates(&idom, l, j));
    }

    #[test]
    fn do_while_loop_header_is_the_body() {
        // entry -> body; body -> latch; latch -> body | exit.
        let mut f = Function::new("dw", &[("n", Ty::Int)]);
        let e = f.entry();
        let body = f.add_block("body");
        let latch = f.add_block("latch");
        let exit = f.add_block("exit");
        let n = f.param(0);
        f.set_term(e, Terminator::Br(body));
        f.push(body, Inst::Fence);
        f.set_term(body, Terminator::Br(latch));
        f.set_term(
            latch,
            Terminator::CondBr {
                cond: n,
                then_bb: body,
                else_bb: exit,
            },
        );
        f.set_term(exit, Terminator::Ret(None));
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, body);
        assert_eq!(loops[0].latches, vec![latch]);
    }

    #[test]
    fn shared_header_back_edges_merge_into_one_loop() {
        // Two latches into the same header (continue-style): one natural
        // loop with two latches.
        let mut f = Function::new("m", &[("c", Ty::Int)]);
        let e = f.entry();
        let h = f.add_block("h");
        let a = f.add_block("a");
        let b = f.add_block("b");
        let exit = f.add_block("exit");
        let c = f.param(0);
        f.set_term(e, Terminator::Br(h));
        f.set_term(
            h,
            Terminator::CondBr {
                cond: c,
                then_bb: a,
                else_bb: exit,
            },
        );
        f.set_term(
            a,
            Terminator::CondBr {
                cond: c,
                then_bb: h,
                else_bb: b,
            },
        );
        f.set_term(b, Terminator::Br(h));
        f.set_term(exit, Terminator::Ret(None));
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let mut latches = loops[0].latches.clone();
        latches.sort();
        assert_eq!(latches, vec![a, b]);
        let mut body = loops[0].body.clone();
        body.sort();
        assert_eq!(body, vec![h, a, b]);
    }

    #[test]
    fn rpo_is_topological_on_dags() {
        let mut f = Function::new("d", &[("c", Ty::Int)]);
        let e = f.entry();
        let l = f.add_block("l");
        let r = f.add_block("r");
        let j = f.add_block("j");
        let c = f.param(0);
        f.set_term(
            e,
            Terminator::CondBr {
                cond: c,
                then_bb: l,
                else_bb: r,
            },
        );
        f.set_term(l, Terminator::Br(j));
        f.set_term(r, Terminator::Br(j));
        f.set_term(j, Terminator::Ret(None));
        let rpo = reverse_postorder(&f);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(e) < pos(l) && pos(e) < pos(r));
        assert!(pos(l) < pos(j) && pos(r) < pos(j));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = Function::new("u", &[]);
        let e = f.entry();
        let dead = f.add_block("dead");
        f.set_term(e, Terminator::Ret(None));
        f.set_term(dead, Terminator::Ret(None));
        let idom = dominators(&f);
        assert!(idom[dead.0 as usize].is_none());
    }
}
