//! Structural validation of IR functions.

use std::collections::HashSet;

use crate::{Function, Inst, Module, Terminator, Ty};

/// Checks structural invariants of a function; returns all problems found.
///
/// Verified properties: operand ids are in range; scheduled instructions
/// appear exactly once across blocks; pure nodes are never scheduled;
/// terminator targets are valid; loads/stores/geps use pointer-typed
/// addresses/bases; parameter indices are in range.
pub fn verify_function(f: &Function) -> Vec<String> {
    let mut errs = Vec::new();
    let n = f.insts.len() as u32;
    let mut seen: HashSet<u32> = HashSet::new();

    for (bi, b) in f.iter_blocks() {
        for &iid in &b.insts {
            if iid.0 >= n {
                errs.push(format!("bb{}: inst %{} out of range", bi.0, iid.0));
                continue;
            }
            if !f.inst(iid).is_scheduled() {
                errs.push(format!("bb{}: pure inst %{} is scheduled", bi.0, iid.0));
            }
            if !seen.insert(iid.0) {
                errs.push(format!("inst %{} scheduled more than once", iid.0));
            }
        }
        for t in b.term.successors() {
            if t.0 as usize >= f.blocks.len() {
                errs.push(format!("bb{}: terminator target bb{} invalid", bi.0, t.0));
            }
        }
        if let Terminator::CondBr { cond, .. } = &b.term {
            if cond.0 >= n {
                errs.push(format!("bb{}: cond %{} out of range", bi.0, cond.0));
            }
        }
    }

    let ptr_ty = |v: crate::Value| f.inst(v).result_ty();
    for (i, inst) in f.insts.iter().enumerate() {
        for op in inst.operands() {
            if op.0 >= n {
                errs.push(format!("inst %{i}: operand %{} out of range", op.0));
            }
        }
        match inst {
            Inst::Load { addr, .. } if addr.0 < n && ptr_ty(*addr) != Some(Ty::Ptr) => {
                errs.push(format!("inst %{i}: load from non-pointer %{}", addr.0));
            }
            Inst::Store { addr, .. } if addr.0 < n && ptr_ty(*addr) != Some(Ty::Ptr) => {
                errs.push(format!("inst %{i}: store to non-pointer %{}", addr.0));
            }
            Inst::Gep { base, index, .. } => {
                if base.0 < n && ptr_ty(*base) != Some(Ty::Ptr) {
                    errs.push(format!("inst %{i}: gep base %{} is not a pointer", base.0));
                }
                if index.0 < n && ptr_ty(*index).is_none() {
                    errs.push(format!("inst %{i}: gep index %{} has no value", index.0));
                }
            }
            Inst::Param { index, .. } if *index >= f.params.len() => {
                errs.push(format!("inst %{i}: parameter index {index} out of range"));
            }
            _ => {}
        }
    }
    errs
}

/// Verifies every function of a module.
pub fn verify_module(m: &Module) -> Vec<String> {
    let mut errs = Vec::new();
    for f in &m.functions {
        for e in verify_function(f) {
            errs.push(format!("{}: {e}", f.name));
        }
        for g in f.insts.iter().filter_map(|i| match i {
            Inst::GlobalAddr(g) => Some(*g),
            _ => None,
        }) {
            if g.0 as usize >= m.globals.len() {
                errs.push(format!("{}: global id {} out of range", f.name, g.0));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Global, InstId};

    #[test]
    fn clean_function_verifies() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "A".into(),
            size: 4,
            is_ptr: false,
            secret: false,
            init: vec![],
        });
        let mut f = Function::new("f", &[("x", Ty::Int)]);
        let e = f.entry();
        let base = f.global_addr(g);
        let x = f.param(0);
        let addr = f.gep(base, x);
        let v = f.push(e, Inst::Load { addr, ty: Ty::Int });
        let one = f.iconst(1);
        let r = f.bin(BinOp::Add, v, one);
        f.set_term(e, Terminator::Ret(Some(r)));
        m.add_function(f);
        assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn load_from_int_rejected() {
        let mut f = Function::new("f", &[("x", Ty::Int)]);
        let e = f.entry();
        let x = f.param(0);
        f.push(
            e,
            Inst::Load {
                addr: x,
                ty: Ty::Int,
            },
        );
        f.set_term(e, Terminator::Ret(None));
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.contains("non-pointer")));
    }

    #[test]
    fn double_scheduling_rejected() {
        let mut f = Function::new("f", &[]);
        let e = f.entry();
        let i = f.push(e, Inst::Fence);
        f.blocks[0].insts.push(i);
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.contains("more than once")));
    }

    #[test]
    fn bad_param_index_rejected() {
        let mut f = Function::new("f", &[]);
        let v = f.value(Inst::Param {
            index: 3,
            ty: Ty::Int,
        });
        let _ = v;
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.contains("parameter index")));
    }

    #[test]
    fn bad_terminator_target_rejected() {
        let mut f = Function::new("f", &[]);
        f.set_term(f.entry(), Terminator::Br(crate::BlockId(9)));
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.contains("invalid")));
    }

    #[test]
    fn out_of_range_operand_rejected() {
        let mut f = Function::new("f", &[]);
        let e = f.entry();
        f.push(
            e,
            Inst::Load {
                addr: InstId(99),
                ty: Ty::Int,
            },
        );
        f.set_term(e, Terminator::Ret(None));
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.contains("out of range")));
    }
}
