//! A reference interpreter for the IR.
//!
//! Used to validate that A-CFG construction (unrolling, inlining)
//! preserves straight-line semantics, and by the corpus crate to sanity-
//! check benchmark programs. Not part of the leakage analysis itself.

use std::collections::HashMap;

use crate::{Function, Inst, InstId, Module, Terminator};

/// How a function execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpOutcome {
    /// A `ret` was reached with the given value.
    Returned(Option<i64>),
}

/// Interpretation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Execution exceeded the fuel budget.
    OutOfFuel,
    /// Unknown function name.
    UnknownFunction(String),
    /// A call to an undefined function was executed (havoc has no concrete
    /// semantics).
    UndefinedCall(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::UndefinedCall(n) => write!(f, "call to undefined `{n}`"),
        }
    }
}

impl std::error::Error for InterpError {}

/// One recorded memory access (see [`Machine::call_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Index of the executing function in [`Module::functions`].
    pub func: u32,
    /// The executing instruction (within that function). For branch
    /// events this is the *condition value* id.
    pub inst: InstId,
    /// `true` for stores, `false` for loads and branches.
    pub is_store: bool,
    /// `true` for conditional-branch events (ctrl-dependency sources for
    /// everything executed after them).
    pub is_branch: bool,
    /// Concrete address accessed (branch: the decision, 1 = taken).
    pub addr: i64,
    /// Value loaded or stored (branch: the condition value).
    pub value: i64,
}

/// Abstract machine state: module + memory.
///
/// Addresses are 64-bit: global `g` occupies `[(g+1) << 32, ...)`; each
/// executed `alloca` allocates a fresh region in the high half of the
/// address space. Memory is word-granular and zero-initialized.
#[derive(Debug)]
pub struct Machine<'m> {
    module: &'m Module,
    memory: HashMap<i64, i64>,
    next_alloca: i64,
    fuel: u64,
    trace: Option<Vec<TraceEvent>>,
}

const ALLOCA_BASE: i64 = 1 << 48;

impl<'m> Machine<'m> {
    /// A machine with memory zeroed except for global initializers.
    pub fn new(module: &'m Module) -> Self {
        let mut memory = HashMap::new();
        for (gi, g) in module.globals.iter().enumerate() {
            let base = (gi as i64 + 1) << 32;
            for &(idx, v) in &g.init {
                memory.insert(base + i64::from(idx), v);
            }
        }
        Machine {
            module,
            memory,
            next_alloca: ALLOCA_BASE,
            fuel: 0,
            trace: None,
        }
    }

    /// The base address of a global.
    pub fn global_base(&self, g: u32) -> i64 {
        (i64::from(g) + 1) << 32
    }

    /// Writes one word of a named global.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn set_global(&mut self, name: &str, index: u32, value: i64) {
        let (gid, _) = self.module.global(name).expect("unknown global");
        let base = self.global_base(gid.0);
        self.memory.insert(base + i64::from(index), value);
    }

    /// Reads one word of a named global.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn get_global(&self, name: &str, index: u32) -> i64 {
        let (gid, _) = self.module.global(name).expect("unknown global");
        let base = self.global_base(gid.0);
        *self.memory.get(&(base + i64::from(index))).unwrap_or(&0)
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns an error when fuel is exhausted, the function is unknown, or
    /// an undefined external call is executed.
    pub fn call(
        &mut self,
        fname: &str,
        args: &[i64],
        fuel: u64,
    ) -> Result<InterpOutcome, InterpError> {
        self.fuel = fuel;
        self.call_inner(fname, args)
    }

    /// Like [`Self::call`], additionally recording every memory access in
    /// execution order (the input to dynamic LCM analysis,
    /// `lcm_aeg::trace`).
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn call_traced(
        &mut self,
        fname: &str,
        args: &[i64],
        fuel: u64,
    ) -> Result<(InterpOutcome, Vec<TraceEvent>), InterpError> {
        self.fuel = fuel;
        self.trace = Some(Vec::new());
        let outcome = self.call_inner(fname, args);
        let trace = self.trace.take().unwrap_or_default();
        outcome.map(|o| (o, trace))
    }

    fn call_inner(&mut self, fname: &str, args: &[i64]) -> Result<InterpOutcome, InterpError> {
        let func_idx =
            self.module
                .functions
                .iter()
                .position(|f| f.name == fname)
                .ok_or_else(|| InterpError::UnknownFunction(fname.to_string()))? as u32;
        let f = self.module.functions[func_idx as usize].clone();
        let mut env: HashMap<u32, i64> = HashMap::new();
        let mut bb = f.entry();
        loop {
            let insts = f.blocks[bb.0 as usize].insts.clone();
            for iid in insts {
                if self.fuel == 0 {
                    return Err(InterpError::OutOfFuel);
                }
                self.fuel -= 1;
                match f.inst(iid).clone() {
                    Inst::Alloca { size, .. } => {
                        let addr = self.next_alloca;
                        self.next_alloca += i64::from(size.max(1));
                        env.insert(iid.0, addr);
                    }
                    Inst::Load { addr, .. } => {
                        let a = self.eval(&f, addr, args, &mut env)?;
                        let v = *self.memory.get(&a).unwrap_or(&0);
                        if let Some(t) = &mut self.trace {
                            t.push(TraceEvent {
                                func: func_idx,
                                inst: iid,
                                is_store: false,
                                is_branch: false,
                                addr: a,
                                value: v,
                            });
                        }
                        env.insert(iid.0, v);
                    }
                    Inst::Store { addr, value } => {
                        let a = self.eval(&f, addr, args, &mut env)?;
                        let v = self.eval(&f, value, args, &mut env)?;
                        if let Some(t) = &mut self.trace {
                            t.push(TraceEvent {
                                func: func_idx,
                                inst: iid,
                                is_store: true,
                                is_branch: false,
                                addr: a,
                                value: v,
                            });
                        }
                        self.memory.insert(a, v);
                    }
                    Inst::Call {
                        callee,
                        args: cargs,
                        ..
                    } => {
                        let argv: Result<Vec<i64>, _> = cargs
                            .iter()
                            .map(|&a| self.eval(&f, a, args, &mut env))
                            .collect();
                        let outcome = self.call_inner(&callee, &argv?)?;
                        let InterpOutcome::Returned(v) = outcome;
                        env.insert(iid.0, v.unwrap_or(0));
                    }
                    Inst::Havoc { callee, .. } => {
                        return Err(InterpError::UndefinedCall(callee));
                    }
                    Inst::Fence => {}
                    pure => {
                        debug_assert!(!pure.is_scheduled());
                        let v = self.eval(&f, iid, args, &mut env)?;
                        env.insert(iid.0, v);
                    }
                }
            }
            match f.blocks[bb.0 as usize].term.clone() {
                Terminator::Br(t) => bb = t,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.eval(&f, cond, args, &mut env)?;
                    if let Some(t) = &mut self.trace {
                        t.push(TraceEvent {
                            func: func_idx,
                            inst: cond,
                            is_store: false,
                            is_branch: true,
                            addr: i64::from(c != 0),
                            value: c,
                        });
                    }
                    bb = if c != 0 { then_bb } else { else_bb };
                }
                Terminator::Ret(v) => {
                    let rv = match v {
                        Some(v) => Some(self.eval(&f, v, args, &mut env)?),
                        None => None,
                    };
                    return Ok(InterpOutcome::Returned(rv));
                }
            }
        }
    }

    fn eval(
        &mut self,
        f: &Function,
        v: InstId,
        args: &[i64],
        env: &mut HashMap<u32, i64>,
    ) -> Result<i64, InterpError> {
        if let Some(&x) = env.get(&v.0) {
            return Ok(x);
        }
        if self.fuel == 0 {
            return Err(InterpError::OutOfFuel);
        }
        self.fuel -= 1;
        let out = match f.inst(v).clone() {
            Inst::Const(c) => c,
            Inst::Param { index, .. } => *args.get(index).unwrap_or(&0),
            Inst::GlobalAddr(g) => self.global_base(g.0),
            Inst::Gep { base, index, scale } => {
                let b = self.eval(f, base, args, env)?;
                let i = self.eval(f, index, args, env)?;
                b + i * i64::from(scale.max(1))
            }
            Inst::Bin { op, lhs, rhs } => {
                let a = self.eval(f, lhs, args, env)?;
                let b = self.eval(f, rhs, args, env)?;
                op.eval(a, b)
            }
            // Scheduled instructions must already be in env; treat an
            // unexecuted reference as zero (matches -O0 uninitialized
            // reads, which our front end never produces).
            _ => 0,
        };
        // Pure nodes are *not* memoized: in a loop, a node like
        // `i < n` must be re-evaluated after the load feeding it changes.
        Ok(out)
    }
}

/// Convenience: run `fname(args)` on a fresh machine with zeroed globals.
///
/// # Errors
///
/// See [`Machine::call`].
pub fn run(
    module: &Module,
    fname: &str,
    args: &[i64],
    fuel: u64,
) -> Result<InterpOutcome, InterpError> {
    Machine::new(module).call(fname, args, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Function, Global, Terminator, Ty};

    #[test]
    fn arithmetic_and_memory_roundtrip() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "A".into(),
            size: 4,
            is_ptr: false,
            secret: false,
            init: vec![],
        });
        let mut f = Function::new("f", &[("x", Ty::Int)]);
        let e = f.entry();
        let base = f.global_addr(g);
        let x = f.param(0);
        let addr = f.gep(base, x);
        let seven = f.iconst(7);
        f.push(e, Inst::Store { addr, value: seven });
        let back = f.push(e, Inst::Load { addr, ty: Ty::Int });
        let sum = f.bin(BinOp::Add, back, x);
        f.set_term(e, Terminator::Ret(Some(sum)));
        m.add_function(f);
        assert_eq!(
            run(&m, "f", &[3], 1000).unwrap(),
            InterpOutcome::Returned(Some(10))
        );
    }

    #[test]
    fn globals_are_zero_initialized() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "A".into(),
            size: 2,
            is_ptr: false,
            secret: false,
            init: vec![],
        });
        let mut f = Function::new("f", &[]);
        let e = f.entry();
        let base = f.global_addr(g);
        let one = f.iconst(1);
        let addr = f.gep(base, one);
        let v = f.push(e, Inst::Load { addr, ty: Ty::Int });
        f.set_term(e, Terminator::Ret(Some(v)));
        m.add_function(f);
        assert_eq!(
            run(&m, "f", &[], 1000).unwrap(),
            InterpOutcome::Returned(Some(0))
        );
    }

    #[test]
    fn set_get_global() {
        let mut m = Module::new();
        m.add_global(Global {
            name: "A".into(),
            size: 2,
            is_ptr: false,
            secret: false,
            init: vec![],
        });
        let mut mach = Machine::new(&m);
        mach.set_global("A", 1, 42);
        assert_eq!(mach.get_global("A", 1), 42);
        assert_eq!(mach.get_global("A", 0), 0);
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let mut m = Module::new();
        let mut f = Function::new("f", &[]);
        let e = f.entry();
        let a = f.push(
            e,
            Inst::Alloca {
                name: "a".into(),
                size: 1,
            },
        );
        let b = f.push(
            e,
            Inst::Alloca {
                name: "b".into(),
                size: 1,
            },
        );
        let one = f.iconst(1);
        let two = f.iconst(2);
        f.push(
            e,
            Inst::Store {
                addr: a,
                value: one,
            },
        );
        f.push(
            e,
            Inst::Store {
                addr: b,
                value: two,
            },
        );
        let va = f.push(
            e,
            Inst::Load {
                addr: a,
                ty: Ty::Int,
            },
        );
        f.set_term(e, Terminator::Ret(Some(va)));
        m.add_function(f);
        assert_eq!(
            run(&m, "f", &[], 1000).unwrap(),
            InterpOutcome::Returned(Some(1))
        );
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut m = Module::new();
        let mut f = Function::new("spin", &[]);
        let e = f.entry();
        f.set_term(e, Terminator::Br(e));
        m.add_function(f);
        // The empty block consumes no per-inst fuel; terminator evaluation
        // loops forever. Use a block with an instruction.
        let mut f2 = Function::new("spin2", &[]);
        let e2 = f2.entry();
        f2.push(e2, Inst::Fence);
        f2.set_term(e2, Terminator::Br(e2));
        m.add_function(f2);
        assert_eq!(run(&m, "spin2", &[], 100), Err(InterpError::OutOfFuel));
    }

    #[test]
    fn undefined_call_is_an_error() {
        let mut m = Module::new();
        let mut f = Function::new("f", &[]);
        let e = f.entry();
        f.push(
            e,
            Inst::Havoc {
                callee: "ext".into(),
                ptr_args: vec![],
                ty: Ty::Int,
            },
        );
        f.set_term(e, Terminator::Ret(None));
        m.add_function(f);
        assert_eq!(
            run(&m, "f", &[], 100),
            Err(InterpError::UndefinedCall("ext".into()))
        );
    }

    #[test]
    fn unknown_function_is_an_error() {
        let m = Module::new();
        assert_eq!(
            run(&m, "ghost", &[], 10),
            Err(InterpError::UnknownFunction("ghost".into()))
        );
    }

    #[test]
    fn call_passes_arguments_and_returns() {
        let mut m = Module::new();
        let mut id = Function::new("id", &[("x", Ty::Int)]);
        let e = id.entry();
        let x = id.param(0);
        id.set_term(e, Terminator::Ret(Some(x)));
        m.add_function(id);
        let mut f = Function::new("f", &[]);
        let e = f.entry();
        let five = f.iconst(5);
        let c = f.push(
            e,
            Inst::Call {
                callee: "id".into(),
                args: vec![five],
                ty: Ty::Int,
            },
        );
        f.set_term(e, Terminator::Ret(Some(c)));
        m.add_function(f);
        assert_eq!(
            run(&m, "f", &[], 1000).unwrap(),
            InterpOutcome::Returned(Some(5))
        );
    }
}
