//! Abstract-CFG construction (§5.1): loop summarization and inlining.
//!
//! Clou eliminates loops by observing that, given may-alias summaries, all
//! relevant `com`/`comx` interactions involving loop instructions are
//! modelled with **two** loop unrollings; calls are inlined exhaustively
//! with recursive calls expanded twice; calls to undefined functions are
//! interpreted as a load **or** store to one of their pointer operands
//! (a *havoc*), with the solver considering all options.
//!
//! [`build_acfg`] runs the whole pipeline for one function of a module.

use std::collections::HashMap;

use crate::cfg::{has_cycle, natural_loops};
use crate::{BlockId, Function, Inst, InstId, Module, Terminator, Ty, Value};

/// Errors from A-CFG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcfgError {
    /// The function was not found in the module.
    UnknownFunction(String),
    /// Loop structure did not reduce (irreducible control flow).
    Irreducible(String),
}

impl std::fmt::Display for AcfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcfgError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            AcfgError::Irreducible(n) => write!(f, "irreducible control flow in `{n}`"),
        }
    }
}

impl std::error::Error for AcfgError {}

/// How many times loops are unrolled and recursion expanded (§5.1).
pub const SUMMARY_COPIES: usize = 2;

/// Builds the Abstract CFG for `fname`: inlines all calls (recursion
/// expanded [`SUMMARY_COPIES`] times, undefined calls havocked) and then
/// unrolls all loops [`SUMMARY_COPIES`] times. The result is loop- and
/// call-free.
///
/// # Errors
///
/// Returns [`AcfgError::UnknownFunction`] if `fname` is not in the module,
/// or [`AcfgError::Irreducible`] if loop elimination does not converge.
pub fn build_acfg(module: &Module, fname: &str) -> Result<Function, AcfgError> {
    let f = module
        .function(fname)
        .ok_or_else(|| AcfgError::UnknownFunction(fname.to_string()))?;
    let mut out = f.clone();
    inline_all_calls(&mut out, module);
    unroll_loops(&mut out, SUMMARY_COPIES)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Value cloning helpers
// ---------------------------------------------------------------------

/// Clones the pure operand tree of `v` inside `f`, remapping any reference
/// found in `map` (scheduled instructions already cloned). Memoized in
/// `memo`.
fn clone_pure(
    f: &mut Function,
    v: Value,
    map: &HashMap<u32, u32>,
    memo: &mut HashMap<u32, u32>,
) -> Value {
    if let Some(&m) = map.get(&v.0) {
        return InstId(m);
    }
    if let Some(&m) = memo.get(&v.0) {
        return InstId(m);
    }
    let inst = f.inst(v).clone();
    if inst.is_scheduled() {
        // Scheduled instruction outside the cloned region: reference as-is.
        return v;
    }
    let cloned = match inst {
        Inst::Const(_) | Inst::Param { .. } | Inst::GlobalAddr(_) => inst,
        Inst::Gep { base, index, scale } => Inst::Gep {
            base: clone_pure(f, base, map, memo),
            index: clone_pure(f, index, map, memo),
            scale,
        },
        Inst::Bin { op, lhs, rhs } => Inst::Bin {
            op,
            lhs: clone_pure(f, lhs, map, memo),
            rhs: clone_pure(f, rhs, map, memo),
        },
        other => other,
    };
    let id = f.value(cloned);
    memo.insert(v.0, id.0);
    id
}

/// Imports the pure operand tree of `v` from `src` into `dst`, remapping
/// scheduled references via `map` and parameters via `args`.
fn import_pure(
    dst: &mut Function,
    src: &Function,
    v: Value,
    map: &HashMap<u32, u32>,
    args: &[Value],
    memo: &mut HashMap<u32, u32>,
) -> Value {
    if let Some(&m) = map.get(&v.0) {
        return InstId(m);
    }
    if let Some(&m) = memo.get(&v.0) {
        return InstId(m);
    }
    let inst = src.inst(v).clone();
    let out = match inst {
        Inst::Param { index, .. } => args[index],
        Inst::Const(_) | Inst::GlobalAddr(_) => dst.value(inst),
        Inst::Gep { base, index, scale } => {
            let base = import_pure(dst, src, base, map, args, memo);
            let index = import_pure(dst, src, index, map, args, memo);
            dst.value(Inst::Gep { base, index, scale })
        }
        Inst::Bin { op, lhs, rhs } => {
            let lhs = import_pure(dst, src, lhs, map, args, memo);
            let rhs = import_pure(dst, src, rhs, map, args, memo);
            dst.value(Inst::Bin { op, lhs, rhs })
        }
        sched => {
            debug_assert!(
                sched.is_scheduled(),
                "unexpected pure inst {sched:?} not handled"
            );
            // Scheduled instruction of the callee must already be mapped.
            unreachable!("operand {v:?} is scheduled in callee but unmapped")
        }
    };
    memo.insert(v.0, out.0);
    out
}

// ---------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------

/// Unrolls every natural loop `copies` times, truncating paths that would
/// iterate more than `copies` full iterations (their continuation ends in
/// a path-terminating block). Repeats until the CFG is acyclic.
///
/// # Errors
///
/// Returns [`AcfgError::Irreducible`] if the CFG fails to become acyclic
/// (irreducible control flow — our front end never produces it).
pub fn unroll_loops(f: &mut Function, copies: usize) -> Result<(), AcfgError> {
    let mut rounds = 0usize;
    loop {
        let mut loops = natural_loops(f);
        if loops.is_empty() {
            if has_cycle(f) {
                return Err(AcfgError::Irreducible(f.name.clone()));
            }
            return Ok(());
        }
        rounds += 1;
        if rounds > 64 {
            return Err(AcfgError::Irreducible(f.name.clone()));
        }
        // Unroll an innermost loop: one whose body contains no other
        // loop's header.
        loops.sort_by_key(|l| l.body.len());
        let headers: Vec<BlockId> = loops.iter().map(|l| l.header).collect();
        let target = loops
            .iter()
            .find(|l| {
                headers
                    .iter()
                    .all(|&h| h == l.header || !l.body.contains(&h))
            })
            .cloned()
            .unwrap_or_else(|| loops[0].clone());
        unroll_one(f, &target.body, target.header, copies);
    }
}

/// Unrolls a single loop given its body and header.
fn unroll_one(f: &mut Function, body: &[BlockId], header: BlockId, copies: usize) {
    // Truncation block for paths needing > `copies` iterations.
    let trunc = f.add_block("loop.trunc");
    f.set_term(trunc, Terminator::Ret(None));
    f.blocks[trunc.0 as usize].name = "loop.trunc".into();

    // Clone the body `copies` times. In each copy, edges to the original
    // header are iteration edges: they are left pointing at the original
    // header and fixed up below.
    let mut entries: Vec<BlockId> = Vec::new(); // header clone of each copy
    let mut copy_maps: Vec<HashMap<u32, u32>> = Vec::new();
    for k in 0..copies {
        let mut block_map: HashMap<u32, u32> = HashMap::new();
        for &b in body {
            let name = format!("{}.u{}", f.blocks[b.0 as usize].name, k + 1);
            let nb = f.add_block(&name);
            block_map.insert(b.0, nb.0);
        }
        // Phase 1: clone scheduled instructions verbatim, establishing the
        // id map (operands may forward-reference blocks cloned later).
        let mut inst_map: HashMap<u32, u32> = HashMap::new();
        for &b in body {
            let src_insts = f.blocks[b.0 as usize].insts.clone();
            let dst_b = BlockId(block_map[&b.0]);
            for iid in src_insts {
                let inst = f.inst(iid).clone();
                let nid = f.push(dst_b, inst);
                inst_map.insert(iid.0, nid.0);
            }
        }
        // Phase 2: rewrite operands through the completed map, cloning
        // pure operand trees; then clone terminators.
        let mut memo: HashMap<u32, u32> = HashMap::new();
        let cloned_ids: Vec<u32> = inst_map.values().copied().collect();
        for nid in cloned_ids {
            let inst = f.insts[nid as usize].clone();
            let rewritten = match inst {
                Inst::Alloca { .. } | Inst::Fence => continue,
                Inst::Load { addr, ty } => Inst::Load {
                    addr: clone_pure(f, addr, &inst_map, &mut memo),
                    ty,
                },
                Inst::Store { addr, value } => Inst::Store {
                    addr: clone_pure(f, addr, &inst_map, &mut memo),
                    value: clone_pure(f, value, &inst_map, &mut memo),
                },
                Inst::Call { callee, args, ty } => Inst::Call {
                    callee,
                    args: args
                        .iter()
                        .map(|&a| clone_pure(f, a, &inst_map, &mut memo))
                        .collect(),
                    ty,
                },
                Inst::Havoc {
                    callee,
                    ptr_args,
                    ty,
                } => Inst::Havoc {
                    callee,
                    ptr_args: ptr_args
                        .iter()
                        .map(|&a| clone_pure(f, a, &inst_map, &mut memo))
                        .collect(),
                    ty,
                },
                pure => {
                    debug_assert!(!pure.is_scheduled());
                    continue;
                }
            };
            f.insts[nid as usize] = rewritten;
        }
        for &b in body {
            let dst_b = BlockId(block_map[&b.0]);
            let term = f.blocks[b.0 as usize].term.clone();
            let remap_bb = |t: BlockId| -> BlockId {
                if t == header {
                    header // iteration edge: fixed up below
                } else {
                    match block_map.get(&t.0) {
                        Some(&nb) => BlockId(nb),
                        None => t, // loop exit
                    }
                }
            };
            let new_term = match term {
                Terminator::Br(t) => Terminator::Br(remap_bb(t)),
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => Terminator::CondBr {
                    cond: clone_pure(f, cond, &inst_map, &mut memo),
                    then_bb: remap_bb(then_bb),
                    else_bb: remap_bb(else_bb),
                },
                Terminator::Ret(v) => {
                    Terminator::Ret(v.map(|v| clone_pure(f, v, &inst_map, &mut memo)))
                }
            };
            f.set_term(dst_b, new_term);
        }
        entries.push(BlockId(block_map[&header.0]));
        copy_maps.push(block_map);
    }

    // Fix up iteration edges: original body latches -> entries[0];
    // copy k latches -> entries[k+1]; last copy -> trunc.
    let redirect = |f: &mut Function, blocks: Vec<BlockId>, from: BlockId, to: BlockId| {
        for b in blocks {
            let term = &mut f.blocks[b.0 as usize].term;
            match term {
                Terminator::Br(t) if *t == from => *t = to,
                Terminator::CondBr {
                    then_bb, else_bb, ..
                } => {
                    if *then_bb == from {
                        *then_bb = to;
                    }
                    if *else_bb == from {
                        *else_bb = to;
                    }
                }
                _ => {}
            }
        }
    };
    let originals: Vec<BlockId> = body.iter().copied().filter(|&b| b != header).collect();
    // Original header's back edges (do-while) also count; include header's
    // own latch edges but header->header self loops are handled uniformly:
    let mut orig_all = originals.clone();
    orig_all.push(header);
    redirect(f, orig_all, header, entries[0]);
    for k in 0..copies {
        let copy_blocks: Vec<BlockId> = copy_maps[k].values().map(|&b| BlockId(b)).collect();
        let to = if k + 1 < copies {
            entries[k + 1]
        } else {
            trunc
        };
        redirect(f, copy_blocks, header, to);
    }
}

// ---------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------

/// Inlines every call in `f` using definitions from `module`. Recursive
/// calls are expanded [`SUMMARY_COPIES`] times; further recursion and
/// undefined callees become [`Inst::Havoc`].
pub fn inline_all_calls(f: &mut Function, module: &Module) {
    // Inline stack per call instruction id (names of enclosing inlined
    // callees), used to bound recursion.
    let mut stacks: HashMap<u32, Vec<String>> = HashMap::new();
    loop {
        let Some((bb, pos, call_id)) = find_call(f) else {
            return;
        };
        let (callee, args, ty) = match f.inst(call_id).clone() {
            Inst::Call { callee, args, ty } => (callee, args, ty),
            _ => unreachable!(),
        };
        let stack = stacks.get(&call_id.0).cloned().unwrap_or_default();
        let depth = stack.iter().filter(|s| *s == &callee).count();
        let defined = module.function(&callee).is_some();
        if !defined || depth >= SUMMARY_COPIES {
            // Havoc: may load or store any pointer operand.
            let ptr_args: Vec<Value> = args
                .iter()
                .copied()
                .filter(|&a| f.inst(a).result_ty() == Some(Ty::Ptr))
                .collect();
            f.insts[call_id.0 as usize] = Inst::Havoc {
                callee,
                ptr_args,
                ty,
            };
            continue;
        }
        let callee_fn = module.function(&callee).unwrap().clone();
        splice(
            f,
            bb,
            pos,
            call_id,
            &callee_fn,
            &args,
            ty,
            &stack,
            &mut stacks,
        );
    }
}

fn find_call(f: &Function) -> Option<(BlockId, usize, InstId)> {
    for (bi, b) in f.iter_blocks() {
        for (pos, &iid) in b.insts.iter().enumerate() {
            if matches!(f.inst(iid), Inst::Call { .. }) {
                return Some((bi, pos, iid));
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn splice(
    f: &mut Function,
    bb: BlockId,
    pos: usize,
    call_id: InstId,
    callee: &Function,
    args: &[Value],
    ret_ty: Ty,
    stack: &[String],
    stacks: &mut HashMap<u32, Vec<String>>,
) {
    // Split the block at the call site.
    let tail_insts: Vec<InstId> = f.blocks[bb.0 as usize].insts.split_off(pos + 1);
    f.blocks[bb.0 as usize].insts.pop(); // remove the call itself
    let old_term = f.blocks[bb.0 as usize].term.clone();
    let cont = f.add_block(&format!("{}.cont", callee.name));
    f.blocks[cont.0 as usize].insts = tail_insts;
    f.set_term(cont, old_term);

    // Return slot (always materialized; harmless if unused).
    let ret_slot = f.insts.len();
    f.insts.push(Inst::Alloca {
        name: format!("{}.ret", callee.name),
        size: 1,
    });
    let ret_slot = InstId(ret_slot as u32);
    f.blocks[bb.0 as usize].insts.push(ret_slot);

    // Clone callee blocks.
    let mut block_map: HashMap<u32, u32> = HashMap::new();
    for (cbi, cb) in callee.iter_blocks() {
        let nb = f.add_block(&format!("{}.{}", callee.name, cb.name));
        block_map.insert(cbi.0, nb.0);
    }
    // Phase 1: clone scheduled instructions verbatim (operands still refer
    // to callee ids), establishing the id map.
    let mut inst_map: HashMap<u32, u32> = HashMap::new();
    let mut new_stack = stack.to_vec();
    new_stack.push(callee.name.clone());
    for (cbi, _) in callee.iter_blocks() {
        let dst_b = BlockId(block_map[&cbi.0]);
        let src_insts = callee.blocks[cbi.0 as usize].insts.clone();
        for iid in src_insts {
            let inst = callee.inst(iid).clone();
            let nid = f.push(dst_b, inst);
            inst_map.insert(iid.0, nid.0);
            if matches!(f.inst(nid), Inst::Call { .. }) {
                stacks.insert(nid.0, new_stack.clone());
            }
        }
    }
    // Phase 2: rewrite operands through the completed map.
    let mut memo: HashMap<u32, u32> = HashMap::new();
    let cloned: Vec<(u32, u32)> = inst_map.iter().map(|(&a, &b)| (a, b)).collect();
    for (src_id, nid) in cloned {
        let inst = callee.inst(InstId(src_id)).clone();
        let rewritten = match inst {
            Inst::Alloca { .. } | Inst::Fence => continue,
            Inst::Load { addr, ty } => Inst::Load {
                addr: import_pure(f, callee, addr, &inst_map, args, &mut memo),
                ty,
            },
            Inst::Store { addr, value } => Inst::Store {
                addr: import_pure(f, callee, addr, &inst_map, args, &mut memo),
                value: import_pure(f, callee, value, &inst_map, args, &mut memo),
            },
            Inst::Call {
                callee: c2,
                args: a2,
                ty,
            } => Inst::Call {
                callee: c2,
                args: a2
                    .iter()
                    .map(|&a| import_pure(f, callee, a, &inst_map, args, &mut memo))
                    .collect(),
                ty,
            },
            Inst::Havoc {
                callee: c2,
                ptr_args,
                ty,
            } => Inst::Havoc {
                callee: c2,
                ptr_args: ptr_args
                    .iter()
                    .map(|&a| import_pure(f, callee, a, &inst_map, args, &mut memo))
                    .collect(),
                ty,
            },
            pure => {
                debug_assert!(!pure.is_scheduled());
                continue;
            }
        };
        f.insts[nid as usize] = rewritten;
    }
    // Terminators.
    for (cbi, _) in callee.iter_blocks() {
        let dst_b = BlockId(block_map[&cbi.0]);
        let term = callee.blocks[cbi.0 as usize].term.clone();
        let new_term = match term {
            Terminator::Br(t) => Terminator::Br(BlockId(block_map[&t.0])),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: import_pure(f, callee, cond, &inst_map, args, &mut memo),
                then_bb: BlockId(block_map[&then_bb.0]),
                else_bb: BlockId(block_map[&else_bb.0]),
            },
            Terminator::Ret(v) => {
                // Store return value and jump to continuation.
                if let Some(v) = v {
                    let val = import_pure(f, callee, v, &inst_map, args, &mut memo);
                    let st = Inst::Store {
                        addr: ret_slot,
                        value: val,
                    };
                    f.push(dst_b, st);
                }
                Terminator::Br(cont)
            }
        };
        f.set_term(dst_b, new_term);
    }

    // Jump into the inlined entry.
    f.set_term(bb, Terminator::Br(BlockId(block_map[&callee.entry().0])));
    // The call's result becomes a load of the return slot, scheduled at the
    // head of the continuation (reusing the call's arena slot keeps users
    // valid).
    f.insts[call_id.0 as usize] = Inst::Load {
        addr: ret_slot,
        ty: ret_ty,
    };
    f.blocks[cont.0 as usize].insts.insert(0, call_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::has_cycle;
    use crate::interp::{run, InterpOutcome};
    use crate::{BinOp, Global};

    /// sum(n): s = 0; i = 0; while (i < n) { s += i; i += 1 } return s —
    /// at -O0 style with allocas.
    fn sum_module() -> Module {
        let mut m = Module::new();
        let mut f = Function::new("sum", &[("n", Ty::Int)]);
        let entry = f.entry();
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let s = f.push(
            entry,
            Inst::Alloca {
                name: "s".into(),
                size: 1,
            },
        );
        let i = f.push(
            entry,
            Inst::Alloca {
                name: "i".into(),
                size: 1,
            },
        );
        let zero = f.iconst(0);
        f.push(
            entry,
            Inst::Store {
                addr: s,
                value: zero,
            },
        );
        f.push(
            entry,
            Inst::Store {
                addr: i,
                value: zero,
            },
        );
        f.set_term(entry, Terminator::Br(header));
        let iv = f.push(
            header,
            Inst::Load {
                addr: i,
                ty: Ty::Int,
            },
        );
        let n = f.param(0);
        let cond = f.bin(BinOp::Lt, iv, n);
        f.set_term(
            header,
            Terminator::CondBr {
                cond,
                then_bb: body,
                else_bb: exit,
            },
        );
        let sv = f.push(
            body,
            Inst::Load {
                addr: s,
                ty: Ty::Int,
            },
        );
        let iv2 = f.push(
            body,
            Inst::Load {
                addr: i,
                ty: Ty::Int,
            },
        );
        let sum = f.bin(BinOp::Add, sv, iv2);
        f.push(
            body,
            Inst::Store {
                addr: s,
                value: sum,
            },
        );
        let one = f.iconst(1);
        let inc = f.bin(BinOp::Add, iv2, one);
        f.push(
            body,
            Inst::Store {
                addr: i,
                value: inc,
            },
        );
        f.set_term(body, Terminator::Br(header));
        let res = f.push(
            exit,
            Inst::Load {
                addr: s,
                ty: Ty::Int,
            },
        );
        f.set_term(exit, Terminator::Ret(Some(res)));
        m.add_function(f);
        m
    }

    #[test]
    fn unroll_makes_acyclic() {
        let m = sum_module();
        let acfg = build_acfg(&m, "sum").unwrap();
        assert!(!has_cycle(&acfg));
        assert!(acfg.blocks.len() > m.function("sum").unwrap().blocks.len());
    }

    #[test]
    fn unroll_preserves_semantics_up_to_two_iterations() {
        let m = sum_module();
        let acfg = build_acfg(&m, "sum").unwrap();
        let mut m2 = Module::new();
        m2.add_function(acfg);
        for n in 0..=2i64 {
            let expect = (0..n).sum::<i64>();
            let orig = run(&m, "sum", &[n], 10_000).unwrap();
            let unrolled = run(&m2, "sum", &[n], 10_000).unwrap();
            assert_eq!(orig, InterpOutcome::Returned(Some(expect)));
            assert_eq!(unrolled, InterpOutcome::Returned(Some(expect)), "n={n}");
        }
    }

    #[test]
    fn unroll_truncates_longer_paths() {
        let m = sum_module();
        let acfg = build_acfg(&m, "sum").unwrap();
        let mut m2 = Module::new();
        m2.add_function(acfg);
        // 3 iterations exceed the two modelled copies: path truncated.
        let r = run(&m2, "sum", &[3], 10_000).unwrap();
        assert_eq!(r, InterpOutcome::Returned(None));
    }

    fn callee_module() -> Module {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "G".into(),
            size: 4,
            is_ptr: false,
            secret: false,
            init: vec![],
        });

        let mut callee = Function::new("get", &[("i", Ty::Int)]);
        let e = callee.entry();
        let base = callee.global_addr(g);
        let i = callee.param(0);
        let addr = callee.gep(base, i);
        let v = callee.push(e, Inst::Load { addr, ty: Ty::Int });
        let two = callee.iconst(2);
        let dbl = callee.bin(BinOp::Mul, v, two);
        callee.set_term(e, Terminator::Ret(Some(dbl)));
        m.add_function(callee);

        let mut caller = Function::new("caller", &[("i", Ty::Int)]);
        let e = caller.entry();
        let i = caller.param(0);
        let c = caller.push(
            e,
            Inst::Call {
                callee: "get".into(),
                args: vec![i],
                ty: Ty::Int,
            },
        );
        let one = caller.iconst(1);
        let r = caller.bin(BinOp::Add, c, one);
        caller.set_term(e, Terminator::Ret(Some(r)));
        m.add_function(caller);
        m
    }

    #[test]
    fn inline_preserves_semantics() {
        let m = callee_module();
        let acfg = build_acfg(&m, "caller").unwrap();
        assert!(
            !acfg.insts.iter().any(|i| matches!(i, Inst::Call { .. })),
            "all calls inlined"
        );
        let mut m2 = Module::new();
        m2.globals = m.globals.clone();
        m2.add_function(acfg);
        let args_mem = |mm: &Module| {
            let mut st = crate::interp::Machine::new(mm);
            st.set_global("G", 2, 21);
            st.call("caller", &[2], 10_000).unwrap()
        };
        // rename for clarity
        let orig = {
            let mut st = crate::interp::Machine::new(&m);
            st.set_global("G", 2, 21);
            st.call("caller", &[2], 10_000).unwrap()
        };
        let inlined = args_mem(&m2);
        assert_eq!(orig, InterpOutcome::Returned(Some(43)));
        assert_eq!(inlined, InterpOutcome::Returned(Some(43)));
    }

    #[test]
    fn undefined_call_becomes_havoc_on_pointer_args() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "buf".into(),
            size: 8,
            is_ptr: false,
            secret: false,
            init: vec![],
        });
        let mut f = Function::new("f", &[("x", Ty::Int)]);
        let e = f.entry();
        let base = f.global_addr(g);
        let x = f.param(0);
        let c = f.push(
            e,
            Inst::Call {
                callee: "memcmp".into(),
                args: vec![base, x],
                ty: Ty::Int,
            },
        );
        f.set_term(e, Terminator::Ret(Some(c)));
        m.add_function(f);
        let acfg = build_acfg(&m, "f").unwrap();
        let havoc = acfg
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Havoc {
                    callee, ptr_args, ..
                } => Some((callee.clone(), ptr_args.len())),
                _ => None,
            })
            .expect("havoc present");
        assert_eq!(havoc.0, "memcmp");
        assert_eq!(havoc.1, 1, "only the pointer operand is havocked");
    }

    fn recursive_module() -> Module {
        // rec(n) = n <= 0 ? 0 : n + rec(n - 1)
        let mut m = Module::new();
        let mut f = Function::new("rec", &[("n", Ty::Int)]);
        let e = f.entry();
        let then_b = f.add_block("base");
        let else_b = f.add_block("rec");
        let n = f.param(0);
        let zero = f.iconst(0);
        let cond = f.bin(BinOp::Le, n, zero);
        f.set_term(
            e,
            Terminator::CondBr {
                cond,
                then_bb: then_b,
                else_bb: else_b,
            },
        );
        let z = f.iconst(0);
        f.set_term(then_b, Terminator::Ret(Some(z)));
        let one = f.iconst(1);
        let n1 = f.bin(BinOp::Sub, n, one);
        let c = f.push(
            else_b,
            Inst::Call {
                callee: "rec".into(),
                args: vec![n1],
                ty: Ty::Int,
            },
        );
        let sum = f.bin(BinOp::Add, n, c);
        f.set_term(else_b, Terminator::Ret(Some(sum)));
        m.add_function(f);
        m
    }

    #[test]
    fn recursion_expanded_twice_then_havocked() {
        let m = recursive_module();
        let acfg = build_acfg(&m, "rec").unwrap();
        assert!(!acfg.insts.iter().any(|i| matches!(i, Inst::Call { .. })));
        assert!(!has_cycle(&acfg));
        // Exactly one havoc: the third-level recursive call.
        let havocs = acfg
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Havoc { .. }))
            .count();
        assert_eq!(havocs, 1);
        // Semantics preserved for depth <= 2 (base cases n = 0, 1, 2).
        let mut m2 = Module::new();
        m2.add_function(acfg);
        for n in 0..=2i64 {
            let expect = (1..=n).sum::<i64>();
            assert_eq!(
                run(&m2, "rec", &[n], 100_000).unwrap(),
                InterpOutcome::Returned(Some(expect)),
                "n={n}"
            );
        }
    }

    #[test]
    fn unknown_function_error() {
        let m = Module::new();
        assert_eq!(
            build_acfg(&m, "nope").unwrap_err(),
            AcfgError::UnknownFunction("nope".into())
        );
    }

    #[test]
    fn nested_loops_unroll() {
        // for i in 0..n { for j in 0..n { fence } } — checks reducible
        // nested unrolling converges.
        let mut m = Module::new();
        let mut f = Function::new("nest", &[("n", Ty::Int)]);
        let e = f.entry();
        let oh = f.add_block("oh");
        let ob = f.add_block("ob");
        let ih = f.add_block("ih");
        let ib = f.add_block("ib");
        let oinc = f.add_block("oinc");
        let exit = f.add_block("exit");
        let iv = f.push(
            e,
            Inst::Alloca {
                name: "i".into(),
                size: 1,
            },
        );
        let jv = f.push(
            e,
            Inst::Alloca {
                name: "j".into(),
                size: 1,
            },
        );
        let zero = f.iconst(0);
        let one = f.iconst(1);
        let n = f.param(0);
        f.push(
            e,
            Inst::Store {
                addr: iv,
                value: zero,
            },
        );
        f.set_term(e, Terminator::Br(oh));
        let i0 = f.push(
            oh,
            Inst::Load {
                addr: iv,
                ty: Ty::Int,
            },
        );
        let c0 = f.bin(BinOp::Lt, i0, n);
        f.set_term(
            oh,
            Terminator::CondBr {
                cond: c0,
                then_bb: ob,
                else_bb: exit,
            },
        );
        f.push(
            ob,
            Inst::Store {
                addr: jv,
                value: zero,
            },
        );
        f.set_term(ob, Terminator::Br(ih));
        let j0 = f.push(
            ih,
            Inst::Load {
                addr: jv,
                ty: Ty::Int,
            },
        );
        let c1 = f.bin(BinOp::Lt, j0, n);
        f.set_term(
            ih,
            Terminator::CondBr {
                cond: c1,
                then_bb: ib,
                else_bb: oinc,
            },
        );
        f.push(ib, Inst::Fence);
        let j1 = f.bin(BinOp::Add, j0, one);
        f.push(
            ib,
            Inst::Store {
                addr: jv,
                value: j1,
            },
        );
        f.set_term(ib, Terminator::Br(ih));
        let i1 = f.bin(BinOp::Add, i0, one);
        f.push(
            oinc,
            Inst::Store {
                addr: iv,
                value: i1,
            },
        );
        f.set_term(oinc, Terminator::Br(oh));
        f.set_term(exit, Terminator::Ret(None));
        m.add_function(f);

        let acfg = build_acfg(&m, "nest").unwrap();
        assert!(!has_cycle(&acfg));
        // 1x1 iteration still runs to completion.
        let mut m2 = Module::new();
        m2.add_function(acfg);
        assert_eq!(
            run(&m2, "nest", &[1], 100_000).unwrap(),
            InterpOutcome::Returned(None)
        );
    }
}
