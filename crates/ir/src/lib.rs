//! A compact LLVM-flavoured IR and the Abstract-CFG pipeline of Clou §5.1.
//!
//! Clou consumes LLVM IR produced by `clang -O0`. This crate provides the
//! stand-in: a control-flow-graph IR whose feature set is exactly what the
//! leakage analysis observes —
//!
//! * memory operations (`load` / `store` / `alloca` / global addresses),
//! * `getelementptr`-style address arithmetic ([`Inst::Gep`]), which is what
//!   distinguishes `addr_gep` dependencies (§5.2),
//! * calls (later inlined) and *havoc* calls modelling undefined external
//!   functions ("a load or store to one of its pointer operands", §5.1),
//! * branches (speculation primitives) and fences (the repair primitive).
//!
//! Design note: only memory operations, calls, and fences are *scheduled*
//! in basic blocks. Arithmetic, constants, parameters and address
//! computations are pure dataflow nodes referenced by id — dependency
//! extraction (`addr`/`data`/`ctrl`) follows this operand graph, mirroring
//! how Clou reads LLVM's use-def chains.
//!
//! The A-CFG transformation lives in [`acfg`]: loop summarization by
//! two-fold unrolling and exhaustive inlining with two-fold recursion
//! expansion. [`interp`] provides a reference interpreter used to validate
//! that those transformations preserve straight-line semantics.

pub mod acfg;
pub mod canon;
pub mod cfg;
pub mod interp;
mod types;
pub mod verify;

pub use types::{
    BinOp, Block, BlockId, Function, Global, GlobalId, Inst, InstId, Module, Terminator, Ty, Value,
};
