//! IR data types: modules, globals, functions, blocks, instructions.

use std::fmt;

/// Result type of an instruction: an integer or a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A machine integer.
    Int,
    /// A pointer into some memory region.
    Ptr,
}

/// Index of an instruction (and its result value) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

/// Alias emphasising that instruction ids double as SSA values.
pub type Value = InstId;

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Index of a global variable within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Evaluates the operation on two integers (division/remainder by zero
    /// yield 0, keeping the interpreter total).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b).unwrap_or(0),
            BinOp::Rem => a.checked_rem(b).unwrap_or(0),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
        }
    }
}

/// One IR instruction. Memory operations, calls and fences are scheduled in
/// blocks; all other variants are pure dataflow nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// An integer constant (pure).
    Const(i64),
    /// The `index`-th function parameter (pure).
    Param {
        /// Zero-based parameter index.
        index: usize,
        /// Parameter type.
        ty: Ty,
    },
    /// The address of a global (pure).
    GlobalAddr(GlobalId),
    /// A stack slot of `size` abstract words (scheduled: each execution
    /// creates a fresh region).
    Alloca {
        /// Debug name (the source variable).
        name: String,
        /// Size in abstract words.
        size: u32,
    },
    /// A memory load (scheduled).
    Load {
        /// Address operand.
        addr: Value,
        /// Result type (`Ptr` for pointer-typed loads).
        ty: Ty,
    },
    /// A memory store (scheduled).
    Store {
        /// Address operand.
        addr: Value,
        /// Stored value.
        value: Value,
    },
    /// `base + index * scale`: LLVM `getelementptr`-style address
    /// arithmetic (pure). Dependencies flowing through `index` are
    /// `addr_gep` dependencies (§5.2).
    Gep {
        /// Base pointer.
        base: Value,
        /// Element index.
        index: Value,
        /// Element size in abstract words.
        scale: u32,
    },
    /// A binary operation (pure).
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// A direct call (scheduled; inlined away by the A-CFG pipeline).
    Call {
        /// Callee name.
        callee: String,
        /// Argument values.
        args: Vec<Value>,
        /// Result type.
        ty: Ty,
    },
    /// An undefined external call after A-CFG construction: may load or
    /// store any of its pointer operands (scheduled).
    Havoc {
        /// Callee name (for diagnostics).
        callee: String,
        /// The pointer-typed arguments it may access.
        ptr_args: Vec<Value>,
        /// Result type.
        ty: Ty,
    },
    /// A speculation barrier (`lfence`); the repair primitive (scheduled).
    Fence,
}

impl Inst {
    /// `true` if the instruction must be scheduled in a block.
    pub fn is_scheduled(&self) -> bool {
        matches!(
            self,
            Inst::Alloca { .. }
                | Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Call { .. }
                | Inst::Havoc { .. }
                | Inst::Fence
        )
    }

    /// The operand values of the instruction.
    pub fn operands(&self) -> Vec<Value> {
        match self {
            Inst::Const(_)
            | Inst::Param { .. }
            | Inst::GlobalAddr(_)
            | Inst::Alloca { .. }
            | Inst::Fence => Vec::new(),
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value } => vec![*addr, *value],
            Inst::Gep { base, index, .. } => vec![*base, *index],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Call { args, .. } => args.clone(),
            Inst::Havoc { ptr_args, .. } => ptr_args.clone(),
        }
    }

    /// The result type, if the instruction produces a value.
    pub fn result_ty(&self) -> Option<Ty> {
        match self {
            Inst::Const(_) => Some(Ty::Int),
            Inst::Param { ty, .. } => Some(*ty),
            Inst::GlobalAddr(_) | Inst::Alloca { .. } | Inst::Gep { .. } => Some(Ty::Ptr),
            Inst::Load { ty, .. } | Inst::Call { ty, .. } | Inst::Havoc { ty, .. } => Some(*ty),
            Inst::Bin { .. } => Some(Ty::Int),
            Inst::Store { .. } | Inst::Fence => None,
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Br(BlockId),
    /// Conditional branch on a (nonzero = taken) value.
    CondBr {
        /// Condition value.
        cond: Value,
        /// Target when the condition is nonzero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Value>),
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => Vec::new(),
        }
    }
}

/// A basic block: scheduled instruction ids plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Debug name.
    pub name: String,
    /// Scheduled instructions, in program order.
    pub insts: Vec<InstId>,
    /// Block terminator.
    pub term: Terminator,
}

/// A global variable (an array of abstract words).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Number of abstract words.
    pub size: u32,
    /// `true` if the stored data is pointer-typed (pointer tables are not
    /// attacker-controlled under Clou's taint assumptions, §5.3).
    pub is_ptr: bool,
    /// `true` if the contents are secret (used by corpus ground truth and
    /// reports; the detector itself does not need secrecy labels).
    pub secret: bool,
    /// Sparse initializer: `(index, value)` pairs; unlisted words are zero.
    pub init: Vec<(u32, i64)>,
}

impl Global {
    /// A zero-initialized array global.
    pub fn array(name: &str, size: u32) -> Self {
        Global {
            name: name.to_string(),
            size,
            is_ptr: false,
            secret: false,
            init: Vec::new(),
        }
    }

    /// A zero-initialized scalar global.
    pub fn scalar(name: &str) -> Self {
        Self::array(name, 1)
    }

    /// Marks the global's contents as pointer-typed.
    #[must_use]
    pub fn ptr(mut self) -> Self {
        self.is_ptr = true;
        self
    }

    /// Marks the global as secret.
    #[must_use]
    pub fn secret(mut self) -> Self {
        self.secret = true;
        self
    }

    /// Sets initial words from the start of the global.
    #[must_use]
    pub fn with_init(mut self, values: &[i64]) -> Self {
        self.init = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self
    }
}

/// A function: instruction arena + basic blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Ty)>,
    /// Instruction arena (scheduled and pure nodes alike).
    pub insts: Vec<Inst>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// `true` if externally callable (analyzed by the detector).
    pub is_public: bool,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: &str, params: &[(&str, Ty)]) -> Self {
        Function {
            name: name.to_string(),
            params: params.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            insts: Vec::new(),
            blocks: vec![Block {
                name: "entry".to_string(),
                insts: Vec::new(),
                term: Terminator::Ret(None),
            }],
            is_public: true,
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Adds an empty block (terminated by `ret void` until set).
    pub fn add_block(&mut self, name: &str) -> BlockId {
        self.blocks.push(Block {
            name: name.to_string(),
            insts: Vec::new(),
            term: Terminator::Ret(None),
        });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Interns an instruction into the arena without scheduling it.
    /// Use for pure nodes.
    pub fn value(&mut self, inst: Inst) -> Value {
        debug_assert!(!inst.is_scheduled(), "scheduled inst needs push()");
        self.insts.push(inst);
        InstId(self.insts.len() as u32 - 1)
    }

    /// Appends a scheduled instruction to a block, returning its id.
    pub fn push(&mut self, bb: BlockId, inst: Inst) -> InstId {
        debug_assert!(inst.is_scheduled(), "pure inst: use value()");
        self.insts.push(inst);
        let id = InstId(self.insts.len() as u32 - 1);
        self.blocks[bb.0 as usize].insts.push(id);
        id
    }

    /// Sets a block's terminator.
    pub fn set_term(&mut self, bb: BlockId, term: Terminator) {
        self.blocks[bb.0 as usize].term = term;
    }

    /// Shorthand for an integer constant.
    pub fn iconst(&mut self, v: i64) -> Value {
        self.value(Inst::Const(v))
    }

    /// Shorthand for a parameter reference.
    pub fn param(&mut self, index: usize) -> Value {
        let ty = self.params[index].1;
        self.value(Inst::Param { index, ty })
    }

    /// Shorthand for a global address.
    pub fn global_addr(&mut self, g: GlobalId) -> Value {
        self.value(Inst::GlobalAddr(g))
    }

    /// Shorthand for a binary operation node.
    pub fn bin(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        self.value(Inst::Bin { op, lhs, rhs })
    }

    /// Shorthand for a gep node with scale 1.
    pub fn gep(&mut self, base: Value, index: Value) -> Value {
        self.value(Inst::Gep {
            base,
            index,
            scale: 1,
        })
    }

    /// The instruction behind a value.
    pub fn inst(&self, v: Value) -> &Inst {
        &self.insts[v.0 as usize]
    }

    /// Number of instructions in the arena.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Total number of *scheduled* instructions across blocks (the node
    /// count used for Fig. 8's size axis).
    pub fn scheduled_len(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterates over `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, (n, t)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {t:?}")?;
        }
        writeln!(f, ") {{")?;
        for (bi, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{bi} ({}):", b.name)?;
            for &i in &b.insts {
                writeln!(f, "  %{} = {:?}", i.0, self.insts[i.0 as usize])?;
            }
            writeln!(f, "  {:?}", b.term)?;
        }
        write!(f, "}}")
    }
}

/// A module: globals + functions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions.
    pub functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        self.globals.push(g);
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Adds a function, returning its index.
    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Public functions (the detector's analysis units).
    pub fn public_functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.is_public)
    }

    /// Static line-of-code proxy: total scheduled instructions.
    pub fn total_scheduled(&self) -> usize {
        self.functions.iter().map(Function::scheduled_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_division_total() {
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
    }

    #[test]
    fn binop_eval_comparisons() {
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
        assert_eq!(BinOp::Eq.eval(5, 5), 1);
        assert_eq!(BinOp::Ne.eval(5, 5), 0);
    }

    #[test]
    fn binop_shift_masks_amount() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1); // 64 & 63 == 0
        assert_eq!(BinOp::Shr.eval(-1, 63), 1);
    }

    #[test]
    fn scheduled_vs_pure_classification() {
        assert!(Inst::Fence.is_scheduled());
        assert!(Inst::Load {
            addr: InstId(0),
            ty: Ty::Int
        }
        .is_scheduled());
        assert!(!Inst::Const(3).is_scheduled());
        assert!(!Inst::Gep {
            base: InstId(0),
            index: InstId(1),
            scale: 1
        }
        .is_scheduled());
    }

    #[test]
    fn result_types() {
        assert_eq!(Inst::Const(1).result_ty(), Some(Ty::Int));
        assert_eq!(
            Inst::Store {
                addr: InstId(0),
                value: InstId(1)
            }
            .result_ty(),
            None
        );
        assert_eq!(
            Inst::Gep {
                base: InstId(0),
                index: InstId(1),
                scale: 4
            }
            .result_ty(),
            Some(Ty::Ptr)
        );
    }

    #[test]
    fn function_builder_basics() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "A".into(),
            size: 16,
            is_ptr: false,
            secret: false,
            init: vec![],
        });
        let mut f = Function::new("f", &[("y", Ty::Int)]);
        let bb = f.entry();
        let base = f.global_addr(g);
        let y = f.param(0);
        let addr = f.gep(base, y);
        let ld = f.push(bb, Inst::Load { addr, ty: Ty::Int });
        f.set_term(bb, Terminator::Ret(Some(ld)));
        assert_eq!(f.scheduled_len(), 1);
        assert_eq!(f.num_insts(), 4);
        let printed = f.to_string();
        assert!(printed.contains("fn f("));
        assert!(printed.contains("Load"));
        m.add_function(f);
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.global("A").unwrap().0, GlobalId(0));
        assert_eq!(m.total_scheduled(), 1);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Br(BlockId(3)).successors(), vec![BlockId(3)]);
        assert!(Terminator::Ret(None).successors().is_empty());
        assert_eq!(
            Terminator::CondBr {
                cond: InstId(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
            .successors()
            .len(),
            2
        );
    }
}
