//! A Binsec/Haunted-style baseline detector (the paper's comparator, §6).
//!
//! Binsec/Haunted (Daniel et al., NDSS'21) detects Spectre-PHT and
//! Spectre-STL violations with relational symbolic execution: it
//! *enumerates architectural paths*, forks transient paths at speculation
//! points, and reports instructions whose transient behaviour depends on
//! attacker input. The tool itself is a closed research binary built on
//! Binsec, so this crate provides an algorithmically faithful stand-in
//! (see DESIGN.md):
//!
//! * **path enumeration** — analysis cost grows with the number of
//!   architectural paths (2^branches), unlike Clou's one-shot per-function
//!   encoding; this is what makes the baseline scale poorly on large
//!   functions (Table 2, Fig. 8);
//! * **no transmitter taxonomy** — it reports flat "violations"
//!   (the paper: "BH does not distinguish between the different classes of
//!   transmitters we define");
//! * configuration defaults ROB 200 / LSQ 20, as in the original paper.
//!
//! PHT mode explores every transient sub-path in every window; STL mode
//! additionally enumerates load × older-store bypass pairs per path —
//! the product that makes `bh-stl` an order of magnitude slower than
//! `bh-pht` on the same inputs (Table 2).
//!
//! # Examples
//!
//! ```
//! use lcm_haunted::{analyze_module, HauntedConfig, HauntedEngine};
//!
//! let module = lcm_minic::compile(r#"
//!     int A[16]; int B[4096]; int size; int tmp;
//!     void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }
//! "#).unwrap();
//! let report = analyze_module(&module, HauntedEngine::Pht, HauntedConfig::default());
//! assert!(report.total_leaks() >= 1); // found, but with no taxonomy
//! ```

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use lcm_aeg::addr::AddrOracle;
use lcm_aeg::taint::attacker_controlled;
use lcm_core::speculation::SpeculationPrimitive;
use lcm_ir::acfg::build_acfg;
use lcm_ir::{BlockId, Function, Inst, InstId, Module, Terminator};

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct HauntedConfig {
    /// Reorder-buffer depth bound for transient windows (paper: 200).
    pub rob: usize,
    /// Store queue depth for STL bypasses (paper: 20).
    pub lsq: usize,
    /// Cap on enumerated architectural paths per function (keeps the
    /// worst case finite, as BH's timeouts do).
    pub max_paths: usize,
    /// Per-function work budget in instruction visits (architectural and
    /// transient) across path checks. The paper runs BH with 1-hour /
    /// 6-hour wall-clock timeouts and reports partial results in bold;
    /// the same convention applies here (partial leaks + `exhausted =
    /// true`), but as a deterministic work budget rather than a wall
    /// clock so results are independent of machine load and of `jobs`.
    pub step_budget: u64,
    /// Worker threads for per-function fan-out in [`analyze_module`]:
    /// `0` uses all available cores, `1` is exact serial execution.
    pub jobs: usize,
}

impl Default for HauntedConfig {
    fn default() -> Self {
        HauntedConfig {
            rob: 200,
            lsq: 20,
            max_paths: 1 << 12,
            step_budget: 50_000_000,
            jobs: 0,
        }
    }
}

/// Which engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HauntedEngine {
    /// Spectre-PHT (control-flow speculation).
    Pht,
    /// Spectre-STL (store-to-load forwarding).
    Stl,
}

/// One reported violation (flat — no taxonomy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HauntedLeak {
    /// Function name.
    pub function: String,
    /// The culprit (transiently leaking) instruction.
    pub inst: InstId,
    /// Which primitive was exploited.
    pub primitive: SpeculationPrimitive,
}

/// Per-function result.
#[derive(Debug, Clone)]
pub struct HauntedReport {
    /// Function name.
    pub name: String,
    /// Distinct violations.
    pub leaks: Vec<HauntedLeak>,
    /// Architectural paths explored.
    pub paths_explored: usize,
    /// Whether the path cap was hit (a "timeout").
    pub exhausted: bool,
    /// Serial runtime.
    pub runtime: Duration,
    /// `Some(reason)` when this function's analysis was cut short (the
    /// A-CFG failed to build, or the worker panicked); its `leaks` are
    /// then a lower bound. `None` for a completed run.
    pub degraded: Option<String>,
}

/// Module-level result.
#[derive(Debug, Clone, Default)]
pub struct HauntedModuleReport {
    /// Per-function reports.
    pub functions: Vec<HauntedReport>,
}

impl HauntedModuleReport {
    /// Total distinct violations.
    pub fn total_leaks(&self) -> usize {
        self.functions.iter().map(|f| f.leaks.len()).sum()
    }

    /// Total serial runtime.
    pub fn total_runtime(&self) -> Duration {
        self.functions.iter().map(|f| f.runtime).sum()
    }

    /// How many functions were degraded (cut short).
    pub fn degraded_count(&self) -> usize {
        self.functions
            .iter()
            .filter(|f| f.degraded.is_some())
            .count()
    }
}

/// Runs the baseline over every public function, fanning out over
/// [`HauntedConfig::jobs`] worker threads (reports stay in module order).
///
/// Workers are isolated: a panic while analyzing one function degrades
/// that function's report ([`HauntedReport::degraded`]) and leaves the
/// rest of the module untouched.
pub fn analyze_module(
    module: &Module,
    engine: HauntedEngine,
    config: HauntedConfig,
) -> HauntedModuleReport {
    let names: Vec<&str> = module.public_functions().map(|f| f.name.as_str()).collect();
    let results = lcm_core::par::map_indexed_catch(&names, config.jobs, |_, name| {
        analyze_function(module, name, engine, config)
    });
    let functions = results
        .into_iter()
        .zip(&names)
        .map(|(res, name)| match res {
            Ok(report) => report,
            Err(message) => HauntedReport {
                name: name.to_string(),
                leaks: Vec::new(),
                paths_explored: 0,
                exhausted: false,
                runtime: Duration::ZERO,
                degraded: Some(format!("worker panic: {message}")),
            },
        })
        .collect();
    HauntedModuleReport { functions }
}

/// Runs the baseline over one function. A function that does not exist
/// (or has irreducible control flow) yields a degraded report, not a
/// panic.
pub fn analyze_function(
    module: &Module,
    fname: &str,
    engine: HauntedEngine,
    config: HauntedConfig,
) -> HauntedReport {
    let start = Instant::now();
    let mut budget: i64 = config.step_budget.max(1) as i64;
    let acfg = match build_acfg(module, fname) {
        Ok(a) => a,
        Err(e) => {
            return HauntedReport {
                name: fname.to_string(),
                leaks: Vec::new(),
                paths_explored: 0,
                exhausted: false,
                runtime: start.elapsed(),
                degraded: Some(format!("malformed IR: {e}")),
            }
        }
    };
    let mut paths = Vec::new();
    let mut exhausted = false;
    enumerate_paths(
        &acfg,
        acfg.entry(),
        &mut Vec::new(),
        &mut paths,
        config.max_paths,
        &mut exhausted,
    );

    let mut leaks: HashSet<HauntedLeak> = HashSet::new();
    // Symbolic addresses and feeding-load sets depend only on the
    // function, not the path, so cache them across the 2^branches path
    // enumeration instead of re-walking the operand graph per path.
    let mut caches = StlCaches {
        oracle: AddrOracle::new(&acfg),
        feeds: HashMap::new(),
    };
    for path in &paths {
        if budget <= 0 {
            exhausted = true; // the BH-style timeout: partial results
            break;
        }
        match engine {
            HauntedEngine::Pht => {
                check_pht_path(&acfg, fname, path, config, &mut budget, &mut leaks);
            }
            HauntedEngine::Stl => {
                check_stl_path(
                    &acfg,
                    fname,
                    path,
                    config,
                    &mut budget,
                    &mut caches,
                    &mut leaks,
                );
            }
        }
    }
    let mut leaks: Vec<HauntedLeak> = leaks.into_iter().collect();
    leaks.sort_by_key(|l| l.inst);
    HauntedReport {
        name: fname.to_string(),
        leaks,
        paths_explored: paths.len(),
        exhausted,
        runtime: start.elapsed(),
        degraded: None,
    }
}

/// Enumerates architectural block paths through the (acyclic) A-CFG.
fn enumerate_paths(
    f: &Function,
    b: BlockId,
    cur: &mut Vec<BlockId>,
    out: &mut Vec<Vec<BlockId>>,
    cap: usize,
    exhausted: &mut bool,
) {
    if out.len() >= cap {
        *exhausted = true;
        return;
    }
    cur.push(b);
    match &f.blocks[b.0 as usize].term {
        Terminator::Ret(_) => out.push(cur.clone()),
        Terminator::Br(t) => enumerate_paths(f, *t, cur, out, cap, exhausted),
        Terminator::CondBr {
            then_bb, else_bb, ..
        } => {
            enumerate_paths(f, *then_bb, cur, out, cap, exhausted);
            enumerate_paths(f, *else_bb, cur, out, cap, exhausted);
        }
    }
    cur.pop();
}

/// The memory instructions of a block path, in order.
fn path_insts(f: &Function, path: &[BlockId]) -> Vec<InstId> {
    let mut out = Vec::new();
    for &b in path {
        for &i in &f.blocks[b.0 as usize].insts {
            if matches!(
                f.inst(i),
                Inst::Load { .. } | Inst::Store { .. } | Inst::Havoc { .. } | Inst::Fence
            ) {
                out.push(i);
            }
        }
    }
    out
}

/// PHT: at each conditional branch on the path, fork transient sub-paths
/// down the other side; any transient memory access with an attacker-
/// dependent address is a violation.
fn check_pht_path(
    f: &Function,
    fname: &str,
    path: &[BlockId],
    config: HauntedConfig,
    budget: &mut i64,
    leaks: &mut HashSet<HauntedLeak>,
) {
    for (i, &b) in path.iter().enumerate() {
        if *budget <= 0 {
            return;
        }
        let Terminator::CondBr {
            then_bb, else_bb, ..
        } = &f.blocks[b.0 as usize].term
        else {
            continue;
        };
        let arch_next = path.get(i + 1).copied();
        let wrong = if arch_next == Some(*then_bb) {
            *else_bb
        } else {
            *then_bb
        };
        // Explore every transient sub-path from the wrong successor.
        let mut stack: Vec<(BlockId, usize)> = vec![(wrong, 0)];
        let mut fork_guard = 0usize;
        while let Some((blk, depth)) = stack.pop() {
            fork_guard += 1;
            if fork_guard > 4096 || *budget <= 0 {
                break;
            }
            let mut d = depth;
            let mut stop = false;
            for &iid in &f.blocks[blk.0 as usize].insts {
                *budget -= 1;
                if d >= config.rob {
                    stop = true;
                    break;
                }
                match f.inst(iid) {
                    Inst::Fence => {
                        stop = true;
                        break;
                    }
                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                        d += 1;
                        if attacker_controlled(f, *addr) {
                            leaks.insert(HauntedLeak {
                                function: fname.to_string(),
                                inst: iid,
                                primitive: SpeculationPrimitive::ConditionalBranch,
                            });
                        }
                    }
                    Inst::Havoc { .. } => {
                        d += 1;
                    }
                    _ => {}
                }
            }
            if !stop && d < config.rob {
                for s in f.blocks[blk.0 as usize].term.successors() {
                    stack.push((s, d));
                }
            }
        }
    }
}

/// Function-lifetime caches for the STL engine: memoized symbolic
/// addresses plus the feeding-load sets of access addresses, both
/// invariant across the enumerated paths.
struct StlCaches<'f> {
    oracle: AddrOracle<'f>,
    feeds: HashMap<u32, Vec<(InstId, bool)>>,
}

/// STL: on each path, each load may bypass each older store within the
/// store-queue window; a bypass whose stale value flows (syntactically)
/// into a later access's address is a violation.
fn check_stl_path(
    f: &Function,
    fname: &str,
    path: &[BlockId],
    config: HauntedConfig,
    budget: &mut i64,
    caches: &mut StlCaches<'_>,
    leaks: &mut HashSet<HauntedLeak>,
) {
    let insts = path_insts(f, path);
    for (li, &l) in insts.iter().enumerate() {
        *budget -= 1;
        if *budget <= 0 {
            return;
        }
        let Inst::Load { addr: laddr, .. } = f.inst(l) else {
            continue;
        };
        let la = caches.oracle.addr(*laddr);
        // Enumerate older stores within the LSQ window (the per-path
        // product that dominates bh-stl's runtime).
        for &s in insts[li.saturating_sub(config.lsq)..li].iter() {
            *budget -= 1;
            let Inst::Store { addr: saddr, .. } = f.inst(s) else {
                continue;
            };
            let sa = caches.oracle.addr(*saddr);
            if lcm_aeg::addr::alias(la, sa) == lcm_aeg::addr::AliasResult::No {
                continue;
            }
            // Fence between store and load on this path kills the bypass.
            if fence_between(f, &insts, insts.iter().position(|&x| x == s).unwrap(), li) {
                continue;
            }
            // Stale value of l flows into a later access's address?
            for &t in &insts[li + 1..] {
                *budget -= 1;
                let taddr = match f.inst(t) {
                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => *addr,
                    _ => continue,
                };
                let feeds = caches
                    .feeds
                    .entry(taddr.0)
                    .or_insert_with(|| lcm_aeg::addr::feeding_loads(f, taddr))
                    .iter()
                    .any(|&(ld, _)| ld == l);
                if feeds {
                    leaks.insert(HauntedLeak {
                        function: fname.to_string(),
                        inst: t,
                        primitive: SpeculationPrimitive::StoreForwarding,
                    });
                }
            }
        }
    }
}

fn fence_between(f: &Function, insts: &[InstId], from: usize, to: usize) -> bool {
    insts[from..to]
        .iter()
        .any(|&i| matches!(f.inst(i), Inst::Fence))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, engine: HauntedEngine) -> HauntedModuleReport {
        let m = lcm_minic::compile(src).unwrap();
        analyze_module(&m, engine, HauntedConfig::default())
    }

    const SPECTRE_V1: &str = r#"
        int A[16]; int B[256]; int size_A; int tmp;
        void victim(int y) {
            if (y < size_A) {
                tmp &= B[A[y]];
            }
        }"#;

    #[test]
    fn finds_spectre_v1() {
        let r = run(SPECTRE_V1, HauntedEngine::Pht);
        assert!(r.total_leaks() >= 1);
        assert_eq!(
            r.functions[0].leaks[0].primitive,
            SpeculationPrimitive::ConditionalBranch
        );
    }

    #[test]
    fn finds_stl_bypass() {
        let src = r#"
            int pub_ary[256]; int sec[16]; int tmp;
            void case_1(int idx) {
                int ridx = idx & 15;
                sec[ridx] = 0;
                tmp &= pub_ary[sec[ridx]];
            }"#;
        let r = run(src, HauntedEngine::Stl);
        assert!(r.total_leaks() >= 1);
    }

    #[test]
    fn clean_function_reports_nothing() {
        let src = "int A[4]; int t; void f() { t = A[0]; }";
        assert_eq!(run(src, HauntedEngine::Pht).total_leaks(), 0);
        assert_eq!(run(src, HauntedEngine::Stl).total_leaks(), 0);
    }

    #[test]
    fn fence_suppresses_both_engines() {
        let pht_src = r#"
            int A[16]; int B[256]; int size_A; int tmp;
            void victim(int y) { if (y < size_A) { lfence(); tmp &= B[A[y]]; } }"#;
        assert_eq!(run(pht_src, HauntedEngine::Pht).total_leaks(), 0);
        // `register` keeps idx/ridx out of memory so the only bypass pair
        // is the sec store/load across the fence.
        let stl_src = r#"
            int pub_ary[256]; int sec[16]; int tmp;
            void case_1(register int idx) {
                register int ridx = idx & 15;
                sec[ridx] = 0;
                lfence();
                tmp &= pub_ary[sec[ridx]];
            }"#;
        assert_eq!(run(stl_src, HauntedEngine::Stl).total_leaks(), 0);
    }

    #[test]
    fn path_count_grows_exponentially() {
        // 4 sequential ifs: 16 paths — the baseline's scaling burden.
        let src = r#"
            int G;
            void f(int a, int b, int c, int d) {
                if (a) { G = 1; }
                if (b) { G = 2; }
                if (c) { G = 3; }
                if (d) { G = 4; }
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let r = analyze_function(&m, "f", HauntedEngine::Pht, HauntedConfig::default());
        assert_eq!(r.paths_explored, 16);
    }

    #[test]
    fn path_cap_marks_exhaustion() {
        let src = r#"
            int G;
            void f(int a, int b, int c) {
                if (a) { G = 1; }
                if (b) { G = 2; }
                if (c) { G = 3; }
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let r = analyze_function(
            &m,
            "f",
            HauntedEngine::Pht,
            HauntedConfig {
                max_paths: 4,
                ..HauntedConfig::default()
            },
        );
        assert!(r.exhausted);
        assert_eq!(r.paths_explored, 4);
    }

    #[test]
    fn no_taxonomy_in_output() {
        // Structural: HauntedLeak has no class field; this test documents
        // the qualitative limitation (§6: "BH does not distinguish...").
        let r = run(SPECTRE_V1, HauntedEngine::Pht);
        let l = &r.functions[0].leaks[0];
        let _: &HauntedLeak = l;
    }
}
