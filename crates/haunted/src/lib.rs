//! A Binsec/Haunted-style baseline detector (the paper's comparator, §6).
//!
//! Binsec/Haunted (Daniel et al., NDSS'21) detects Spectre-PHT and
//! Spectre-STL violations with relational symbolic execution: it
//! *enumerates architectural paths*, forks transient paths at speculation
//! points, and reports instructions whose transient behaviour depends on
//! attacker input. The tool itself is a closed research binary built on
//! Binsec, so this crate provides an algorithmically faithful stand-in
//! (see DESIGN.md):
//!
//! * **path enumeration** — analysis cost grows with the number of
//!   architectural paths (2^branches), unlike Clou's one-shot per-function
//!   encoding; this is what makes the baseline scale poorly on large
//!   functions (Table 2, Fig. 8);
//! * **no transmitter taxonomy** — it reports flat "violations"
//!   (the paper: "BH does not distinguish between the different classes of
//!   transmitters we define");
//! * configuration defaults ROB 200 / LSQ 20, as in the original paper.
//!
//! PHT mode explores every transient sub-path in every window; STL mode
//! additionally enumerates load × older-store bypass pairs per path —
//! the product that makes `bh-stl` an order of magnitude slower than
//! `bh-pht` on the same inputs (Table 2).
//!
//! # Examples
//!
//! ```
//! use lcm_haunted::{analyze_module, HauntedConfig, HauntedEngine};
//!
//! let module = lcm_minic::compile(r#"
//!     int A[16]; int B[4096]; int size; int tmp;
//!     void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }
//! "#).unwrap();
//! let report = analyze_module(&module, HauntedEngine::Pht, HauntedConfig::default());
//! assert!(report.total_leaks() >= 1); // found, but with no taxonomy
//! ```

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use lcm_aeg::addr::AddrOracle;
use lcm_aeg::taint::attacker_controlled;
use lcm_core::speculation::SpeculationPrimitive;
use lcm_ir::acfg::build_acfg;
use lcm_ir::{BlockId, Function, Inst, InstId, Module, Terminator};

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct HauntedConfig {
    /// Reorder-buffer depth bound for transient windows (paper: 200).
    pub rob: usize,
    /// Store queue depth for STL bypasses (paper: 20).
    pub lsq: usize,
    /// Cap on enumerated architectural paths per function (keeps the
    /// worst case finite, as BH's timeouts do).
    pub max_paths: usize,
    /// Per-function work budget in instruction visits (architectural and
    /// transient) across path checks. The paper runs BH with 1-hour /
    /// 6-hour wall-clock timeouts and reports partial results in bold;
    /// the same convention applies here (partial leaks + `exhausted =
    /// true`), but as a deterministic work budget rather than a wall
    /// clock so results are independent of machine load and of `jobs`.
    pub step_budget: u64,
    /// Worker threads: `0` uses all available cores, `1` is exact
    /// serial execution. [`analyze_module`] splits the pool two-level —
    /// across functions first, with left-over workers splitting each
    /// function's enumerated paths. Reports are identical at every
    /// value: per-path work is pure and results merge in path order,
    /// with the step budget applied path-granularly during the merge.
    pub jobs: usize,
}

impl Default for HauntedConfig {
    fn default() -> Self {
        HauntedConfig {
            rob: 200,
            lsq: 20,
            max_paths: 1 << 12,
            step_budget: 50_000_000,
            jobs: 0,
        }
    }
}

/// Which engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HauntedEngine {
    /// Spectre-PHT (control-flow speculation).
    Pht,
    /// Spectre-STL (store-to-load forwarding).
    Stl,
}

/// One reported violation (flat — no taxonomy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HauntedLeak {
    /// Function name.
    pub function: String,
    /// The culprit (transiently leaking) instruction.
    pub inst: InstId,
    /// Which primitive was exploited.
    pub primitive: SpeculationPrimitive,
}

/// Per-function result.
#[derive(Debug, Clone)]
pub struct HauntedReport {
    /// Function name.
    pub name: String,
    /// Distinct violations.
    pub leaks: Vec<HauntedLeak>,
    /// Architectural paths explored.
    pub paths_explored: usize,
    /// Whether the path cap was hit (a "timeout").
    pub exhausted: bool,
    /// Serial runtime.
    pub runtime: Duration,
    /// Time enumerating architectural paths (the 2^branches walk).
    pub t_enumerate: Duration,
    /// Time in relational execution: transient forking (PHT) or bypass
    /// pair enumeration (STL) over every explored path.
    pub t_execute: Duration,
    /// Time confirming candidates as attacker-observable (taint walks /
    /// feeding-load checks), deduplicated across paths.
    pub t_witness: Duration,
    /// `Some(reason)` when this function's analysis was cut short (the
    /// A-CFG failed to build, or the worker panicked); its `leaks` are
    /// then a lower bound. `None` for a completed run.
    pub degraded: Option<String>,
}

/// Module-level result.
#[derive(Debug, Clone, Default)]
pub struct HauntedModuleReport {
    /// Per-function reports.
    pub functions: Vec<HauntedReport>,
}

impl HauntedModuleReport {
    /// Total distinct violations.
    pub fn total_leaks(&self) -> usize {
        self.functions.iter().map(|f| f.leaks.len()).sum()
    }

    /// Total serial runtime.
    pub fn total_runtime(&self) -> Duration {
        self.functions.iter().map(|f| f.runtime).sum()
    }

    /// How many functions were degraded (cut short).
    pub fn degraded_count(&self) -> usize {
        self.functions
            .iter()
            .filter(|f| f.degraded.is_some())
            .count()
    }
}

/// Runs the baseline over every public function, fanning out over
/// [`HauntedConfig::jobs`] worker threads (reports stay in module order).
///
/// Workers are isolated: a panic while analyzing one function degrades
/// that function's report ([`HauntedReport::degraded`]) and leaves the
/// rest of the module untouched.
pub fn analyze_module(
    module: &Module,
    engine: HauntedEngine,
    config: HauntedConfig,
) -> HauntedModuleReport {
    let names: Vec<&str> = module.public_functions().map(|f| f.name.as_str()).collect();
    // Split the worker pool between the two parallelism levels: fan out
    // across functions first, and hand the leftover factor to each
    // function's intra-function path splitting — so a module that is one
    // big function (the mee-cbc/donna shape) still uses every worker.
    let total = lcm_core::par::effective_jobs(config.jobs);
    let outer = total.min(names.len()).max(1);
    let inner_config = HauntedConfig {
        jobs: (total / outer).max(1),
        ..config
    };
    let results = lcm_core::par::map_indexed_catch(&names, outer, |_, name| {
        analyze_function(module, name, engine, inner_config)
    });
    let functions = results
        .into_iter()
        .zip(&names)
        .map(|(res, name)| match res {
            Ok(report) => report,
            Err(message) => degraded_report(name, format!("worker panic: {message}")),
        })
        .collect();
    HauntedModuleReport { functions }
}

fn degraded_report(name: &str, reason: String) -> HauntedReport {
    HauntedReport {
        name: name.to_string(),
        leaks: Vec::new(),
        paths_explored: 0,
        exhausted: false,
        runtime: Duration::ZERO,
        t_enumerate: Duration::ZERO,
        t_execute: Duration::ZERO,
        t_witness: Duration::ZERO,
        degraded: Some(reason),
    }
}

/// Runs the baseline over one function. A function that does not exist
/// (or has irreducible control flow) yields a degraded report, not a
/// panic.
///
/// The analysis runs in three timed phases:
///
/// 1. **path enumeration** — the 2^branches architectural walk, into a
///    flat arena ([`PathSet`]) instead of one `Vec` per path;
/// 2. **relational execution** — per-path transient forking (PHT) or
///    bypass-pair enumeration (STL), producing *candidate* instructions;
///    paths are independent, so with `jobs > 1` they are split across
///    the worker pool and merged in path order;
/// 3. **witness check** — candidates, deduplicated across all paths,
///    are confirmed with the (path-independent) taint walk or
///    feeding-load check, each computed once per distinct address.
///
/// The work budget is **path-granular**: it is checked before each path
/// and charged with the path's full cost after it, so per-path results
/// are pure functions of the path and the merged outcome is identical
/// for any job count.
pub fn analyze_function(
    module: &Module,
    fname: &str,
    engine: HauntedEngine,
    config: HauntedConfig,
) -> HauntedReport {
    let start = Instant::now();
    let acfg = match build_acfg(module, fname) {
        Ok(a) => a,
        Err(e) => {
            let mut r = degraded_report(fname, format!("malformed IR: {e}"));
            r.runtime = start.elapsed();
            return r;
        }
    };

    let mut paths = PathSet::new();
    let mut exhausted = false;
    {
        let _span = lcm_obs::span("bh_enumerate", "haunted");
        enumerate_paths(
            &acfg,
            acfg.entry(),
            &mut Vec::new(),
            &mut paths,
            config.max_paths,
            &mut exhausted,
        );
    }
    let t_enumerate = start.elapsed();

    let t1 = Instant::now();
    let mut budget: i64 = config.step_budget.max(1) as i64;
    let mut paths_explored = 0usize;
    let jobs = lcm_core::par::effective_jobs(config.jobs)
        .min(paths.len())
        .max(1);
    let mut pht_cands: HashSet<InstId> = HashSet::new();
    let mut stl_cands: HashSet<(InstId, InstId)> = HashSet::new();
    {
        let mut span = lcm_obs::span("bh_execute", "haunted");
        span.arg_u64("paths", paths.len() as u64);
        if jobs <= 1 {
            // Exact serial loop: shared scratch, early exit at the budget
            // cutoff without touching the remaining paths.
            let mut scratch = StlScratch::default();
            let mut pht_scratch = PhtScratch::default();
            let mut oracle = AddrOracle::new(&acfg);
            let mut out = Vec::new();
            for i in 0..paths.len() {
                if budget <= 0 {
                    exhausted = true; // the BH-style timeout: partial results
                    break;
                }
                out.clear();
                let cost = match engine {
                    HauntedEngine::Pht => {
                        pht_path_candidates(&acfg, paths.get(i), config, &mut pht_scratch, &mut out)
                    }
                    HauntedEngine::Stl => stl_path_candidates(
                        &acfg,
                        paths.get(i),
                        config,
                        &mut oracle,
                        &mut scratch,
                        &mut out,
                    ),
                };
                budget -= cost as i64;
                paths_explored += 1;
                merge_candidates(engine, &out, &mut pht_cands, &mut stl_cands);
            }
        } else {
            // Intra-function split: each worker owns one oracle/scratch
            // pair and drains path indices off the shared cursor; results
            // come back in path order, so the serial in-order merge below
            // reproduces the jobs = 1 candidate set and budget cutoff
            // exactly (computed-but-cut paths are discarded).
            let indices: Vec<usize> = (0..paths.len()).collect();
            work_units().add(indices.len() as u64);
            let per_path = lcm_core::par::map_indexed_with(
                &indices,
                jobs,
                || {
                    (
                        AddrOracle::new(&acfg),
                        StlScratch::default(),
                        PhtScratch::default(),
                    )
                },
                |(oracle, scratch, pht_scratch), _, &i| {
                    let mut out = Vec::new();
                    let cost = match engine {
                        HauntedEngine::Pht => {
                            pht_path_candidates(&acfg, paths.get(i), config, pht_scratch, &mut out)
                        }
                        HauntedEngine::Stl => stl_path_candidates(
                            &acfg,
                            paths.get(i),
                            config,
                            oracle,
                            scratch,
                            &mut out,
                        ),
                    };
                    (cost, out)
                },
            );
            for (cost, out) in &per_path {
                if budget <= 0 {
                    exhausted = true;
                    break;
                }
                budget -= *cost as i64;
                paths_explored += 1;
                merge_candidates(engine, out, &mut pht_cands, &mut stl_cands);
            }
        }
    }
    let t_execute = t1.elapsed();

    let t2 = Instant::now();
    let leaks = {
        let _span = lcm_obs::span("bh_witness", "haunted");
        match engine {
            HauntedEngine::Pht => pht_witness(&acfg, fname, &pht_cands),
            HauntedEngine::Stl => stl_witness(&acfg, fname, &stl_cands),
        }
    };
    let t_witness = t2.elapsed();

    HauntedReport {
        name: fname.to_string(),
        leaks,
        paths_explored,
        exhausted,
        runtime: start.elapsed(),
        t_enumerate,
        t_execute,
        t_witness,
        degraded: None,
    }
}

/// Enumerated paths in one flat arena: `blocks[starts[i]..starts[i+1]]`
/// is path `i`. Replaces the per-path `Vec<BlockId>` clones that
/// dominated enumeration-phase allocation.
#[derive(Debug)]
struct PathSet {
    starts: Vec<u32>,
    blocks: Vec<BlockId>,
}

impl PathSet {
    fn new() -> PathSet {
        PathSet {
            starts: vec![0],
            blocks: Vec::new(),
        }
    }

    fn push(&mut self, path: &[BlockId]) {
        self.blocks.extend_from_slice(path);
        self.starts.push(self.blocks.len() as u32);
    }

    fn len(&self) -> usize {
        self.starts.len() - 1
    }

    fn get(&self, i: usize) -> &[BlockId] {
        &self.blocks[self.starts[i] as usize..self.starts[i + 1] as usize]
    }
}

/// Enumerates architectural block paths through the (acyclic) A-CFG.
fn enumerate_paths(
    f: &Function,
    b: BlockId,
    cur: &mut Vec<BlockId>,
    out: &mut PathSet,
    cap: usize,
    exhausted: &mut bool,
) {
    if out.len() >= cap {
        *exhausted = true;
        return;
    }
    cur.push(b);
    match &f.blocks[b.0 as usize].term {
        Terminator::Ret(_) => out.push(cur),
        Terminator::Br(t) => enumerate_paths(f, *t, cur, out, cap, exhausted),
        Terminator::CondBr {
            then_bb, else_bb, ..
        } => {
            enumerate_paths(f, *then_bb, cur, out, cap, exhausted);
            enumerate_paths(f, *else_bb, cur, out, cap, exhausted);
        }
    }
    cur.pop();
}

/// A per-path candidate: an instruction that *may* leak, pending the
/// witness check. For PHT the transiently reached access; for STL the
/// `(bypassing load, later access)` pair.
#[derive(Debug, Clone, Copy)]
enum Candidate {
    Pht(InstId),
    Stl(InstId, InstId),
}

fn merge_candidates(
    engine: HauntedEngine,
    out: &[Candidate],
    pht: &mut HashSet<InstId>,
    stl: &mut HashSet<(InstId, InstId)>,
) {
    match engine {
        HauntedEngine::Pht => pht.extend(out.iter().map(|c| match c {
            Candidate::Pht(i) => *i,
            Candidate::Stl(..) => unreachable!("STL candidate from PHT path"),
        })),
        HauntedEngine::Stl => stl.extend(out.iter().map(|c| match c {
            Candidate::Stl(l, t) => (*l, *t),
            Candidate::Pht(_) => unreachable!("PHT candidate from STL path"),
        })),
    }
}

/// Reusable per-worker scratch for the PHT path walk: an epoch-stamped
/// seen-array so each distinct instruction is emitted as a candidate at
/// most once per path. The transient windows of neighbouring branch
/// sites overlap heavily, so without the dedup the hot loop pushes (and
/// the merge re-hashes) the same few hundred instructions millions of
/// times per exhausted function.
#[derive(Debug, Default)]
struct PhtScratch {
    epoch: u32,
    seen: Vec<u32>,
}

/// PHT relational execution over one path: at each conditional branch,
/// fork transient sub-paths down the other side and record every
/// transient memory access as a candidate (first visit only; the
/// candidate set is a set). Returns the path's work cost (instruction
/// visits). Pure in `(f, path, config)` — the taint check is deferred
/// to the witness phase.
fn pht_path_candidates(
    f: &Function,
    path: &[BlockId],
    config: HauntedConfig,
    scratch: &mut PhtScratch,
    out: &mut Vec<Candidate>,
) -> u64 {
    scratch.seen.resize(f.insts.len(), 0);
    scratch.epoch = scratch.epoch.wrapping_add(1);
    if scratch.epoch == 0 {
        // Wrapped: stale stamps could collide with the new epoch.
        scratch.seen.fill(0);
        scratch.epoch = 1;
    }
    let epoch = scratch.epoch;
    let mut cost = 0u64;
    for (i, &b) in path.iter().enumerate() {
        let Terminator::CondBr {
            then_bb, else_bb, ..
        } = &f.blocks[b.0 as usize].term
        else {
            continue;
        };
        let arch_next = path.get(i + 1).copied();
        let wrong = if arch_next == Some(*then_bb) {
            *else_bb
        } else {
            *then_bb
        };
        // Explore every transient sub-path from the wrong successor.
        let mut stack: Vec<(BlockId, usize)> = vec![(wrong, 0)];
        let mut fork_guard = 0usize;
        while let Some((blk, depth)) = stack.pop() {
            fork_guard += 1;
            if fork_guard > 4096 {
                break;
            }
            let mut d = depth;
            let mut stop = false;
            for &iid in &f.blocks[blk.0 as usize].insts {
                cost += 1;
                if d >= config.rob {
                    stop = true;
                    break;
                }
                match f.inst(iid) {
                    Inst::Fence => {
                        stop = true;
                        break;
                    }
                    Inst::Load { .. } | Inst::Store { .. } => {
                        d += 1;
                        let s = &mut scratch.seen[iid.0 as usize];
                        if *s != epoch {
                            *s = epoch;
                            out.push(Candidate::Pht(iid));
                        }
                    }
                    Inst::Havoc { .. } => {
                        d += 1;
                    }
                    _ => {}
                }
            }
            if !stop && d < config.rob {
                for s in f.blocks[blk.0 as usize].term.successors() {
                    stack.push((s, d));
                }
            }
        }
    }
    cost
}

/// Reusable per-worker scratch for the STL path walk: the path's memory
/// instructions and a fence prefix-count alongside (so "is there a
/// fence between positions i and j" is two array reads, not a scan).
#[derive(Debug, Default)]
struct StlScratch {
    insts: Vec<InstId>,
    fences: Vec<u32>,
}

impl StlScratch {
    fn fill(&mut self, f: &Function, path: &[BlockId]) {
        self.insts.clear();
        self.fences.clear();
        self.fences.push(0);
        let mut fences = 0u32;
        for &b in path {
            for &i in &f.blocks[b.0 as usize].insts {
                if matches!(
                    f.inst(i),
                    Inst::Load { .. } | Inst::Store { .. } | Inst::Havoc { .. } | Inst::Fence
                ) {
                    if matches!(f.inst(i), Inst::Fence) {
                        fences += 1;
                    }
                    self.insts.push(i);
                    self.fences.push(fences);
                }
            }
        }
    }
}

/// STL relational execution over one path: each load may bypass each
/// older aliasing store within the store-queue window; record the
/// `(load, later access)` pairs the stale value could reach. Returns
/// the path's work cost. The feeding-load confirmation is deferred to
/// the witness phase, where each distinct pair is checked once.
fn stl_path_candidates(
    f: &Function,
    path: &[BlockId],
    config: HauntedConfig,
    oracle: &mut AddrOracle<'_>,
    scratch: &mut StlScratch,
    out: &mut Vec<Candidate>,
) -> u64 {
    scratch.fill(f, path);
    let insts = &scratch.insts;
    let fences = &scratch.fences;
    let mut cost = 0u64;
    for (li, &l) in insts.iter().enumerate() {
        cost += 1;
        let Inst::Load { addr: laddr, .. } = f.inst(l) else {
            continue;
        };
        let la = oracle.addr(*laddr);
        // Enumerate older stores within the LSQ window (the per-path
        // product that dominates bh-stl's runtime).
        let mut bypassed = false;
        for si in li.saturating_sub(config.lsq)..li {
            cost += 1;
            let Inst::Store { addr: saddr, .. } = f.inst(insts[si]) else {
                continue;
            };
            let sa = oracle.addr(*saddr);
            if lcm_aeg::addr::alias(la, sa) == lcm_aeg::addr::AliasResult::No {
                continue;
            }
            // Fence between store and load on this path kills the bypass.
            if fences[li] > fences[si] {
                continue;
            }
            // Charge the stale-value scan per bypassing store, as the
            // serial checker always did, but emit each (load, target)
            // pair once — the candidate set is store-independent.
            cost += insts.len().saturating_sub(li + 1) as u64;
            if !bypassed {
                bypassed = true;
                for &t in &insts[li + 1..] {
                    if matches!(f.inst(t), Inst::Load { .. } | Inst::Store { .. }) {
                        out.push(Candidate::Stl(l, t));
                    }
                }
            }
        }
    }
    cost
}

/// PHT witness check: a candidate leaks iff its address is attacker
/// controlled — a pure function of the address value, computed once per
/// distinct address across every path's candidates.
fn pht_witness(f: &Function, fname: &str, cands: &HashSet<InstId>) -> Vec<HauntedLeak> {
    let mut taint: HashMap<u32, bool> = HashMap::new();
    let mut leaking: Vec<InstId> = Vec::new();
    for &iid in cands {
        let addr = match f.inst(iid) {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } => *addr,
            _ => continue,
        };
        let tainted = *taint
            .entry(addr.0)
            .or_insert_with(|| attacker_controlled(f, addr));
        if tainted {
            leaking.push(iid);
        }
    }
    finish_leaks(fname, leaking, SpeculationPrimitive::ConditionalBranch)
}

/// STL witness check: a `(load, target)` candidate leaks at the target
/// iff the load's stale value feeds the target's address — the
/// feeding-load set is computed once per distinct address.
fn stl_witness(f: &Function, fname: &str, cands: &HashSet<(InstId, InstId)>) -> Vec<HauntedLeak> {
    let mut feeds: HashMap<u32, Vec<(InstId, bool)>> = HashMap::new();
    let mut leaking: Vec<InstId> = Vec::new();
    for &(l, t) in cands {
        let taddr = match f.inst(t) {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } => *addr,
            _ => continue,
        };
        let hit = feeds
            .entry(taddr.0)
            .or_insert_with(|| lcm_aeg::addr::feeding_loads(f, taddr))
            .iter()
            .any(|&(ld, _)| ld == l);
        if hit {
            leaking.push(t);
        }
    }
    finish_leaks(fname, leaking, SpeculationPrimitive::StoreForwarding)
}

/// Sorted, deduplicated leak list; the function name is allocated once
/// per confirmed leak instead of once per raw candidate.
fn finish_leaks(
    fname: &str,
    mut leaking: Vec<InstId>,
    primitive: SpeculationPrimitive,
) -> Vec<HauntedLeak> {
    leaking.sort_unstable();
    leaking.dedup();
    leaking
        .into_iter()
        .map(|inst| HauntedLeak {
            function: fname.to_string(),
            inst,
            primitive,
        })
        .collect()
}

fn work_units() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::WORK_UNITS,
            "Intra-function work units scheduled on the parallel pool",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, engine: HauntedEngine) -> HauntedModuleReport {
        let m = lcm_minic::compile(src).unwrap();
        analyze_module(&m, engine, HauntedConfig::default())
    }

    const SPECTRE_V1: &str = r#"
        int A[16]; int B[256]; int size_A; int tmp;
        void victim(int y) {
            if (y < size_A) {
                tmp &= B[A[y]];
            }
        }"#;

    #[test]
    fn finds_spectre_v1() {
        let r = run(SPECTRE_V1, HauntedEngine::Pht);
        assert!(r.total_leaks() >= 1);
        assert_eq!(
            r.functions[0].leaks[0].primitive,
            SpeculationPrimitive::ConditionalBranch
        );
    }

    #[test]
    fn finds_stl_bypass() {
        let src = r#"
            int pub_ary[256]; int sec[16]; int tmp;
            void case_1(int idx) {
                int ridx = idx & 15;
                sec[ridx] = 0;
                tmp &= pub_ary[sec[ridx]];
            }"#;
        let r = run(src, HauntedEngine::Stl);
        assert!(r.total_leaks() >= 1);
    }

    #[test]
    fn clean_function_reports_nothing() {
        let src = "int A[4]; int t; void f() { t = A[0]; }";
        assert_eq!(run(src, HauntedEngine::Pht).total_leaks(), 0);
        assert_eq!(run(src, HauntedEngine::Stl).total_leaks(), 0);
    }

    #[test]
    fn fence_suppresses_both_engines() {
        let pht_src = r#"
            int A[16]; int B[256]; int size_A; int tmp;
            void victim(int y) { if (y < size_A) { lfence(); tmp &= B[A[y]]; } }"#;
        assert_eq!(run(pht_src, HauntedEngine::Pht).total_leaks(), 0);
        // `register` keeps idx/ridx out of memory so the only bypass pair
        // is the sec store/load across the fence.
        let stl_src = r#"
            int pub_ary[256]; int sec[16]; int tmp;
            void case_1(register int idx) {
                register int ridx = idx & 15;
                sec[ridx] = 0;
                lfence();
                tmp &= pub_ary[sec[ridx]];
            }"#;
        assert_eq!(run(stl_src, HauntedEngine::Stl).total_leaks(), 0);
    }

    #[test]
    fn path_count_grows_exponentially() {
        // 4 sequential ifs: 16 paths — the baseline's scaling burden.
        let src = r#"
            int G;
            void f(int a, int b, int c, int d) {
                if (a) { G = 1; }
                if (b) { G = 2; }
                if (c) { G = 3; }
                if (d) { G = 4; }
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let r = analyze_function(&m, "f", HauntedEngine::Pht, HauntedConfig::default());
        assert_eq!(r.paths_explored, 16);
    }

    #[test]
    fn path_cap_marks_exhaustion() {
        let src = r#"
            int G;
            void f(int a, int b, int c) {
                if (a) { G = 1; }
                if (b) { G = 2; }
                if (c) { G = 3; }
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let r = analyze_function(
            &m,
            "f",
            HauntedEngine::Pht,
            HauntedConfig {
                max_paths: 4,
                ..HauntedConfig::default()
            },
        );
        assert!(r.exhausted);
        assert_eq!(r.paths_explored, 4);
    }

    #[test]
    fn no_taxonomy_in_output() {
        // Structural: HauntedLeak has no class field; this test documents
        // the qualitative limitation (§6: "BH does not distinguish...").
        let r = run(SPECTRE_V1, HauntedEngine::Pht);
        let l = &r.functions[0].leaks[0];
        let _: &HauntedLeak = l;
    }
}
