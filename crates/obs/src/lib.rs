//! Observability for the LCM pipeline: spans and metrics, zero deps.
//!
//! This crate sits *below* `lcm-core` in the dependency graph — it uses
//! nothing but `std`, so every other crate (including `lcm-core`'s
//! governor and parallel driver) can report through it without cycles.
//!
//! Two halves:
//!
//! * [`trace`] — a span tracer. Code brackets a region with
//!   [`span`]; when tracing is enabled the begin/end pair lands in a
//!   per-thread buffer and [`trace::export_chrome_trace`] renders the
//!   whole process history as Chrome `trace_event` JSON that
//!   `chrome://tracing` and Perfetto load directly. When tracing is
//!   *disabled* (the default) a span costs one relaxed atomic load —
//!   the same discipline as the resource governor's poll, bounded well
//!   under the 2% overhead budget.
//!
//! * [`metrics`] — a registry of named counters, gauges, and
//!   log-scaled-bucket histograms, always on (each update is a handful
//!   of relaxed atomic adds). One registry per process
//!   ([`metrics::global`]) absorbs the pipeline's scattered tallies —
//!   SAT query counts, cache hit/miss traffic, governor trips, worker
//!   panics — and renders them as Prometheus text exposition (for the
//!   daemon's `{"cmd":"metrics"}` request) or a JSON block (for bench
//!   output).
//!
//! Neither half ever changes an analysis result: instrumentation only
//! observes. The tier-1 differential test byte-compares rendered
//! reports with tracing on vs. off to hold that line.

pub mod metrics;
pub mod trace;

pub use trace::{span, Span};
