//! Named counters, gauges, and histograms with Prometheus / JSON
//! exposition.
//!
//! Metrics are always on: an update is a handful of relaxed atomic
//! adds, cheap enough for every hot path in the pipeline (the most
//! frequent observer, the SAT solve-latency histogram, sits next to an
//! actual solver call). Registration is get-or-create by name, so
//! independent subsystems can share a metric without coordination;
//! hot call sites should cache the returned handle (it is an `Arc`)
//! in a `OnceLock` rather than re-resolving the name.
//!
//! Naming follows Prometheus conventions: `lcm_` prefix, `_total`
//! suffix on counters, `_seconds` on time histograms. The well-known
//! names the pipeline registers live in [`names`] — one place to look
//! when grepping a scrape.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Well-known metric names registered by the pipeline.
pub mod names {
    /// SAT queries that reached screen/memo/solver (`FeasStats::queries`).
    pub const SAT_QUERIES: &str = "lcm_sat_queries_total";
    /// Queries answered by the assumption-trie memo.
    pub const SAT_MEMO_HITS: &str = "lcm_sat_memo_hits_total";
    /// Queries avoided entirely by the reachability pre-screen.
    pub const SAT_QUERIES_AVOIDED: &str = "lcm_sat_queries_avoided_total";
    /// Candidate pairs dismissed by the block-reachability prefilter.
    pub const SAT_PREFILTER_HITS: &str = "lcm_sat_prefilter_hits_total";
    /// Wall-clock latency of actual solver calls.
    pub const SOLVE_LATENCY: &str = "lcm_solve_latency_seconds";
    /// Function results served from the store.
    pub const CACHE_HITS: &str = "lcm_cache_hits_total";
    /// Function results analyzed and inserted.
    pub const CACHE_MISSES: &str = "lcm_cache_misses_total";
    /// Function results that skipped the store (degraded/uncacheable).
    pub const CACHE_BYPASS: &str = "lcm_cache_bypass_total";
    /// Resource-governor budget trips (timeouts, conflict/node/edge).
    pub const GOVERNOR_TRIPS: &str = "lcm_governor_trips_total";
    /// Worker panics caught and degraded by the parallel driver.
    pub const WORKER_PANICS: &str = "lcm_worker_panics_total";
    /// Intra-function work units scheduled on the parallel pool
    /// (engine candidate splits and haunted path splits).
    pub const WORK_UNITS: &str = "lcm_work_units_total";
    /// Solver calls served by an already-warm persistent solver.
    pub const SOLVER_REUSES: &str = "lcm_solver_reuses_total";
    /// Learnt clauses retained across queries by persistent solvers.
    pub const SAT_CLAUSES_RETAINED: &str = "lcm_sat_clauses_retained_total";
    /// Daemon connections accepted.
    pub const SERVE_REQUESTS: &str = "lcm_serve_requests_total";
    /// Daemon analyze requests completed, by engine.
    pub const SERVE_ANALYSES_PHT: &str = "lcm_serve_analyses_pht_total";
    /// Daemon analyze requests completed, by engine.
    pub const SERVE_ANALYSES_STL: &str = "lcm_serve_analyses_stl_total";
    /// Daemon analyze requests completed, by engine.
    pub const SERVE_ANALYSES_PSF: &str = "lcm_serve_analyses_psf_total";
    /// Time a queued daemon connection waited for a worker.
    pub const SERVE_QUEUE_WAIT: &str = "lcm_serve_queue_wait_seconds";
    /// v2 protocol frames received by the daemon.
    pub const SERVE_FRAMES: &str = "lcm_serve_frames_total";
    /// Programs submitted inside batched analyze frames.
    pub const SERVE_BATCH_ITEMS: &str = "lcm_serve_batch_items_total";
    /// Frames shed with a `busy` reply (in-flight queue full).
    pub const SERVE_BUSY: &str = "lcm_serve_busy_total";
    /// Enqueue-to-reply latency of daemon analyze frames.
    pub const SERVE_REQUEST_LATENCY: &str = "lcm_serve_request_latency_seconds";
    /// Client-observed request latency recorded by the `loadgen` bench.
    pub const LOADGEN_LATENCY: &str = "lcm_loadgen_latency_seconds";
    /// Programs generated and analyzed by the differential fuzz harness.
    pub const FUZZ_PROGRAMS: &str = "lcm_fuzz_programs_total";
    /// Engine-vs-oracle disagreements found by the fuzz harness.
    pub const FUZZ_MISMATCHES: &str = "lcm_fuzz_mismatches_total";
    /// Candidate executions built by the litmus enumerator.
    pub const ENUM_EXECUTIONS: &str = "lcm_enum_executions_total";
    /// Candidate choice vectors skipped as non-canonical under the
    /// program's symmetry group (location/thread renaming).
    pub const ENUM_SYMMETRY_PRUNED: &str = "lcm_enum_symmetry_pruned_total";
    /// Worker-slot restarts performed by the fleet supervisor.
    pub const FLEET_RESTARTS: &str = "lcm_fleet_restarts_total";
    /// Tasks an idle worker stole from a peer slot's queue.
    pub const FLEET_STEALS: &str = "lcm_fleet_steals_total";
    /// Tasks redelivered to a surviving queue after a worker failure.
    pub const FLEET_REDELIVERIES: &str = "lcm_fleet_redeliveries_total";
    /// Worker incarnations killed by the supervisor. Registered per
    /// reason via [`super::labeled`], e.g.
    /// `lcm_fleet_kills_total{reason="crash"}`.
    pub const FLEET_KILLS: &str = "lcm_fleet_kills_total";
}

/// Builds a single-label series name — `name{key="value"}` — usable as
/// a registry key. [`MetricsRegistry::render_prometheus`] emits one
/// `# HELP`/`# TYPE` preamble per base name, so labeled siblings
/// (adjacent in the sorted registry) render as one metric family.
/// Convention: label counters and gauges only; histogram series
/// already append `_bucket{le=…}` suffixes that do not compose with a
/// labeled base.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive), ascending; an implicit `+Inf` bucket
    /// follows the last.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; `len() == bounds.len() + 1`.
    buckets: Vec<AtomicU64>,
    /// Sum of observations, in nanoseconds-as-integer (no atomic f64
    /// in std; overflows after ~584 years of accumulated latency).
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

/// A histogram with fixed (typically log-scaled) buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one duration observation.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_secs(d.as_secs_f64());
    }

    /// Records one observation, in seconds.
    pub fn observe_secs(&self, v: f64) {
        let i = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0
            .sum_nanos
            .fetch_add((v * 1e9) as u64, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// A point-in-time copy of the buckets, for quantile estimation and
    /// reporting (the bench harness reads percentiles from this).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_secs: self.sum_secs(),
            count: self.count(),
        }
    }

    /// Estimated `q`-quantile in seconds (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a histogram: bucket bounds, per-bucket
/// (non-cumulative) counts (`counts.len() == bounds.len() + 1`, the
/// last being the `+Inf` overflow bucket), total sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; one longer than `bounds`.
    pub counts: Vec<u64>,
    /// Sum of all observations, in seconds.
    pub sum_secs: f64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) in seconds by linear
    /// interpolation inside the bucket holding the target rank — the
    /// same estimator `histogram_quantile()` applies to a Prometheus
    /// scrape, so numbers quoted from here match dashboards built on
    /// the exposition. Observations in the `+Inf` overflow bucket clamp
    /// to the highest finite bound. Returns `None` when the histogram
    /// is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let below = cumulative as f64;
            cumulative += c;
            if (cumulative as f64) < rank || c == 0 {
                continue;
            }
            // Rank falls in bucket `i`.
            let Some(&upper) = self.bounds.get(i) else {
                // +Inf bucket: the best we can say is "at least the
                // largest finite bound".
                return self.bounds.last().copied();
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let frac = ((rank - below) / c as f64).clamp(0.0, 1.0);
            return Some(lower + (upper - lower) * frac);
        }
        self.bounds.last().copied()
    }
}

/// `count` log-scaled bucket bounds: `start, start·factor, …`.
pub fn exp_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    (0..count).map(|i| start * factor.powi(i as i32)).collect()
}

/// The default latency scale: 1 µs to ~4.2 s in ×4 steps (12 buckets
/// plus the implicit `+Inf`). Wide enough for screen-avoided queries
/// and governed solver timeouts alike.
pub fn latency_buckets() -> Vec<f64> {
    exp_buckets(1e-6, 4.0, 12)
}

/// A point-in-time value of one metric, detached from any registry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's buckets, sum, and count.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a whole registry: `(name, help, value)`
/// triples in name order.
///
/// This is the unit of cross-process metrics aggregation: a worker
/// snapshots its registry around each task, ships
/// [`MetricsSnapshot::delta_since`] the previous snapshot over the
/// wire, and the supervisor folds the delta into its own registry with
/// [`MetricsRegistry::merge_delta`] — counters add, histograms merge
/// bucket-wise, so fleet-wide totals read exactly like in-process ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, help, value)`, ascending by name.
    pub metrics: Vec<(String, String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The additive change from `prev` (an earlier snapshot of the
    /// same registry) to `self`: counters subtract, histograms
    /// subtract per bucket. Zero entries are dropped, so an idle
    /// interval yields an empty delta. Gauges are point-in-time, not
    /// additive — they never appear in a delta and stay process-local.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let before: BTreeMap<&str, &MetricValue> = prev
            .metrics
            .iter()
            .map(|(n, _, v)| (n.as_str(), v))
            .collect();
        let mut metrics = Vec::new();
        for (name, help, value) in &self.metrics {
            let prev_v = before.get(name.as_str());
            let d = match (value, prev_v) {
                (MetricValue::Counter(cur), Some(MetricValue::Counter(p))) => {
                    let d = cur.saturating_sub(*p);
                    if d == 0 {
                        continue;
                    }
                    MetricValue::Counter(d)
                }
                (MetricValue::Counter(cur), _) => {
                    if *cur == 0 {
                        continue;
                    }
                    MetricValue::Counter(*cur)
                }
                (MetricValue::Histogram(cur), prev_v) => {
                    let mut h = cur.clone();
                    if let Some(MetricValue::Histogram(p)) = prev_v {
                        if p.bounds == h.bounds {
                            for (c, pc) in h.counts.iter_mut().zip(&p.counts) {
                                *c = c.saturating_sub(*pc);
                            }
                            h.count = h.count.saturating_sub(p.count);
                            h.sum_secs = (h.sum_secs - p.sum_secs).max(0.0);
                        }
                    }
                    if h.count == 0 {
                        continue;
                    }
                    MetricValue::Histogram(h)
                }
                (MetricValue::Gauge(_), _) => continue,
            };
            metrics.push((name.clone(), help.clone(), d));
        }
        MetricsSnapshot { metrics }
    }
}

#[derive(Debug)]
enum Metric {
    Counter { help: String, handle: Counter },
    Gauge { help: String, handle: Gauge },
    Histogram { help: String, handle: Histogram },
}

/// A set of named metrics. One per process in practice ([`global`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Gets or registers a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        let m = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter {
                help: help.to_string(),
                handle: Counter(Arc::new(AtomicU64::new(0))),
            });
        match m {
            Metric::Counter { handle, .. } => handle.clone(),
            _ => panic!("metric `{name}` already registered as a non-counter"),
        }
    }

    /// Gets or registers a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        let m = inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge {
                help: help.to_string(),
                handle: Gauge(Arc::new(AtomicI64::new(0))),
            });
        match m {
            Metric::Gauge { handle, .. } => handle.clone(),
            _ => panic!("metric `{name}` already registered as a non-gauge"),
        }
    }

    /// Gets or registers a histogram. `bounds` are inclusive upper
    /// bounds in ascending order; a `+Inf` bucket is implicit. The
    /// bounds of an already-registered histogram win.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn histogram(&self, name: &str, help: &str, bounds: Vec<f64>) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        let m = inner.entry(name.to_string()).or_insert_with(|| {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Metric::Histogram {
                help: help.to_string(),
                handle: Histogram(Arc::new(HistogramInner {
                    bounds,
                    buckets,
                    sum_nanos: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })),
            }
        });
        match m {
            Metric::Histogram { handle, .. } => handle.clone(),
            _ => panic!("metric `{name}` already registered as a non-histogram"),
        }
    }

    /// A point-in-time copy of every registered metric, for shipping
    /// across a process boundary (see [`MetricsSnapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            metrics: inner
                .iter()
                .map(|(name, m)| match m {
                    Metric::Counter { help, handle } => (
                        name.clone(),
                        help.clone(),
                        MetricValue::Counter(handle.get()),
                    ),
                    Metric::Gauge { help, handle } => {
                        (name.clone(), help.clone(), MetricValue::Gauge(handle.get()))
                    }
                    Metric::Histogram { help, handle } => (
                        name.clone(),
                        help.clone(),
                        MetricValue::Histogram(handle.snapshot()),
                    ),
                })
                .collect(),
        }
    }

    /// Folds a foreign delta into this registry: counters and gauges
    /// add, histograms add per bucket. Metrics not yet registered here
    /// are created with the shipped help text. A histogram delta whose
    /// bounds disagree with the already-registered histogram is
    /// dropped rather than mis-bucketed (in practice every process
    /// buckets latencies with [`latency_buckets`], so bounds agree).
    pub fn merge_delta(&self, delta: &MetricsSnapshot) {
        for (name, help, value) in &delta.metrics {
            match value {
                MetricValue::Counter(n) => self.counter(name, help).add(*n),
                MetricValue::Gauge(v) => self.gauge(name, help).add(*v),
                MetricValue::Histogram(h) => {
                    let handle = self.histogram(name, help, h.bounds.clone());
                    if handle.0.bounds != h.bounds || h.counts.len() != handle.0.buckets.len() {
                        continue;
                    }
                    for (i, c) in h.counts.iter().enumerate() {
                        handle.0.buckets[i].fetch_add(*c, Ordering::Relaxed);
                    }
                    handle
                        .0
                        .sum_nanos
                        .fetch_add((h.sum_secs * 1e9) as u64, Ordering::Relaxed);
                    handle.0.count.fetch_add(h.count, Ordering::Relaxed);
                }
            }
        }
    }

    /// Renders the registry as Prometheus text exposition (version
    /// 0.0.4): `# HELP` / `# TYPE` preambles, `_bucket{le="…"}` /
    /// `_sum` / `_count` series for histograms. Names sort
    /// lexicographically (the registry is a `BTreeMap`), so output is
    /// deterministic. Labeled series built with [`labeled`] sort
    /// adjacent to their siblings and share one preamble per base
    /// name.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, m) in inner.iter() {
            let base = name.split('{').next().unwrap_or(name).to_string();
            let preamble = last_base.as_deref() != Some(base.as_str());
            last_base = Some(base.clone());
            match m {
                Metric::Counter { help, handle } => {
                    if preamble {
                        out.push_str(&format!("# HELP {base} {help}\n"));
                        out.push_str(&format!("# TYPE {base} counter\n"));
                    }
                    out.push_str(&format!("{name} {}\n", handle.get()));
                }
                Metric::Gauge { help, handle } => {
                    if preamble {
                        out.push_str(&format!("# HELP {base} {help}\n"));
                        out.push_str(&format!("# TYPE {base} gauge\n"));
                    }
                    out.push_str(&format!("{name} {}\n", handle.get()));
                }
                Metric::Histogram { help, handle } => {
                    out.push_str(&format!("# HELP {name} {help}\n"));
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, b) in handle.0.bounds.iter().enumerate() {
                        cumulative += handle.0.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cumulative}\n"));
                    }
                    cumulative += handle.0.buckets[handle.0.bounds.len()].load(Ordering::Relaxed);
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    out.push_str(&format!("{name}_sum {}\n", handle.sum_secs()));
                    out.push_str(&format!("{name}_count {}\n", handle.count()));
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object keyed by metric name.
    /// Counters and gauges map to numbers; histograms to
    /// `{"buckets": [{"le": …, "count": …}, …], "sum": …, "count": …}`
    /// with per-bucket (non-cumulative) counts and `"le": "+Inf"` for
    /// the overflow bucket.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{");
        for (i, (name, m)) in inner.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Labeled names carry quotes; escape so the key stays a
            // valid JSON string.
            crate::trace::esc_into(&mut out, name);
            out.push(':');
            match m {
                Metric::Counter { handle, .. } => out.push_str(&handle.get().to_string()),
                Metric::Gauge { handle, .. } => out.push_str(&handle.get().to_string()),
                Metric::Histogram { handle, .. } => {
                    out.push_str("{\"buckets\":[");
                    for (j, b) in handle.0.bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let c = handle.0.buckets[j].load(Ordering::Relaxed);
                        out.push_str(&format!("{{\"le\":{b},\"count\":{c}}}"));
                    }
                    let c = handle.0.buckets[handle.0.bounds.len()].load(Ordering::Relaxed);
                    if !handle.0.bounds.is_empty() {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"le\":\"+Inf\",\"count\":{c}}}"));
                    out.push_str(&format!(
                        "],\"sum\":{},\"count\":{}}}",
                        handle.sum_secs(),
                        handle.count()
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// The process-wide registry every subsystem reports into.
pub fn global() -> &'static MetricsRegistry {
    static G: OnceLock<MetricsRegistry> = OnceLock::new();
    G.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let r = MetricsRegistry::new();
        let c1 = r.counter("lcm_test_total", "a test counter");
        let c2 = r.counter("lcm_test_total", "ignored duplicate help");
        c1.inc();
        c2.add(4);
        assert_eq!(c1.get(), 5);
        let g = r.gauge("lcm_depth", "a depth");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.gauge("lcm_x", "");
        r.counter("lcm_x", "");
    }

    #[test]
    fn histogram_buckets_and_sums() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lcm_lat_seconds", "latency", vec![0.001, 0.01, 0.1]);
        h.observe_secs(0.0005); // bucket 0
        h.observe_secs(0.05); // bucket 2
        h.observe_secs(5.0); // +Inf
        h.observe(Duration::from_millis(2)); // bucket 1
        assert_eq!(h.count(), 4);
        assert!((h.sum_secs() - 5.0525).abs() < 1e-6);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lcm_lat_seconds histogram"));
        assert!(text.contains("lcm_lat_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("lcm_lat_seconds_bucket{le=\"0.01\"} 2"));
        assert!(text.contains("lcm_lat_seconds_bucket{le=\"0.1\"} 3"));
        assert!(text.contains("lcm_lat_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lcm_lat_seconds_count 4"));
    }

    #[test]
    fn json_render_is_valid_and_ordered() {
        let r = MetricsRegistry::new();
        r.counter("lcm_b_total", "").add(2);
        r.counter("lcm_a_total", "").add(1);
        let h = r.histogram("lcm_h_seconds", "", vec![1.0]);
        h.observe_secs(0.5);
        let json = r.render_json();
        // BTreeMap order: a before b before h.
        let a = json.find("lcm_a_total").unwrap();
        let b = json.find("lcm_b_total").unwrap();
        assert!(a < b);
        assert!(json.contains("\"lcm_a_total\":1"));
        assert!(json.contains("{\"le\":1,\"count\":1}"));
        assert!(json.contains("{\"le\":\"+Inf\",\"count\":0}"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lcm_q_seconds", "", vec![0.1, 0.2, 0.4]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 10 observations spread 4 / 4 / 2 across the finite buckets.
        for _ in 0..4 {
            h.observe_secs(0.05);
        }
        for _ in 0..4 {
            h.observe_secs(0.15);
        }
        for _ in 0..2 {
            h.observe_secs(0.3);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![4, 4, 2, 0]);
        assert_eq!(snap.count, 10);
        // Rank 5 is the 1st of 4 observations in (0.1, 0.2]:
        // 0.1 + 0.1·(1/4) = 0.125.
        assert!((snap.quantile(0.5).unwrap() - 0.125).abs() < 1e-9);
        // Rank 10 is the 2nd of 2 in (0.2, 0.4]: 0.2 + 0.2·(2/2) = 0.4.
        assert!((snap.quantile(1.0).unwrap() - 0.4).abs() < 1e-9);
        // Rank 2 is midway through the first bucket: 0.1·(2/4) = 0.05.
        assert!((snap.quantile(0.2).unwrap() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn quantile_clamps_overflow_to_last_finite_bound() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lcm_qo_seconds", "", vec![0.1, 1.0]);
        h.observe_secs(50.0); // +Inf bucket
        h.observe_secs(0.05);
        assert!((h.quantile(0.99).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_merge_folds_worker_metrics() {
        // "Worker" registry: some baseline activity, then a task.
        let w = MetricsRegistry::new();
        let c = w.counter("lcm_sat_queries_total", "queries");
        let h = w.histogram("lcm_solve_latency_seconds", "latency", vec![0.01, 0.1]);
        let g = w.gauge("lcm_depth", "depth");
        c.add(10);
        h.observe_secs(0.005);
        g.set(3);
        let before = w.snapshot();
        // Idle interval: empty delta.
        assert_eq!(w.snapshot().delta_since(&before).metrics.len(), 0);
        // The task: 7 more queries, 2 more observations.
        c.add(7);
        h.observe_secs(0.05);
        h.observe_secs(5.0); // +Inf bucket
        g.set(9);
        let delta = w.snapshot().delta_since(&before);
        // Gauges never ship; zero counters are dropped.
        assert_eq!(delta.metrics.len(), 2, "{delta:?}");
        assert_eq!(
            delta.metrics[0].2,
            MetricValue::Counter(7),
            "counter delta subtracts the baseline"
        );
        let MetricValue::Histogram(hd) = &delta.metrics[1].2 else {
            panic!("expected histogram delta: {delta:?}");
        };
        assert_eq!(hd.counts, vec![0, 1, 1]);
        assert_eq!(hd.count, 2);
        // "Supervisor" registry with its own prior counts.
        let s = MetricsRegistry::new();
        s.counter("lcm_sat_queries_total", "queries").add(100);
        s.merge_delta(&delta);
        assert_eq!(s.counter("lcm_sat_queries_total", "").get(), 107);
        let sh = s
            .histogram("lcm_solve_latency_seconds", "", vec![0.01, 0.1])
            .snapshot();
        assert_eq!(sh.counts, vec![0, 1, 1]);
        assert_eq!(sh.count, 2);
        assert!((sh.sum_secs - 5.05).abs() < 1e-6);
        // Merging the same delta again keeps adding (caller tracks
        // what was already shipped).
        s.merge_delta(&delta);
        assert_eq!(s.counter("lcm_sat_queries_total", "").get(), 114);
        // Mismatched bounds are dropped, not mis-bucketed.
        let t = MetricsRegistry::new();
        t.histogram("lcm_solve_latency_seconds", "", vec![1.0]);
        t.merge_delta(&delta);
        assert_eq!(
            t.histogram("lcm_solve_latency_seconds", "", vec![1.0])
                .count(),
            0
        );
    }

    #[test]
    fn labeled_series_share_one_prometheus_preamble() {
        let r = MetricsRegistry::new();
        r.counter(
            &labeled(names::FLEET_KILLS, "reason", "crash"),
            "workers killed",
        )
        .add(3);
        r.counter(
            &labeled(names::FLEET_KILLS, "reason", "deadline"),
            "workers killed",
        )
        .inc();
        r.counter(names::FLEET_RESTARTS, "restarts").inc();
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# HELP lcm_fleet_kills_total ").count(),
            1,
            "one preamble for the family: {text}"
        );
        assert_eq!(
            text.matches("# TYPE lcm_fleet_kills_total counter").count(),
            1
        );
        assert!(text.contains("lcm_fleet_kills_total{reason=\"crash\"} 3"));
        assert!(text.contains("lcm_fleet_kills_total{reason=\"deadline\"} 1"));
        assert!(text.contains("# HELP lcm_fleet_restarts_total restarts"));
        // JSON keys escape the embedded quotes and stay parseable.
        let json = r.render_json();
        assert!(json.contains("\"lcm_fleet_kills_total{reason=\\\"crash\\\"}\":3"));
    }

    #[test]
    fn exp_buckets_scale_geometrically() {
        let b = latency_buckets();
        assert_eq!(b.len(), 12);
        assert!((b[0] - 1e-6).abs() < 1e-12);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 4.0).abs() < 1e-9);
        }
    }
}
