//! Span tracing with Chrome `trace_event` export.
//!
//! # Model
//!
//! A [`Span`] brackets a region of one thread's execution. Creating a
//! span records a `"ph": "B"` (begin) event; dropping it records the
//! matching `"ph": "E"` (end). Events accumulate in per-thread buffers
//! (a `Mutex<Vec<_>>` owned by the recording thread — uncontended
//! except during export) and [`export_chrome_trace`] drains them all
//! into one `{"traceEvents": [...]}` document.
//!
//! # Invariants the export guarantees
//!
//! * **Balanced**: every `B` has a matching `E` on the same thread.
//!   Spans still open at export time get a synthesized `E` at the
//!   export timestamp; their guards notice (via an epoch counter) and
//!   skip the now-stale end on drop.
//! * **Per-thread monotone timestamps**: all timestamps come from one
//!   process-wide [`Instant`] base and each thread appends in order.
//! * **Properly nested**: guards are droppped in reverse creation
//!   order (Rust scoping), so `B`/`E` pairs nest like a call stack.
//!
//! # Cost when disabled
//!
//! [`span`] starts with a single relaxed atomic load and returns an
//! inert guard when no one has called [`enable`]. No allocation, no
//! clock read, no thread-local touch. Argument attachment
//! ([`Span::arg_str`] / [`Span::arg_u64`]) is likewise a no-op on an
//! inert guard — callers may compute cheap integers unconditionally
//! but should keep anything expensive behind [`is_enabled`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Soft cap on buffered events per thread (~tens of MB worst case).
/// When a thread's buffer is full new spans stop recording their begin
/// event; ends of already-recorded begins are always appended so the
/// stream stays balanced.
const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped by every export; guards created before the bump skip their
/// end event (the export already synthesized it).
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// One value a span argument can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument (function name, engine, cache disposition…).
    Str(String),
    /// An integer argument (query counts, sizes…).
    U64(u64),
}

#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    cat: &'static str,
    begin: bool,
    ts_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<Event>>,
}

fn base() -> Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    *BASE.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    base().elapsed().as_micros() as u64
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static R: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        buffers().lock().unwrap().push(Arc::clone(&buf));
        buf
    };
}

/// Turns recording on. Idempotent. Also pins the timestamp base so the
/// first span does not pay for clock initialization.
pub fn enable() {
    base();
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off. Spans already open still record their end
/// event (streams stay balanced); new spans become inert.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded. Use to gate argument
/// computation that is too expensive for the hot path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An RAII guard for one traced region. Create with [`span`]; the end
/// event is recorded on drop.
pub struct Span {
    recorded: bool,
    epoch: u64,
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
}

/// Opens a span named `name` in category `cat` on the current thread.
///
/// `cat` groups spans for trace-viewer filtering; this workspace uses
/// the stage names `detect`, `sat`, `store`, and `serve` (see
/// DESIGN.md §6e for the taxonomy). When tracing is disabled this is
/// one relaxed atomic load.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span {
            recorded: false,
            epoch: 0,
            name,
            cat,
            args: Vec::new(),
        };
    }
    Span::begin(name, cat)
}

impl Span {
    #[cold]
    fn begin(name: &'static str, cat: &'static str) -> Span {
        let epoch = EPOCH.load(Ordering::Acquire);
        let ts_us = now_us();
        let recorded = LOCAL.with(|buf| {
            let mut events = buf.events.lock().unwrap();
            if events.len() >= MAX_EVENTS_PER_THREAD {
                return false;
            }
            events.push(Event {
                name,
                cat,
                begin: true,
                ts_us,
                args: Vec::new(),
            });
            true
        });
        Span {
            recorded,
            epoch,
            name,
            cat,
            args: Vec::new(),
        }
    }

    /// Attaches a string argument, shown in the trace viewer on the
    /// span. No-op (and no allocation) on an inert guard.
    #[inline]
    pub fn arg_str(&mut self, key: &'static str, value: &str) {
        if self.recorded {
            self.args.push((key, ArgValue::Str(value.to_string())));
        }
    }

    /// Attaches an integer argument. No-op on an inert guard.
    #[inline]
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if self.recorded {
            self.args.push((key, ArgValue::U64(value)));
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if !self.recorded {
            return;
        }
        // An export ran while this span was open: it synthesized our
        // end event already, so recording another would unbalance the
        // *next* export.
        if EPOCH.load(Ordering::Acquire) != self.epoch {
            return;
        }
        let ts_us = now_us();
        let args = std::mem::take(&mut self.args);
        let (name, cat) = (self.name, self.cat);
        LOCAL.with(|buf| {
            // Deliberately past the soft cap: a recorded begin must get
            // its end.
            buf.events.lock().unwrap().push(Event {
                name,
                cat,
                begin: false,
                ts_us,
                args,
            });
        });
    }
}

/// Minimal JSON string escaper (the crate takes no dependency on
/// `lcm-core`). Non-ASCII passes through raw — UTF-8 is valid JSON.
fn esc_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn event_into(out: &mut String, pid: u32, tid: u64, e: &Event) {
    out.push_str("{\"ph\":\"");
    out.push(if e.begin { 'B' } else { 'E' });
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts_us.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":");
    esc_into(out, e.name);
    out.push_str(",\"cat\":");
    esc_into(out, e.cat);
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc_into(out, k);
            out.push(':');
            match v {
                ArgValue::Str(s) => esc_into(out, s),
                ArgValue::U64(n) => out.push_str(&n.to_string()),
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Drains every thread's buffer into one Chrome `trace_event` JSON
/// document (`{"traceEvents": [...]}`), loadable by `chrome://tracing`
/// and Perfetto.
///
/// Spans still open get a synthesized end event at the export
/// timestamp, so the document is always balanced; their guards skip
/// the stale end when they eventually drop. Buffers are left empty but
/// registered — recording continues afterwards if still enabled.
pub fn export_chrome_trace() -> String {
    // Bump first: guards that drop from here on skip their end event.
    EPOCH.fetch_add(1, Ordering::AcqRel);
    let pid = std::process::id();
    let bufs: Vec<Arc<ThreadBuf>> = buffers().lock().unwrap().clone();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for buf in bufs {
        let events: Vec<Event> = std::mem::take(&mut *buf.events.lock().unwrap());
        // Indices of begins not yet matched by an end, innermost last.
        let mut open: Vec<usize> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            if e.begin {
                open.push(i);
            } else {
                open.pop();
            }
            if !first {
                out.push(',');
            }
            first = false;
            event_into(&mut out, pid, buf.tid, e);
        }
        let close_ts = now_us().max(events.last().map_or(0, |e| e.ts_us));
        for &i in open.iter().rev() {
            let e = Event {
                name: events[i].name,
                cat: events[i].cat,
                begin: false,
                ts_us: close_ts,
                args: Vec::new(),
            };
            if !first {
                out.push(',');
            }
            first = false;
            event_into(&mut out, pid, buf.tid, &e);
        }
    }
    out.push_str("]}");
    out
}

/// [`export_chrome_trace`] straight to a file.
///
/// # Errors
///
/// Propagates the underlying write failure.
pub fn export_to_file(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_chrome_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so everything lives in one test
    // (the default harness runs tests concurrently).
    #[test]
    fn spans_record_balanced_nested_monotone_events() {
        // Disabled: inert guards, nothing buffered, args free.
        assert!(!is_enabled());
        {
            let mut s = span("idle", "test");
            s.arg_str("k", "v");
            s.arg_u64("n", 1);
        }
        enable();
        {
            let mut outer = span("outer", "test");
            outer.arg_str("fn", "victim \"quoted\"");
            {
                let mut inner = span("inner", "test");
                inner.arg_u64("queries", 7);
            }
        }
        let t = std::thread::spawn(|| {
            let _s = span("worker", "test");
        });
        t.join().unwrap();
        // An open span at export time gets a synthesized end…
        let dangling = span("dangling", "test");
        let doc = export_chrome_trace();
        disable();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "balanced: {doc}");
        assert_eq!(doc.matches("\"name\":\"dangling\"").count(), 2);
        assert!(doc.contains("\"queries\":7"));
        assert!(doc.contains("victim \\\"quoted\\\""));
        assert!(doc.contains("\"name\":\"worker\""));
        // …and its guard skips the stale end: the next export holds
        // nothing from it.
        drop(dangling);
        let empty = export_chrome_trace();
        assert!(!empty.contains("dangling"), "stale end leaked: {empty}");
        // The disabled span never recorded.
        assert!(!doc.contains("idle"));
    }
}
