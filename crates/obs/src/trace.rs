//! Span tracing with Chrome `trace_event` export.
//!
//! # Model
//!
//! A [`Span`] brackets a region of one thread's execution. Creating a
//! span records a `"ph": "B"` (begin) event; dropping it records the
//! matching `"ph": "E"` (end). Events accumulate in per-thread buffers
//! (a `Mutex<Vec<_>>` owned by the recording thread — uncontended
//! except during export) and [`export_chrome_trace`] drains them all
//! into one `{"traceEvents": [...]}` document.
//!
//! # Invariants the export guarantees
//!
//! * **Balanced**: every `B` has a matching `E` on the same thread.
//!   Spans still open at export time get a synthesized `E` at the
//!   export timestamp; their guards notice (via an epoch counter) and
//!   skip the now-stale end on drop.
//! * **Per-thread monotone timestamps**: all timestamps come from one
//!   process-wide [`Instant`] base and each thread appends in order.
//! * **Properly nested**: guards are droppped in reverse creation
//!   order (Rust scoping), so `B`/`E` pairs nest like a call stack.
//!
//! # Cost when disabled
//!
//! [`span`] starts with a single relaxed atomic load and returns an
//! inert guard when no one has called [`enable`]. No allocation, no
//! clock read, no thread-local touch. Argument attachment
//! ([`Span::arg_str`] / [`Span::arg_u64`]) is likewise a no-op on an
//! inert guard — callers may compute cheap integers unconditionally
//! but should keep anything expensive behind [`is_enabled`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Soft cap on buffered events per thread (~tens of MB worst case).
/// When a thread's buffer is full new spans stop recording their begin
/// event; ends of already-recorded begins are always appended so the
/// stream stays balanced.
const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped by every export; guards created before the bump skip their
/// end event (the export already synthesized it).
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// One value a span argument can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument (function name, engine, cache disposition…).
    Str(String),
    /// An integer argument (query counts, sizes…).
    U64(u64),
}

#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    cat: &'static str,
    begin: bool,
    ts_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<Event>>,
}

fn base() -> Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    *BASE.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    base().elapsed().as_micros() as u64
}

/// Current timestamp on this process's trace clock, in microseconds.
///
/// Trace timestamps are offsets from a per-process [`Instant`] base, so
/// two processes' spans cannot be compared raw. A coordinator that
/// merges foreign spans reads both clocks at handshake time (the
/// worker ships `clock_us()` in its hello frame), computes
/// `offset = coordinator_now − worker_now`, and adds the offset to
/// every foreign timestamp before [`add_foreign_events`].
pub fn clock_us() -> u64 {
    now_us()
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static R: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        buffers().lock().unwrap().push(Arc::clone(&buf));
        buf
    };
}

/// Turns recording on. Idempotent. Also pins the timestamp base so the
/// first span does not pay for clock initialization.
pub fn enable() {
    base();
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off. Spans already open still record their end
/// event (streams stay balanced); new spans become inert.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded. Use to gate argument
/// computation that is too expensive for the hot path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An RAII guard for one traced region. Create with [`span`]; the end
/// event is recorded on drop.
pub struct Span {
    recorded: bool,
    epoch: u64,
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
}

/// Opens a span named `name` in category `cat` on the current thread.
///
/// `cat` groups spans for trace-viewer filtering; this workspace uses
/// the stage names `detect`, `sat`, `store`, and `serve` (see
/// DESIGN.md §6e for the taxonomy). When tracing is disabled this is
/// one relaxed atomic load.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span {
            recorded: false,
            epoch: 0,
            name,
            cat,
            args: Vec::new(),
        };
    }
    Span::begin(name, cat)
}

impl Span {
    #[cold]
    fn begin(name: &'static str, cat: &'static str) -> Span {
        let epoch = EPOCH.load(Ordering::Acquire);
        let ts_us = now_us();
        let recorded = LOCAL.with(|buf| {
            let mut events = buf.events.lock().unwrap();
            if events.len() >= MAX_EVENTS_PER_THREAD {
                return false;
            }
            events.push(Event {
                name,
                cat,
                begin: true,
                ts_us,
                args: Vec::new(),
            });
            true
        });
        Span {
            recorded,
            epoch,
            name,
            cat,
            args: Vec::new(),
        }
    }

    /// Attaches a string argument, shown in the trace viewer on the
    /// span. No-op (and no allocation) on an inert guard.
    #[inline]
    pub fn arg_str(&mut self, key: &'static str, value: &str) {
        if self.recorded {
            self.args.push((key, ArgValue::Str(value.to_string())));
        }
    }

    /// Attaches an integer argument. No-op on an inert guard.
    #[inline]
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if self.recorded {
            self.args.push((key, ArgValue::U64(value)));
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if !self.recorded {
            return;
        }
        // An export ran while this span was open: it synthesized our
        // end event already, so recording another would unbalance the
        // *next* export.
        if EPOCH.load(Ordering::Acquire) != self.epoch {
            return;
        }
        let ts_us = now_us();
        let args = std::mem::take(&mut self.args);
        let (name, cat) = (self.name, self.cat);
        LOCAL.with(|buf| {
            // Deliberately past the soft cap: a recorded begin must get
            // its end.
            buf.events.lock().unwrap().push(Event {
                name,
                cat,
                begin: false,
                ts_us,
                args,
            });
        });
    }
}

/// One span event in process-independent form: owned strings, ready to
/// cross a process boundary. A worker drains its thread buffers into
/// these ([`drain_local_events`]); the coordinator re-bases the
/// timestamps onto its own clock (see [`clock_us`]) and hands them to
/// [`add_foreign_events`] for the next export.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignEvent {
    /// Thread lane within the originating process.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// `true` for a `"B"` event, `false` for the matching `"E"`.
    pub begin: bool,
    /// Microseconds on the originating process's trace clock (until
    /// re-based by the coordinator).
    pub ts_us: u64,
    /// Span arguments.
    pub args: Vec<(String, ArgValue)>,
}

/// Soft cap on buffered foreign events across all processes; whole
/// batches past the cap are dropped (a partial batch would unbalance
/// some thread's B/E stream).
const MAX_FOREIGN_EVENTS: usize = 1 << 20;

/// Foreign batches awaiting export, in arrival order. Kept per-batch
/// (not flattened) so each batch's internal balance survives the cap.
fn foreign() -> &'static Mutex<Vec<(u32, Vec<ForeignEvent>)>> {
    static R: OnceLock<Mutex<Vec<(u32, Vec<ForeignEvent>)>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains this process's thread buffers into a balanced, owned event
/// vector — the worker half of cross-process trace shipping.
///
/// Exactly like [`export_chrome_trace`], spans still open get a
/// synthesized end at the drain timestamp and their guards skip the
/// now-stale end on drop, so every drained batch is balanced per
/// thread and successive batches from one thread stay monotone.
pub fn drain_local_events() -> Vec<ForeignEvent> {
    EPOCH.fetch_add(1, Ordering::AcqRel);
    let bufs: Vec<Arc<ThreadBuf>> = buffers().lock().unwrap().clone();
    let mut out = Vec::new();
    for buf in bufs {
        let events: Vec<Event> = std::mem::take(&mut *buf.events.lock().unwrap());
        let mut open: Vec<usize> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            if e.begin {
                open.push(i);
            } else {
                open.pop();
            }
            out.push(ForeignEvent {
                tid: buf.tid,
                name: e.name.to_string(),
                cat: e.cat.to_string(),
                begin: e.begin,
                ts_us: e.ts_us,
                args: e
                    .args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
        let close_ts = now_us().max(events.last().map_or(0, |e| e.ts_us));
        for &i in open.iter().rev() {
            out.push(ForeignEvent {
                tid: buf.tid,
                name: events[i].name.to_string(),
                cat: events[i].cat.to_string(),
                begin: false,
                ts_us: close_ts,
                args: Vec::new(),
            });
        }
    }
    out
}

/// Queues a batch of re-based events from process `pid` for the next
/// [`export_chrome_trace`], which renders them under their own `pid`
/// lane with a `process_name` metadata record. Batches should already
/// be balanced per thread ([`drain_local_events`] guarantees this) and
/// re-based onto this process's clock. Batches past a soft global cap
/// are dropped whole.
pub fn add_foreign_events(pid: u32, events: Vec<ForeignEvent>) {
    if events.is_empty() {
        return;
    }
    let mut store = foreign().lock().unwrap();
    let held: usize = store.iter().map(|(_, b)| b.len()).sum();
    if held + events.len() > MAX_FOREIGN_EVENTS {
        return;
    }
    store.push((pid, events));
}

/// Minimal JSON string escaper (the crate takes no dependency on
/// `lcm-core`). Non-ASCII passes through raw — UTF-8 is valid JSON.
pub(crate) fn esc_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn event_into(out: &mut String, pid: u32, tid: u64, e: &Event) {
    out.push_str("{\"ph\":\"");
    out.push(if e.begin { 'B' } else { 'E' });
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts_us.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":");
    esc_into(out, e.name);
    out.push_str(",\"cat\":");
    esc_into(out, e.cat);
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc_into(out, k);
            out.push(':');
            match v {
                ArgValue::Str(s) => esc_into(out, s),
                ArgValue::U64(n) => out.push_str(&n.to_string()),
            }
        }
        out.push('}');
    }
    out.push('}');
}

fn foreign_event_into(out: &mut String, pid: u32, e: &ForeignEvent) {
    out.push_str("{\"ph\":\"");
    out.push(if e.begin { 'B' } else { 'E' });
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts_us.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&e.tid.to_string());
    out.push_str(",\"name\":");
    esc_into(out, &e.name);
    out.push_str(",\"cat\":");
    esc_into(out, &e.cat);
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc_into(out, k);
            out.push(':');
            match v {
                ArgValue::Str(s) => esc_into(out, s),
                ArgValue::U64(n) => out.push_str(&n.to_string()),
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// A Chrome `"M"` (metadata) record naming a process lane.
fn process_name_into(out: &mut String, pid: u32, name: &str) {
    out.push_str("{\"ph\":\"M\",\"ts\":0,\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":0,\"name\":\"process_name\",\"cat\":\"__metadata\",\"args\":{\"name\":");
    esc_into(out, name);
    out.push_str("}}");
}

/// Drains every thread's buffer into one Chrome `trace_event` JSON
/// document (`{"traceEvents": [...]}`), loadable by `chrome://tracing`
/// and Perfetto.
///
/// Spans still open get a synthesized end event at the export
/// timestamp, so the document is always balanced; their guards skip
/// the stale end when they eventually drop. Buffers are left empty but
/// registered — recording continues afterwards if still enabled.
///
/// Queued foreign batches ([`add_foreign_events`]) are drained too:
/// they render under their originating `pid` with `process_name`
/// metadata records distinguishing the lanes, producing one merged
/// multi-process timeline.
pub fn export_chrome_trace() -> String {
    // Bump first: guards that drop from here on skip their end event.
    EPOCH.fetch_add(1, Ordering::AcqRel);
    let pid = std::process::id();
    let bufs: Vec<Arc<ThreadBuf>> = buffers().lock().unwrap().clone();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for buf in bufs {
        let events: Vec<Event> = std::mem::take(&mut *buf.events.lock().unwrap());
        // Indices of begins not yet matched by an end, innermost last.
        let mut open: Vec<usize> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            if e.begin {
                open.push(i);
            } else {
                open.pop();
            }
            if !first {
                out.push(',');
            }
            first = false;
            event_into(&mut out, pid, buf.tid, e);
        }
        let close_ts = now_us().max(events.last().map_or(0, |e| e.ts_us));
        for &i in open.iter().rev() {
            let e = Event {
                name: events[i].name,
                cat: events[i].cat,
                begin: false,
                ts_us: close_ts,
                args: Vec::new(),
            };
            if !first {
                out.push(',');
            }
            first = false;
            event_into(&mut out, pid, buf.tid, &e);
        }
    }
    // Foreign batches render under their own pid lane. Process-name
    // metadata records appear only for multi-process traces, so a
    // single-process export is byte-for-byte what it always was.
    let batches: Vec<(u32, Vec<ForeignEvent>)> = std::mem::take(&mut *foreign().lock().unwrap());
    if !batches.is_empty() {
        let mut named: Vec<u32> = vec![pid];
        if !first {
            out.push(',');
        }
        first = false;
        process_name_into(&mut out, pid, "lcm-supervisor");
        for (fpid, _) in &batches {
            if !named.contains(fpid) {
                named.push(*fpid);
                out.push(',');
                process_name_into(&mut out, *fpid, &format!("lcm-worker-{fpid}"));
            }
        }
        for (fpid, events) in &batches {
            for e in events {
                out.push(',');
                foreign_event_into(&mut out, *fpid, e);
            }
        }
    }
    let _ = first;
    out.push_str("]}");
    out
}

/// [`export_chrome_trace`] straight to a file.
///
/// # Errors
///
/// Propagates the underlying write failure.
pub fn export_to_file(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_chrome_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so everything lives in one test
    // (the default harness runs tests concurrently).
    #[test]
    fn spans_record_balanced_nested_monotone_events() {
        // Disabled: inert guards, nothing buffered, args free.
        assert!(!is_enabled());
        {
            let mut s = span("idle", "test");
            s.arg_str("k", "v");
            s.arg_u64("n", 1);
        }
        enable();
        {
            let mut outer = span("outer", "test");
            outer.arg_str("fn", "victim \"quoted\"");
            {
                let mut inner = span("inner", "test");
                inner.arg_u64("queries", 7);
            }
        }
        let t = std::thread::spawn(|| {
            let _s = span("worker", "test");
        });
        t.join().unwrap();
        // An open span at export time gets a synthesized end…
        let dangling = span("dangling", "test");
        let doc = export_chrome_trace();
        disable();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "balanced: {doc}");
        assert_eq!(doc.matches("\"name\":\"dangling\"").count(), 2);
        assert!(doc.contains("\"queries\":7"));
        assert!(doc.contains("victim \\\"quoted\\\""));
        assert!(doc.contains("\"name\":\"worker\""));
        // …and its guard skips the stale end: the next export holds
        // nothing from it.
        drop(dangling);
        let empty = export_chrome_trace();
        assert!(!empty.contains("dangling"), "stale end leaked: {empty}");
        // The disabled span never recorded.
        assert!(!doc.contains("idle"));
        // A single-process export carries no metadata records.
        assert!(!doc.contains("\"ph\":\"M\""));

        // Cross-process half: drain this process's spans as if we were
        // a worker, then feed them back as a foreign batch.
        enable();
        {
            {
                let mut s = span("task", "fleet");
                s.arg_str("fn", "victim_a");
            }
            let _open = span("half-done", "fleet");
            let drained = drain_local_events();
            // Balanced: the open span got a synthesized end.
            assert_eq!(drained.len(), 4, "{drained:?}");
            assert_eq!(drained.iter().filter(|e| e.begin).count(), 2);
            assert_eq!(drained[0].name, "task");
            // Args ride the end event (attached at drop time).
            assert!(!drained[1].begin);
            assert_eq!(
                drained[1].args,
                vec![("fn".to_string(), ArgValue::Str("victim_a".to_string()))]
            );
            // Simulate the coordinator re-basing onto its clock.
            let offset = 1_000_000u64;
            let rebased: Vec<ForeignEvent> = drained
                .into_iter()
                .map(|mut e| {
                    e.ts_us += offset;
                    e
                })
                .collect();
            add_foreign_events(4242, rebased);
        }
        let mut local = span("merge", "fleet");
        local.arg_u64("workers", 1);
        drop(local);
        let merged = export_chrome_trace();
        disable();
        assert!(merged.contains("\"pid\":4242"));
        assert!(merged.contains("\"name\":\"process_name\""));
        assert!(merged.contains("\"name\":\"lcm-worker-4242\""));
        assert!(merged.contains("\"name\":\"lcm-supervisor\""));
        assert!(merged.contains("\"name\":\"task\""));
        assert!(merged.contains("\"name\":\"merge\""));
        let begins = merged.matches("\"ph\":\"B\"").count();
        let ends = merged.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "merged trace balanced: {merged}");
        // The guard of the drained-open span skips its stale end, and
        // the foreign queue is empty again after export.
        let after = export_chrome_trace();
        assert!(!after.contains("half-done"), "{after}");
        assert!(!after.contains("4242"), "{after}");
        // An empty foreign batch is a no-op.
        add_foreign_events(7, Vec::new());
        assert!(!export_chrome_trace().contains("\"ph\":\"M\""));
    }
}
