//! The line-delimited JSON wire protocol: v1 one-shot and v2
//! multiplexed frames.
//!
//! **v1 (one request per connection)** — the original protocol, kept
//! byte-identical: the client writes a single JSON object terminated by
//! `\n`, the server writes a single JSON object terminated by `\n` and
//! closes. Requests:
//!
//! ```text
//! {"cmd": "analyze", "source": "<mini-C>", "engine": "pht"}
//! {"cmd": "analyze", "file": "/path/to/prog.c", "engine": "stl"}
//! {"cmd": "status"}
//! {"cmd": "stats"}
//! {"cmd": "metrics"}
//! {"cmd": "shutdown"}
//! ```
//!
//! **v2 (multiplexed)** — any frame carrying a client-chosen `id`
//! (string or number) switches the connection into multiplexed mode:
//! the connection stays open, the client may pipeline further frames
//! without waiting for replies, and every reply names the `id` of the
//! frame it answers — replies may arrive **out of order** and are
//! matched by `id`, never by position. A batched analyze submits many
//! programs in one frame and gets one aggregated reply:
//!
//! ```text
//! {"cmd": "analyze", "id": 7, "source": "…", "engine": "pht"}
//! {"cmd": "analyze_batch", "id": "b1", "batch": [{"source": "…"},
//!                                               {"source": "…", "engine": "stl"}]}
//! ```
//!
//! v2 replies are the v1 reply object with `"id"` prepended; a batch
//! reply carries `"results"`, an array whose elements render exactly as
//! the corresponding v1 analyze replies would (the byte-equality pin
//! holds per batch element). Malformed frames on a v2 connection get a
//! *per-frame* error reply (naming the `id` when one was parseable) —
//! they never terminate the connection or the server.
//!
//! `engine` defaults to `pht`. Responses always carry `"ok": true|false`;
//! failures add `"error"`. Analyze responses embed the full per-function
//! report (findings, status, cache labels) in the same shape the bench
//! JSON uses, so the round-trip test can compare the daemon's answer
//! against an in-process run field by field.
//!
//! `metrics` on a v1 connection is the one exception to the JSON-reply
//! rule: it answers with raw Prometheus text exposition (multi-line,
//! `# HELP`/`# TYPE` preambles) so a scraper can hit the daemon without
//! a translation shim. On a v2 connection a multi-line reply would
//! break framing, so the same text is delivered inside a JSON frame:
//! `{"id": …, "ok": true, "prometheus": "<text>"}`.

use lcm_core::jsonw::{self, Json};
use lcm_detect::{EngineKind, Finding, FunctionReport, ModuleReport};

/// Hard per-frame size cap: a frame (request line) longer than this is
/// answered with a per-frame error (v2) or closes the connection (v1,
/// where there is nothing left to salvage).
pub const MAX_FRAME: usize = 64 << 20;

/// One program to analyze (the element type of a batched analyze; a v1
/// `analyze` is one of these plus transport).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeItem {
    /// Inline source text, if given.
    pub source: Option<String>,
    /// Server-side path to read instead, if given.
    pub file: Option<String>,
    /// Engine to run.
    pub engine: EngineKind,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze mini-C source (inline or from a file the *server* reads).
    Analyze {
        /// Inline source text, if given.
        source: Option<String>,
        /// Server-side path to read instead, if given.
        file: Option<String>,
        /// Engine to run.
        engine: EngineKind,
    },
    /// Analyze many programs in one frame; the reply aggregates one
    /// result object per item, in item order.
    AnalyzeBatch(Vec<AnalyzeItem>),
    /// Liveness probe: uptime and queue occupancy.
    Status,
    /// Counter snapshot (requests, cache traffic, degradations).
    Stats,
    /// Prometheus text exposition of the process metrics registry.
    Metrics,
    /// Graceful shutdown after in-flight requests drain.
    Shutdown,
}

/// A decoded frame: the request plus the client-chosen `id`, if any.
/// `id: None` is a v1 one-shot line; `id: Some(_)` is a v2 frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The client-chosen request id (string or number), echoed on the
    /// reply. Replies are matched by this, never by arrival order.
    pub id: Option<Json>,
    /// The request the frame carries.
    pub req: Request,
}

/// A frame that failed to decode. The `id` is populated whenever the
/// line parsed far enough to yield a valid one, so the per-frame error
/// reply can name the request it rejects.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// The frame's id, when one was recoverable.
    pub id: Option<Json>,
    /// What was wrong, destined for the reply's `"error"` field.
    pub message: String,
}

impl FrameError {
    fn new(id: Option<Json>, message: impl Into<String>) -> FrameError {
        FrameError {
            id,
            message: message.into(),
        }
    }
}

/// The wire name of an engine.
pub fn engine_name(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Pht => "pht",
        EngineKind::Stl => "stl",
        EngineKind::Psf => "psf",
    }
}

/// Parses a wire engine name.
pub fn engine_of_name(name: &str) -> Option<EngineKind> {
    match name {
        "pht" => Some(EngineKind::Pht),
        "stl" => Some(EngineKind::Stl),
        "psf" => Some(EngineKind::Psf),
        _ => None,
    }
}

/// Decodes one analyze item (the fields shared by a v1 `analyze` line
/// and each element of a v2 `batch` array).
fn parse_item(v: &Json) -> Result<AnalyzeItem, String> {
    let source = v.get("source").and_then(Json::as_str).map(String::from);
    let file = v.get("file").and_then(Json::as_str).map(String::from);
    if source.is_none() && file.is_none() {
        return Err("analyze needs `source` or `file`".into());
    }
    if source.is_some() && file.is_some() {
        return Err("analyze takes `source` or `file`, not both".into());
    }
    let engine = match v.get("engine") {
        None => EngineKind::Pht,
        Some(e) => {
            let name = e.as_str().ok_or("`engine` must be a string")?;
            engine_of_name(name).ok_or_else(|| format!("unknown engine `{name}` (pht|stl|psf)"))?
        }
    };
    Ok(AnalyzeItem {
        source,
        file,
        engine,
    })
}

/// Decodes one frame (request line). The returned [`FrameError`]
/// carries the frame's `id` whenever one was recoverable, so the reply
/// can name the request it rejects.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    let v = jsonw::parse(line.trim())
        .map_err(|e| FrameError::new(None, format!("bad request JSON: {e}")))?;
    let id = match v.get("id") {
        None => None,
        Some(id @ (Json::Str(_) | Json::Num(_))) => Some(id.clone()),
        Some(_) => {
            return Err(FrameError::new(None, "`id` must be a string or number"));
        }
    };
    let cmd = match v.get("cmd").and_then(Json::as_str) {
        Some(c) => c,
        None => return Err(FrameError::new(id, "missing `cmd`")),
    };
    let req = match cmd {
        "status" => Request::Status,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "analyze" => {
            let item = parse_item(&v).map_err(|e| FrameError::new(id.clone(), e))?;
            Request::Analyze {
                source: item.source,
                file: item.file,
                engine: item.engine,
            }
        }
        "analyze_batch" => {
            let items = match v.get("batch").and_then(Json::as_arr) {
                Some(arr) if !arr.is_empty() => arr,
                Some(_) => {
                    return Err(FrameError::new(id, "`batch` must be a non-empty array"));
                }
                None => {
                    return Err(FrameError::new(id, "analyze_batch needs a `batch` array"));
                }
            };
            let mut parsed = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let item = parse_item(item)
                    .map_err(|e| FrameError::new(id.clone(), format!("batch[{i}]: {e}")))?;
                parsed.push(item);
            }
            Request::AnalyzeBatch(parsed)
        }
        other => {
            return Err(FrameError::new(id, format!("unknown cmd `{other}`")));
        }
    };
    Ok(Frame { id, req })
}

/// Decodes one request line, ignoring any `id` (v1 view; kept for the
/// one-shot path and existing callers).
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_frame(line).map(|f| f.req).map_err(|e| e.message)
}

/// A v1 failure reply (no `id`).
pub fn error_reply(message: &str) -> String {
    let mut line = Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.into())),
    ])
    .render();
    line.push('\n');
    line
}

/// A failure reply naming the rejected frame's `id` when one is known;
/// falls back to the v1 shape (byte-identical) when there is none.
pub fn error_reply_id(id: Option<&Json>, message: &str) -> String {
    match id {
        None => error_reply(message),
        Some(id) => {
            let mut line = Json::Obj(vec![
                ("id".into(), id.clone()),
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::Str(message.into())),
            ])
            .render();
            line.push('\n');
            line
        }
    }
}

fn finding_json(f: &Finding) -> Json {
    let opt = |v: Option<u64>| match v {
        None => Json::Null,
        Some(v) => Json::Num(v as f64),
    };
    Json::Obj(vec![
        ("function".into(), Json::Str(f.function.clone())),
        ("transmitter".into(), Json::Num(f.transmitter.0 as f64)),
        (
            "transmitter_inst".into(),
            Json::Num(f.transmitter_inst.0 as f64),
        ),
        ("class".into(), Json::Str(f.class.to_string())),
        (
            "transient_transmitter".into(),
            Json::Bool(f.transient_transmitter),
        ),
        ("access".into(), opt(f.access.map(|e| e.0 as u64))),
        ("access_transient".into(), Json::Bool(f.access_transient)),
        ("index".into(), opt(f.index.map(|e| e.0 as u64))),
        ("primitive".into(), Json::Str(f.primitive.to_string())),
        ("branch".into(), opt(f.branch.map(|b| b.0 as u64))),
        (
            "bypassed_store".into(),
            opt(f.bypassed_store.map(|e| e.0 as u64)),
        ),
        ("interference".into(), Json::Bool(f.interference)),
    ])
}

fn function_report_json(f: &FunctionReport) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(f.name.clone())),
        ("saeg_size".into(), Json::Num(f.saeg_size as f64)),
        (
            "status".into(),
            match f.status.error() {
                None => Json::Str("completed".into()),
                Some(e) => Json::Str(format!("degraded: {e}")),
            },
        ),
        ("cache".into(), Json::Str(f.cache.label().into())),
        (
            "findings".into(),
            Json::Arr(f.transmitters.iter().map(finding_json).collect()),
        ),
    ])
}

/// The `functions` array of an analyze reply: everything about the
/// result except timing (which can never match across processes).
pub fn module_report_json(report: &ModuleReport) -> Json {
    Json::Arr(report.functions.iter().map(function_report_json).collect())
}

/// The members of a successful analyze reply object (shared by the v1
/// reply, the v2 reply, and each element of a batch reply, so all
/// three render a result identically).
fn analyze_members(report: &ModuleReport, engine: EngineKind) -> Vec<(String, Json)> {
    let timings = report.timings();
    vec![
        ("ok".into(), Json::Bool(true)),
        ("engine".into(), Json::Str(engine_name(engine).into())),
        ("functions".into(), module_report_json(report)),
        ("cache_hits".into(), Json::Num(timings.cache_hits as f64)),
        (
            "queries_avoided".into(),
            Json::Num(timings.queries_avoided as f64),
        ),
        (
            "prefilter_hits".into(),
            Json::Num(timings.prefilter_hits as f64),
        ),
        ("degraded".into(), Json::Num(report.degraded_count() as f64)),
    ]
}

/// A successful v1 analyze reply.
pub fn analyze_reply(report: &ModuleReport, engine: EngineKind) -> String {
    let mut line = Json::Obj(analyze_members(report, engine)).render();
    line.push('\n');
    line
}

/// A successful analyze reply naming its frame's `id` (v2); without an
/// id this is exactly the v1 reply.
pub fn analyze_reply_id(id: Option<&Json>, report: &ModuleReport, engine: EngineKind) -> String {
    match id {
        None => analyze_reply(report, engine),
        Some(id) => {
            let mut members = analyze_members(report, engine);
            members.insert(0, ("id".into(), id.clone()));
            let mut line = Json::Obj(members).render();
            line.push('\n');
            line
        }
    }
}

/// Prepends a frame `id` to an already-rendered v1 reply line,
/// producing exactly the bytes [`analyze_reply_id`] renders for the
/// same report (pinned by `id_replies_prepend_the_id_and_change_nothing_else`).
/// The server's hot-reply memo uses this to replay a cached v1 line
/// under any frame's `id` without re-rendering the report.
pub fn prepend_id(id: Option<&Json>, v1_line: &str) -> String {
    match id {
        None => v1_line.to_string(),
        Some(id) => format!("{{\"id\":{},{}", id.render(), &v1_line[1..]),
    }
}

/// One element of a batch reply: the analyzed report, a pre-rendered
/// reply line, or the error that stopped that item.
pub enum BatchOutcome {
    /// The item analyzed; same payload as a v1 analyze reply.
    Done(ModuleReport, EngineKind),
    /// An already-rendered v1 analyze reply line (the server's
    /// hot-reply memo); spliced into `results` verbatim, so the
    /// per-element byte-equality pin holds by construction.
    Rendered(std::sync::Arc<str>),
    /// The item failed (bad file, compile error); the reply element is
    /// the v1 error object.
    Failed(String),
}

/// An aggregated batch reply: `ok` is true when every element
/// succeeded, `results` carries one object per item in item order, and
/// each element renders exactly as the matching one-shot reply would —
/// the reply is assembled from the element strings directly, so a
/// [`BatchOutcome::Rendered`] element is the one-shot bytes verbatim.
pub fn batch_reply(id: Option<&Json>, outcomes: &[BatchOutcome]) -> String {
    let failed = outcomes
        .iter()
        .filter(|o| matches!(o, BatchOutcome::Failed(_)))
        .count();
    let mut line = String::with_capacity(64 + outcomes.len() * 64);
    line.push('{');
    if let Some(id) = id {
        line.push_str("\"id\":");
        line.push_str(&id.render());
        line.push(',');
    }
    line.push_str("\"ok\":");
    line.push_str(if failed == 0 { "true" } else { "false" });
    line.push_str(",\"results\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        match o {
            BatchOutcome::Done(report, engine) => {
                line.push_str(&Json::Obj(analyze_members(report, *engine)).render());
            }
            BatchOutcome::Rendered(reply) => line.push_str(reply.trim_end()),
            BatchOutcome::Failed(e) => {
                line.push_str(
                    &Json::Obj(vec![
                        ("ok".into(), Json::Bool(false)),
                        ("error".into(), Json::Str(e.clone())),
                    ])
                    .render(),
                );
            }
        }
    }
    line.push_str("],\"failed\":");
    line.push_str(&Json::Num(failed as f64).render());
    line.push('}');
    line.push('\n');
    line
}

/// A v2 metrics reply: the Prometheus text exposition inside a JSON
/// frame (a raw multi-line reply would break v2 framing).
pub fn metrics_reply_id(id: &Json, prometheus: &str) -> String {
    let mut line = Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(true)),
        ("prometheus".into(), Json::Str(prometheus.into())),
    ])
    .render();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request(r#"{"cmd":"status"}"#), Ok(Request::Status));
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#), Ok(Request::Metrics));
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        let r = parse_request(r#"{"cmd":"analyze","source":"int x;","engine":"stl"}"#).unwrap();
        assert_eq!(
            r,
            Request::Analyze {
                source: Some("int x;".into()),
                file: None,
                engine: EngineKind::Stl,
            }
        );
        let r = parse_request(r#"{"cmd":"analyze","file":"/tmp/a.c"}"#).unwrap();
        assert!(matches!(
            r,
            Request::Analyze {
                engine: EngineKind::Pht,
                ..
            }
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"analyze"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"analyze","source":"a","file":"b"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"analyze","source":"a","engine":"quantum"}"#).is_err());
        assert!(parse_request(r#"{"source":"a"}"#).is_err());
    }

    #[test]
    fn v2_frames_carry_ids_and_batches() {
        let f = parse_frame(r#"{"cmd":"status","id":7}"#).unwrap();
        assert_eq!(f.id, Some(Json::Num(7.0)));
        assert_eq!(f.req, Request::Status);

        let f = parse_frame(r#"{"cmd":"analyze","id":"a-1","source":"int x;"}"#).unwrap();
        assert_eq!(f.id, Some(Json::Str("a-1".into())));

        let f = parse_frame(
            r#"{"cmd":"analyze_batch","id":3,"batch":[{"source":"int x;"},{"source":"int y;","engine":"stl"}]}"#,
        )
        .unwrap();
        match f.req {
            Request::AnalyzeBatch(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].engine, EngineKind::Pht);
                assert_eq!(items[1].engine, EngineKind::Stl);
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn frame_errors_recover_the_id_when_parseable() {
        // A bad cmd with a good id: the error names the id.
        let e = parse_frame(r#"{"cmd":"frobnicate","id":9}"#).unwrap_err();
        assert_eq!(e.id, Some(Json::Num(9.0)));
        // A bad batch element: the error names the id and the index.
        let e = parse_frame(r#"{"cmd":"analyze_batch","id":9,"batch":[{}]}"#).unwrap_err();
        assert_eq!(e.id, Some(Json::Num(9.0)));
        assert!(e.message.contains("batch[0]"), "{}", e.message);
        // Unparseable JSON: no id to recover.
        let e = parse_frame("not json").unwrap_err();
        assert_eq!(e.id, None);
        // A structured (non-scalar) id is itself an error.
        let e = parse_frame(r#"{"cmd":"status","id":[1]}"#).unwrap_err();
        assert!(e.message.contains("string or number"), "{}", e.message);
    }

    #[test]
    fn replies_are_single_parseable_lines() {
        let e = error_reply("no \"such\" engine");
        assert!(e.ends_with('\n'));
        let v = jsonw::parse(e.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("no \"such\" engine"));

        let report = ModuleReport::default();
        let a = analyze_reply(&report, EngineKind::Psf);
        let v = jsonw::parse(a.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("engine").unwrap().as_str(), Some("psf"));
        assert_eq!(v.get("functions").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn id_replies_prepend_the_id_and_change_nothing_else() {
        let report = ModuleReport::default();
        let id = Json::Num(42.0);
        let v1 = analyze_reply(&report, EngineKind::Pht);
        let v2 = analyze_reply_id(Some(&id), &report, EngineKind::Pht);
        assert_eq!(v2, format!("{{\"id\":42,{}", &v1[1..]));
        // Absent id: byte-identical to v1.
        assert_eq!(analyze_reply_id(None, &report, EngineKind::Pht), v1);
        assert_eq!(error_reply_id(None, "x"), error_reply("x"));

        let b = batch_reply(
            Some(&id),
            &[
                BatchOutcome::Done(ModuleReport::default(), EngineKind::Stl),
                BatchOutcome::Failed("compile error: nope".into()),
            ],
        );
        let v = jsonw::parse(b.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
        let results = v.get("results").unwrap().as_arr().unwrap();
        // Each batch element renders exactly as its one-shot reply.
        assert_eq!(
            format!("{}\n", results[0].render()),
            analyze_reply(&ModuleReport::default(), EngineKind::Stl)
        );
        assert_eq!(
            format!("{}\n", results[1].render()),
            error_reply("compile error: nope")
        );

        // A pre-rendered element (hot-reply memo) produces the
        // identical batch reply bytes.
        let rendered: std::sync::Arc<str> =
            analyze_reply(&ModuleReport::default(), EngineKind::Stl).into();
        let b2 = batch_reply(
            Some(&id),
            &[
                BatchOutcome::Rendered(rendered),
                BatchOutcome::Failed("compile error: nope".into()),
            ],
        );
        assert_eq!(b2, b);

        // prepend_id matches analyze_reply_id byte for byte.
        assert_eq!(prepend_id(Some(&id), &v1), v2);
        assert_eq!(prepend_id(None, &v1), v1);
    }
}
