//! The line-delimited JSON wire protocol.
//!
//! One request per connection: the client writes a single JSON object
//! terminated by `\n`, the server writes a single JSON object
//! terminated by `\n` and closes. Requests:
//!
//! ```text
//! {"cmd": "analyze", "source": "<mini-C>", "engine": "pht"}
//! {"cmd": "analyze", "file": "/path/to/prog.c", "engine": "stl"}
//! {"cmd": "status"}
//! {"cmd": "stats"}
//! {"cmd": "metrics"}
//! {"cmd": "shutdown"}
//! ```
//!
//! `engine` defaults to `pht`. Responses always carry `"ok": true|false`;
//! failures add `"error"`. Analyze responses embed the full per-function
//! report (findings, status, cache labels) in the same shape the bench
//! JSON uses, so the round-trip test can compare the daemon's answer
//! against an in-process run field by field.
//!
//! `metrics` is the one exception to the JSON-reply rule: it answers
//! with raw Prometheus text exposition (multi-line, `# HELP`/`# TYPE`
//! preambles) so a scraper can hit the daemon without a translation
//! shim. Everything else stays line-delimited JSON.

use lcm_core::jsonw::{self, Json};
use lcm_detect::{EngineKind, Finding, FunctionReport, ModuleReport};

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze mini-C source (inline or from a file the *server* reads).
    Analyze {
        /// Inline source text, if given.
        source: Option<String>,
        /// Server-side path to read instead, if given.
        file: Option<String>,
        /// Engine to run.
        engine: EngineKind,
    },
    /// Liveness probe: uptime and queue occupancy.
    Status,
    /// Counter snapshot (requests, cache traffic, degradations).
    Stats,
    /// Prometheus text exposition of the process metrics registry.
    Metrics,
    /// Graceful shutdown after in-flight requests drain.
    Shutdown,
}

/// The wire name of an engine.
pub fn engine_name(engine: EngineKind) -> &'static str {
    match engine {
        EngineKind::Pht => "pht",
        EngineKind::Stl => "stl",
        EngineKind::Psf => "psf",
    }
}

/// Parses a wire engine name.
pub fn engine_of_name(name: &str) -> Option<EngineKind> {
    match name {
        "pht" => Some(EngineKind::Pht),
        "stl" => Some(EngineKind::Stl),
        "psf" => Some(EngineKind::Psf),
        _ => None,
    }
}

/// Decodes one request line. Errors are strings destined for the
/// `"error"` field of the reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = jsonw::parse(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
    let cmd = v.get("cmd").and_then(Json::as_str).ok_or("missing `cmd`")?;
    match cmd {
        "status" => Ok(Request::Status),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "analyze" => {
            let source = v.get("source").and_then(Json::as_str).map(String::from);
            let file = v.get("file").and_then(Json::as_str).map(String::from);
            if source.is_none() && file.is_none() {
                return Err("analyze needs `source` or `file`".into());
            }
            if source.is_some() && file.is_some() {
                return Err("analyze takes `source` or `file`, not both".into());
            }
            let engine = match v.get("engine") {
                None => EngineKind::Pht,
                Some(e) => {
                    let name = e.as_str().ok_or("`engine` must be a string")?;
                    engine_of_name(name)
                        .ok_or_else(|| format!("unknown engine `{name}` (pht|stl|psf)"))?
                }
            };
            Ok(Request::Analyze {
                source,
                file,
                engine,
            })
        }
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// A failure reply.
pub fn error_reply(message: &str) -> String {
    let mut line = Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.into())),
    ])
    .render();
    line.push('\n');
    line
}

fn finding_json(f: &Finding) -> Json {
    let opt = |v: Option<u64>| match v {
        None => Json::Null,
        Some(v) => Json::Num(v as f64),
    };
    Json::Obj(vec![
        ("function".into(), Json::Str(f.function.clone())),
        ("transmitter".into(), Json::Num(f.transmitter.0 as f64)),
        (
            "transmitter_inst".into(),
            Json::Num(f.transmitter_inst.0 as f64),
        ),
        ("class".into(), Json::Str(f.class.to_string())),
        (
            "transient_transmitter".into(),
            Json::Bool(f.transient_transmitter),
        ),
        ("access".into(), opt(f.access.map(|e| e.0 as u64))),
        ("access_transient".into(), Json::Bool(f.access_transient)),
        ("index".into(), opt(f.index.map(|e| e.0 as u64))),
        ("primitive".into(), Json::Str(f.primitive.to_string())),
        ("branch".into(), opt(f.branch.map(|b| b.0 as u64))),
        (
            "bypassed_store".into(),
            opt(f.bypassed_store.map(|e| e.0 as u64)),
        ),
        ("interference".into(), Json::Bool(f.interference)),
    ])
}

fn function_report_json(f: &FunctionReport) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(f.name.clone())),
        ("saeg_size".into(), Json::Num(f.saeg_size as f64)),
        (
            "status".into(),
            match f.status.error() {
                None => Json::Str("completed".into()),
                Some(e) => Json::Str(format!("degraded: {e}")),
            },
        ),
        ("cache".into(), Json::Str(f.cache.label().into())),
        (
            "findings".into(),
            Json::Arr(f.transmitters.iter().map(finding_json).collect()),
        ),
    ])
}

/// The `functions` array of an analyze reply: everything about the
/// result except timing (which can never match across processes).
pub fn module_report_json(report: &ModuleReport) -> Json {
    Json::Arr(report.functions.iter().map(function_report_json).collect())
}

/// A successful analyze reply.
pub fn analyze_reply(report: &ModuleReport, engine: EngineKind) -> String {
    let timings = report.timings();
    let mut line = Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("engine".into(), Json::Str(engine_name(engine).into())),
        ("functions".into(), module_report_json(report)),
        ("cache_hits".into(), Json::Num(timings.cache_hits as f64)),
        (
            "queries_avoided".into(),
            Json::Num(timings.queries_avoided as f64),
        ),
        (
            "prefilter_hits".into(),
            Json::Num(timings.prefilter_hits as f64),
        ),
        ("degraded".into(), Json::Num(report.degraded_count() as f64)),
    ])
    .render();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request(r#"{"cmd":"status"}"#), Ok(Request::Status));
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#), Ok(Request::Metrics));
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        let r = parse_request(r#"{"cmd":"analyze","source":"int x;","engine":"stl"}"#).unwrap();
        assert_eq!(
            r,
            Request::Analyze {
                source: Some("int x;".into()),
                file: None,
                engine: EngineKind::Stl,
            }
        );
        let r = parse_request(r#"{"cmd":"analyze","file":"/tmp/a.c"}"#).unwrap();
        assert!(matches!(
            r,
            Request::Analyze {
                engine: EngineKind::Pht,
                ..
            }
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"analyze"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"analyze","source":"a","file":"b"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"analyze","source":"a","engine":"quantum"}"#).is_err());
        assert!(parse_request(r#"{"source":"a"}"#).is_err());
    }

    #[test]
    fn replies_are_single_parseable_lines() {
        let e = error_reply("no \"such\" engine");
        assert!(e.ends_with('\n'));
        let v = jsonw::parse(e.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("no \"such\" engine"));

        let report = ModuleReport::default();
        let a = analyze_reply(&report, EngineKind::Psf);
        let v = jsonw::parse(a.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("engine").unwrap().as_str(), Some("psf"));
        assert_eq!(v.get("functions").unwrap().as_arr().unwrap().len(), 0);
    }
}
