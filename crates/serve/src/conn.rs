//! Transport abstraction: one connection type over Unix *and* TCP.
//!
//! The wire protocol (v1 one-shot and v2 multiplexed alike) is defined
//! over "a bidirectional byte stream"; nothing in it cares whether the
//! bytes ride a Unix domain socket or a TCP connection. This module
//! makes that literal: [`Stream`] and [`Listener`] are two-variant
//! enums over the std socket types, and every line of server, client,
//! and wire code is written against them — the `--tcp` listener is the
//! same code path as the Unix socket, not a parallel implementation.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

/// A connected byte stream, Unix or TCP.
#[derive(Debug)]
pub enum Stream {
    /// A Unix domain socket connection.
    Unix(UnixStream),
    /// A TCP connection (`--tcp` listener / `Client::tcp`).
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to a Unix socket path.
    pub fn connect_unix(path: &Path) -> std::io::Result<Stream> {
        UnixStream::connect(path).map(Stream::Unix)
    }

    /// Connects to a TCP address (`host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Stream> {
        TcpStream::connect(addr).map(Stream::Tcp)
    }

    /// An independently owned handle to the same connection (used to
    /// split a connection into a reader half and a writer half).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the read timeout (`None` = block forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d),
            Stream::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Shuts down both directions (the reader on the other side sees
    /// EOF; used by shutdown to unblock per-connection reader threads
    /// and by the `serve.partial_write` fault to tear a reply).
    pub fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener, Unix or TCP.
#[derive(Debug)]
pub enum Listener {
    /// Listening on a Unix socket path.
    Unix(UnixListener),
    /// Listening on a TCP address.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix socket path (the caller removes stale files).
    pub fn bind_unix(path: &Path) -> std::io::Result<Listener> {
        UnixListener::bind(path).map(Listener::Unix)
    }

    /// Binds a TCP address (`host:port`; `host:0` picks a free port).
    pub fn bind_tcp(addr: &str) -> std::io::Result<Listener> {
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// Puts the listener into non-blocking accept mode (the server's
    /// accept loop polls several listeners).
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    /// The TCP address actually bound (e.g. to learn the port after
    /// binding `127.0.0.1:0`); `None` for Unix listeners.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok(),
        }
    }
}
