//! The daemon's connector: one request per connection, bounded retry.
//!
//! The protocol is deliberately stateless — a client connects, writes
//! one JSON line, reads one JSON line, and the server closes. That
//! makes connection loss trivially safe to retry: a request that never
//! produced a reply byte cannot have half-happened (analysis is pure;
//! at worst the server did work whose result the cache now holds). The
//! client therefore retries a dropped connection a bounded number of
//! times before surfacing [`ClientError::Dropped`] — the recovery path
//! the `serve.drop_conn` fault site exists to exercise.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use lcm_core::jsonw::{self, Json};
use lcm_detect::EngineKind;

use crate::wire;

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect / write / read (after retries, where retryable).
    Io(std::io::Error),
    /// The server accepted the connection but closed it without a reply
    /// on every attempt.
    Dropped {
        /// Connections attempted before giving up.
        attempts: usize,
    },
    /// The reply was not a parseable JSON line.
    BadReply(String),
    /// The server answered `"ok": false`; the payload is its `error`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Dropped { attempts } => {
                write!(
                    f,
                    "connection dropped without a reply ({attempts} attempts)"
                )
            }
            ClientError::BadReply(e) => write!(f, "unparseable reply: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connector to one daemon socket. Cheap to construct; holds no
/// connection between requests.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
    retries: usize,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `socket`, retrying a dropped
    /// connection once and waiting up to 60 s for a reply.
    pub fn new(socket: impl Into<PathBuf>) -> Client {
        Client {
            socket: socket.into(),
            retries: 1,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides how many *extra* attempts a dropped connection gets
    /// (`0` = fail on the first drop).
    #[must_use]
    pub fn retries(mut self, retries: usize) -> Client {
        self.retries = retries;
        self
    }

    /// Overrides the per-request reply timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// One connect → write → read-to-EOF exchange.
    fn round_trip_once(&self, line: &str) -> std::io::Result<String> {
        let mut conn = UnixStream::connect(&self.socket)?;
        conn.set_read_timeout(Some(self.timeout))?;
        conn.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            conn.write_all(b"\n")?;
        }
        conn.flush()?;
        let mut reply = String::new();
        conn.read_to_string(&mut reply)?;
        Ok(reply)
    }

    /// Sends one raw request line and returns the raw reply line,
    /// retrying (up to the configured count) when the server closes the
    /// connection without replying.
    pub fn request_line(&self, line: &str) -> Result<String, ClientError> {
        // A drop shows up as clean EOF *or* as a reset/broken-pipe,
        // depending on whether the peer had unread data when it closed.
        // Both are the same logical condition.
        let is_drop = |e: &std::io::Error| {
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
            )
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            match self.round_trip_once(line) {
                Ok(reply) if !reply.trim().is_empty() => return Ok(reply),
                // EOF without a byte: the server (or a fault) dropped us.
                Ok(_) => {
                    if attempts > self.retries {
                        return Err(ClientError::Dropped { attempts });
                    }
                }
                Err(e) if is_drop(&e) => {
                    if attempts > self.retries {
                        return Err(ClientError::Dropped { attempts });
                    }
                }
                // Anything else (socket missing, refused, timeout) is a
                // real failure; bounded retries still apply.
                Err(e) => {
                    if attempts > self.retries {
                        return Err(ClientError::Io(e));
                    }
                }
            }
        }
    }

    /// Sends one request and decodes the reply, mapping `"ok": false`
    /// to [`ClientError::Server`].
    pub fn request(&self, line: &str) -> Result<Json, ClientError> {
        let reply = self.request_line(line)?;
        let v = jsonw::parse(reply.trim()).map_err(|e| ClientError::BadReply(e.to_string()))?;
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            return Err(ClientError::Server(message));
        }
        Ok(v)
    }

    /// `{"cmd": "status"}` — liveness, uptime, queue occupancy.
    pub fn status(&self) -> Result<Json, ClientError> {
        self.request(r#"{"cmd":"status"}"#)
    }

    /// `{"cmd": "stats"}` — the daemon's monotonic counters.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.request(r#"{"cmd":"stats"}"#)
    }

    /// `{"cmd": "metrics"}` — the daemon's metrics registry as raw
    /// Prometheus text exposition (the reply is *not* JSON).
    pub fn metrics(&self) -> Result<String, ClientError> {
        self.request_line(r#"{"cmd":"metrics"}"#)
    }

    /// `{"cmd": "shutdown"}` — graceful stop; returns the ack.
    pub fn shutdown(&self) -> Result<Json, ClientError> {
        self.request(r#"{"cmd":"shutdown"}"#)
    }

    /// Analyzes inline mini-C source with the given engine.
    pub fn analyze_source(&self, source: &str, engine: EngineKind) -> Result<Json, ClientError> {
        self.request(&analyze_request(Some(source), None, engine))
    }

    /// Analyzes a file the *server* reads (the path must be visible to
    /// the daemon's filesystem, not the client's).
    pub fn analyze_file(&self, path: &str, engine: EngineKind) -> Result<Json, ClientError> {
        self.request(&analyze_request(None, Some(path), engine))
    }
}

/// Builds an analyze request line (exactly one of `source` / `file`).
pub fn analyze_request(source: Option<&str>, file: Option<&str>, engine: EngineKind) -> String {
    let mut members = vec![("cmd".to_string(), Json::Str("analyze".into()))];
    if let Some(s) = source {
        members.push(("source".into(), Json::Str(s.into())));
    }
    if let Some(f) = file {
        members.push(("file".into(), Json::Str(f.into())));
    }
    members.push(("engine".into(), Json::Str(wire::engine_name(engine).into())));
    Json::Obj(members).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Request;

    #[test]
    fn analyze_request_round_trips_through_the_parser() {
        let line = analyze_request(Some("int x; void f() { x = 1; }"), None, EngineKind::Stl);
        let parsed = crate::wire::parse_request(&line).unwrap();
        assert_eq!(
            parsed,
            Request::Analyze {
                source: Some("int x; void f() { x = 1; }".into()),
                file: None,
                engine: EngineKind::Stl,
            }
        );
        let line = analyze_request(None, Some("/tmp/prog.c"), EngineKind::Pht);
        assert!(matches!(
            crate::wire::parse_request(&line).unwrap(),
            Request::Analyze {
                source: None,
                engine: EngineKind::Pht,
                ..
            }
        ));
    }
}
