//! The daemon's connectors: the v1 one-shot [`Client`] and the v2
//! multiplexed [`Connection`].
//!
//! The v1 protocol is deliberately stateless — a client connects,
//! writes one JSON line, reads one JSON line, and the server closes.
//! That makes connection loss trivially safe to retry: a request that
//! never produced a complete reply cannot have half-happened (analysis
//! is pure; at worst the server did work whose result the cache now
//! holds). The client therefore retries a dropped connection a bounded
//! number of times — spaced by the deterministic, jitter-free
//! exponential [`backoff_delay`] schedule — before surfacing
//! [`ClientError::Dropped`]. A reply without its terminating newline is
//! treated exactly like a drop: that is what a torn frame (the
//! `serve.partial_write` fault) looks like from this side.
//!
//! [`Connection`] is the v2 connector: one persistent connection,
//! every frame carries a client-chosen numeric `id`, frames may be
//! pipelined without waiting for replies, and replies are matched by
//! `id` (they may arrive out of order). [`Connection::send_batch`]
//! packs many programs into one frame with one aggregated reply.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

use lcm_core::jsonw::{self, Json};
use lcm_detect::EngineKind;

use crate::conn::Stream;
use crate::wire;

// The deterministic, jitter-free retry schedule lives in `lcm-core` so
// the worker-fleet supervisor (which `lcm-serve` depends on) shares the
// identical timings; re-exported here because this is where callers
// historically found it.
pub use lcm_core::backoff::backoff_delay;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl ServerAddr {
    fn connect(&self) -> std::io::Result<Stream> {
        match self {
            ServerAddr::Unix(path) => Stream::connect_unix(path),
            ServerAddr::Tcp(addr) => Stream::connect_tcp(addr),
        }
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect / write / read (after retries, where retryable).
    Io(std::io::Error),
    /// The server accepted the connection but closed it without a
    /// complete reply (no bytes, or a torn frame) on every attempt.
    Dropped {
        /// Connections attempted before giving up.
        attempts: usize,
    },
    /// The reply was not a parseable JSON line.
    BadReply(String),
    /// The server answered `"ok": false`; the payload is its `error`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Dropped { attempts } => {
                write!(
                    f,
                    "connection dropped without a reply ({attempts} attempts)"
                )
            }
            ClientError::BadReply(e) => write!(f, "unparseable reply: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connector to one daemon. Cheap to construct; holds no connection
/// between v1 requests. [`Client::connect`] opens a persistent v2
/// [`Connection`].
#[derive(Debug, Clone)]
pub struct Client {
    addr: ServerAddr,
    retries: usize,
    timeout: Duration,
    retry_busy: usize,
}

impl Client {
    /// A client for the daemon at `socket`, retrying a dropped
    /// connection once and waiting up to 60 s for a reply.
    pub fn new(socket: impl Into<PathBuf>) -> Client {
        Client {
            addr: ServerAddr::Unix(socket.into()),
            retries: 1,
            timeout: Duration::from_secs(60),
            retry_busy: 0,
        }
    }

    /// A client for the daemon's TCP listener at `addr` (`host:port`).
    pub fn tcp(addr: impl Into<String>) -> Client {
        Client {
            addr: ServerAddr::Tcp(addr.into()),
            retries: 1,
            timeout: Duration::from_secs(60),
            retry_busy: 0,
        }
    }

    /// Overrides how many *extra* attempts a dropped connection gets
    /// (`0` = fail on the first drop). Retry `n` waits
    /// [`backoff_delay`]`(n)` first.
    #[must_use]
    pub fn retries(mut self, retries: usize) -> Client {
        self.retries = retries;
        self
    }

    /// Treats the daemon's shed-load `busy` reply as retryable: up to
    /// `retries` *extra* attempts, each preceded by the same
    /// deterministic [`backoff_delay`] schedule the drop path uses. Off
    /// by default (`0`): a `busy` surfaces as [`ClientError::Server`] on
    /// first contact, because silently waiting out an overloaded daemon
    /// is a policy the caller must opt into.
    #[must_use]
    pub fn retry_busy(mut self, retries: usize) -> Client {
        self.retry_busy = retries;
        self
    }

    /// Overrides the per-request reply timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// One connect → write → read-to-EOF exchange.
    fn round_trip_once(&self, line: &str) -> std::io::Result<String> {
        let mut conn = self.addr.connect()?;
        conn.set_read_timeout(Some(self.timeout))?;
        conn.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            conn.write_all(b"\n")?;
        }
        conn.flush()?;
        let mut reply = String::new();
        conn.read_to_string(&mut reply)?;
        Ok(reply)
    }

    /// Sends one raw request line and returns the raw reply, retrying
    /// (up to the configured count, spaced by [`backoff_delay`]) when
    /// the server closes the connection without a complete reply.
    pub fn request_line(&self, line: &str) -> Result<String, ClientError> {
        // A drop shows up as clean EOF *or* as a reset/broken-pipe,
        // depending on whether the peer had unread data when it closed.
        // Both are the same logical condition.
        let is_drop = |e: &std::io::Error| {
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
            )
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            match self.round_trip_once(line) {
                // A complete reply always ends in a newline; a
                // non-empty reply without one is a torn frame (the
                // `serve.partial_write` fault) — retryable like a drop.
                Ok(reply) if reply.ends_with('\n') => return Ok(reply),
                Ok(_) => {
                    if attempts > self.retries {
                        return Err(ClientError::Dropped { attempts });
                    }
                }
                Err(e) if is_drop(&e) => {
                    if attempts > self.retries {
                        return Err(ClientError::Dropped { attempts });
                    }
                }
                // Anything else (socket missing, refused, timeout) is a
                // real failure; bounded retries still apply.
                Err(e) => {
                    if attempts > self.retries {
                        return Err(ClientError::Io(e));
                    }
                }
            }
            std::thread::sleep(backoff_delay(attempts));
        }
    }

    /// Sends one request and decodes the reply, mapping `"ok": false`
    /// to [`ClientError::Server`]. With [`Client::retry_busy`] armed, a
    /// `busy` shed-load reply is retried (bounded, backoff-spaced)
    /// before surfacing — the daemon sheds deterministically, so a
    /// short wait is usually enough for the queue to drain.
    pub fn request(&self, line: &str) -> Result<Json, ClientError> {
        let mut busy_attempts = 0;
        loop {
            let reply = self.request_line(line)?;
            let v = jsonw::parse(reply.trim()).map_err(|e| ClientError::BadReply(e.to_string()))?;
            if v.get("ok").and_then(Json::as_bool) == Some(false) {
                let message = v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string();
                if message.starts_with("busy") && busy_attempts < self.retry_busy {
                    busy_attempts += 1;
                    std::thread::sleep(backoff_delay(busy_attempts));
                    continue;
                }
                return Err(ClientError::Server(message));
            }
            return Ok(v);
        }
    }

    /// `{"cmd": "status"}` — liveness, uptime, queue occupancy.
    pub fn status(&self) -> Result<Json, ClientError> {
        self.request(r#"{"cmd":"status"}"#)
    }

    /// `{"cmd": "stats"}` — the daemon's monotonic counters.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.request(r#"{"cmd":"stats"}"#)
    }

    /// `{"cmd": "metrics"}` — the daemon's metrics registry as raw
    /// Prometheus text exposition (the reply is *not* JSON).
    pub fn metrics(&self) -> Result<String, ClientError> {
        self.request_line(r#"{"cmd":"metrics"}"#)
    }

    /// `{"cmd": "shutdown"}` — graceful stop; returns the ack.
    pub fn shutdown(&self) -> Result<Json, ClientError> {
        self.request(r#"{"cmd":"shutdown"}"#)
    }

    /// Analyzes inline mini-C source with the given engine.
    pub fn analyze_source(&self, source: &str, engine: EngineKind) -> Result<Json, ClientError> {
        self.request(&analyze_request(Some(source), None, engine))
    }

    /// Analyzes a file the *server* reads (the path must be visible to
    /// the daemon's filesystem, not the client's).
    pub fn analyze_file(&self, path: &str, engine: EngineKind) -> Result<Json, ClientError> {
        self.request(&analyze_request(None, Some(path), engine))
    }

    /// Opens a persistent v2 multiplexed connection. Ids are numeric
    /// and chosen by the connection; pipeline as deep as you like and
    /// match replies by the returned ids.
    pub fn connect(&self) -> Result<Connection, ClientError> {
        let writer = self.addr.connect().map_err(ClientError::Io)?;
        let reader = writer.try_clone().map_err(ClientError::Io)?;
        reader
            .set_read_timeout(Some(self.timeout))
            .map_err(ClientError::Io)?;
        Ok(Connection {
            writer,
            reader,
            buf: Vec::with_capacity(4096),
            scanned: 0,
            next_id: 0,
        })
    }
}

/// A persistent v2 connection: pipelined sends, id-matched receives.
///
/// `send_*` methods write one frame and return its `id` without
/// waiting; [`Connection::recv`] blocks for the *next* reply on the
/// wire, whichever request it answers. A typical pipelined loop keeps
/// `depth` requests in flight:
///
/// ```text
/// for _ in 0..depth { conn.send_analyze(src, engine)?; }
/// loop {
///     let (id, reply) = conn.recv()?;
///     conn.send_analyze(next_src, engine)?;
/// }
/// ```
#[derive(Debug)]
pub struct Connection {
    writer: Stream,
    reader: Stream,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline, so a reply
    /// spanning many reads (a large batch reply) is scanned once
    /// overall, not re-scanned from the start after every read.
    scanned: usize,
    next_id: u64,
}

impl Connection {
    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Writes one raw frame carrying `id` (appends the newline).
    pub fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| {
                if line.ends_with('\n') {
                    Ok(())
                } else {
                    self.writer.write_all(b"\n")
                }
            })
            .and_then(|()| self.writer.flush())
            .map_err(ClientError::Io)
    }

    /// Pipelines one analyze frame; returns its id immediately.
    pub fn send_analyze(&mut self, source: &str, engine: EngineKind) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let mut members = vec![
            ("cmd".to_string(), Json::Str("analyze".into())),
            ("id".to_string(), Json::Num(id as f64)),
            ("source".to_string(), Json::Str(source.into())),
            (
                "engine".to_string(),
                Json::Str(wire::engine_name(engine).into()),
            ),
        ];
        let line = Json::Obj(std::mem::take(&mut members)).render();
        self.send_line(&line)?;
        Ok(id)
    }

    /// Pipelines one batched analyze frame (`sources` all analyzed with
    /// their own engine, one aggregated reply); returns its id.
    pub fn send_batch(&mut self, items: &[(&str, EngineKind)]) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let batch: Vec<Json> = items
            .iter()
            .map(|(src, engine)| {
                Json::Obj(vec![
                    ("source".to_string(), Json::Str((*src).into())),
                    (
                        "engine".to_string(),
                        Json::Str(wire::engine_name(*engine).into()),
                    ),
                ])
            })
            .collect();
        let line = Json::Obj(vec![
            ("cmd".to_string(), Json::Str("analyze_batch".into())),
            ("id".to_string(), Json::Num(id as f64)),
            ("batch".to_string(), Json::Arr(batch)),
        ])
        .render();
        self.send_line(&line)?;
        Ok(id)
    }

    /// Pipelines one control frame (`status` / `stats` / `shutdown` /
    /// `metrics`); returns its id.
    pub fn send_cmd(&mut self, cmd: &str) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let line = Json::Obj(vec![
            ("cmd".to_string(), Json::Str(cmd.into())),
            ("id".to_string(), Json::Num(id as f64)),
        ])
        .render();
        self.send_line(&line)?;
        Ok(id)
    }

    /// Blocks for the next reply frame on the wire (replies may arrive
    /// in any order) and returns `(id, reply)`. The reply is returned
    /// even when `"ok": false` — per-request failures (`busy`, compile
    /// errors) are data to a pipelining caller, not connection faults.
    pub fn recv(&mut self) -> Result<(u64, Json), ClientError> {
        let line = self.recv_raw_line()?;
        let v = jsonw::parse(line.trim()).map_err(|e| ClientError::BadReply(e.to_string()))?;
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::BadReply(format!("reply without numeric id: {line}")))?;
        Ok((id, v))
    }

    /// Reads one complete raw reply line, whether or not it carries an
    /// `id` (per-frame decode errors for unparseable frames do not).
    /// EOF mid-line (a torn frame — the `serve.partial_write` fault) or
    /// before any byte reports as [`ClientError::Dropped`]; the caller
    /// owns reconnection.
    pub fn recv_raw_line(&mut self) -> Result<String, ClientError> {
        let mut chunk = [0u8; 65536];
        loop {
            if let Some(nl) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(self.scanned + nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                self.scanned = 0;
                return String::from_utf8(line)
                    .map_err(|_| ClientError::BadReply("reply not UTF-8".into()));
            }
            self.scanned = self.buf.len();
            match self.reader.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Dropped { attempts: 1 }),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::BrokenPipe
                            | std::io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    return Err(ClientError::Dropped { attempts: 1 })
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// Builds an analyze request line (exactly one of `source` / `file`).
pub fn analyze_request(source: Option<&str>, file: Option<&str>, engine: EngineKind) -> String {
    let mut members = vec![("cmd".to_string(), Json::Str("analyze".into()))];
    if let Some(s) = source {
        members.push(("source".into(), Json::Str(s.into())));
    }
    if let Some(f) = file {
        members.push(("file".into(), Json::Str(f.into())));
    }
    members.push(("engine".into(), Json::Str(wire::engine_name(engine).into())));
    Json::Obj(members).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Request;

    #[test]
    fn analyze_request_round_trips_through_the_parser() {
        let line = analyze_request(Some("int x; void f() { x = 1; }"), None, EngineKind::Stl);
        let parsed = crate::wire::parse_request(&line).unwrap();
        assert_eq!(
            parsed,
            Request::Analyze {
                source: Some("int x; void f() { x = 1; }".into()),
                file: None,
                engine: EngineKind::Stl,
            }
        );
        let line = analyze_request(None, Some("/tmp/prog.c"), EngineKind::Pht);
        assert!(matches!(
            crate::wire::parse_request(&line).unwrap(),
            Request::Analyze {
                source: None,
                engine: EngineKind::Pht,
                ..
            }
        ));
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let ms = |n| backoff_delay(n).as_millis();
        assert_eq!(ms(1), 5);
        assert_eq!(ms(2), 10);
        assert_eq!(ms(3), 20);
        assert_eq!(ms(4), 40);
        assert_eq!(ms(5), 80);
        assert_eq!(ms(8), 500, "capped");
        assert_eq!(ms(100), 500, "stays capped, no overflow");
        // Jitter-free: the same attempt always gets the same delay.
        assert_eq!(backoff_delay(3), backoff_delay(3));
    }
}
