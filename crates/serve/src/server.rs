//! The analysis daemon.
//!
//! A [`Server`] binds a Unix domain socket and serves the wire protocol
//! with a fixed pool of worker threads behind a *bounded* connection
//! queue — a client burst beyond the bound is answered with a `busy`
//! error immediately rather than queued without limit (the same
//! "degrade, don't fall over" discipline as the resource governor).
//!
//! Worker isolation reuses the PR 1–3 machinery wholesale: each analyze
//! request runs under the configured [`DetectorConfig`] budgets (plus an
//! optional per-request `timeout_ms` override), worker panics degrade
//! the one function, and a configured cache directory routes every
//! request through `lcm-store` so repeat submissions short-circuit the
//! engines entirely.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lcm_core::fault::{site, FaultPlan};
use lcm_detect::{Detector, DetectorConfig, EngineKind, ModuleReport};
use lcm_store::Store;

use crate::wire::{self, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path (a stale file at this path is replaced).
    pub socket: PathBuf,
    /// Worker threads serving requests. `0` means available cores.
    pub workers: usize,
    /// Connections queued beyond the in-flight workers before new ones
    /// are answered `busy`.
    pub queue_cap: usize,
    /// Directory holding `results.lcmstore`; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Analysis configuration every request runs under.
    pub detector: DetectorConfig,
    /// Armed fault sites (tests). `LCM_FAULT` is merged in as well.
    pub faults: FaultPlan,
}

impl ServeConfig {
    /// A default configuration on the given socket path.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            workers: 0,
            queue_cap: 32,
            cache_dir: None,
            detector: DetectorConfig::default(),
            faults: FaultPlan::default(),
        }
    }
}

/// Monotonic counters exposed by `stats` (and used by tests).
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections accepted.
    pub requests: AtomicU64,
    /// Analyze requests that ran (hit or miss).
    pub analyses: AtomicU64,
    /// Functions served from the cache.
    pub cache_hits: AtomicU64,
    /// Functions analyzed and stored.
    pub cache_misses: AtomicU64,
    /// Functions degraded across all requests.
    pub degraded: AtomicU64,
    /// Connections refused with `busy`.
    pub rejected: AtomicU64,
    /// Connections dropped by the `serve.drop_conn` fault.
    pub dropped: AtomicU64,
    /// Requests that failed to parse.
    pub parse_errors: AtomicU64,
}

/// Registry-backed handles the daemon reports through; the same
/// numbers surface in `{"cmd":"metrics"}` (Prometheus) and the
/// enriched tail of `{"cmd":"stats"}`.
struct ServeMetrics {
    requests: lcm_obs::metrics::Counter,
    /// Analyze requests completed, indexed pht/stl/psf.
    analyses: [lcm_obs::metrics::Counter; 3],
    /// Cumulative cache traffic (shared with `lcm-store`'s counters),
    /// indexed hits/misses/bypassed.
    cache: [lcm_obs::metrics::Counter; 3],
    queue_wait: lcm_obs::metrics::Histogram,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        use lcm_obs::metrics::{global, latency_buckets, names};
        let g = global();
        ServeMetrics {
            requests: g.counter(names::SERVE_REQUESTS, "Daemon connections accepted"),
            analyses: [
                g.counter(
                    names::SERVE_ANALYSES_PHT,
                    "Analyze requests completed with the pht engine",
                ),
                g.counter(
                    names::SERVE_ANALYSES_STL,
                    "Analyze requests completed with the stl engine",
                ),
                g.counter(
                    names::SERVE_ANALYSES_PSF,
                    "Analyze requests completed with the psf engine",
                ),
            ],
            cache: [
                g.counter(names::CACHE_HITS, "Function results served from the store"),
                g.counter(
                    names::CACHE_MISSES,
                    "Function results analyzed and inserted into the store",
                ),
                g.counter(
                    names::CACHE_BYPASS,
                    "Function results that skipped the store (degraded/uncacheable)",
                ),
            ],
            queue_wait: g.histogram(
                names::SERVE_QUEUE_WAIT,
                "Time a queued daemon connection waited for a worker",
                latency_buckets(),
            ),
        }
    }

    fn analyses_for(&self, engine: EngineKind) -> &lcm_obs::metrics::Counter {
        match engine {
            EngineKind::Pht => &self.analyses[0],
            EngineKind::Stl => &self.analyses[1],
            EngineKind::Psf => &self.analyses[2],
        }
    }
}

struct QueueState {
    /// Queued connections with their enqueue time (queue-wait metric).
    queue: std::collections::VecDeque<(UnixStream, Instant)>,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    detector: Detector,
    store: Option<Store>,
    counters: Counters,
    metrics: ServeMetrics,
    queue: Mutex<QueueState>,
    ready: Condvar,
    started: Instant,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
    faults: FaultPlan,
}

impl Server {
    /// Binds the socket and opens the cache. An unopenable cache
    /// *disables* caching (with a line on stderr) instead of failing
    /// the server: a broken disk must not take analysis down.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        // Replace a stale socket file from a previous run.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        let faults = config.faults.merged_with_env();
        let store = match &config.cache_dir {
            None => None,
            Some(dir) => {
                let open = std::fs::create_dir_all(dir).and_then(|()| {
                    Store::open_with_faults(&dir.join("results.lcmstore"), faults.clone())
                });
                match open {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!(
                            "lcm-serve: cache at {} unavailable ({e}); serving uncached",
                            dir.display()
                        );
                        None
                    }
                }
            }
        };
        let detector = Detector::new(config.detector.clone());
        Ok(Server {
            shared: Arc::new(Shared {
                detector,
                store,
                counters: Counters::default(),
                metrics: ServeMetrics::new(),
                queue: Mutex::new(QueueState {
                    queue: std::collections::VecDeque::new(),
                    shutdown: false,
                }),
                ready: Condvar::new(),
                started: Instant::now(),
                config,
            }),
            listener,
            faults,
        })
    }

    /// Runs the accept loop until a `shutdown` request, then drains the
    /// queue, joins the workers, and removes the socket file.
    pub fn run(self) -> std::io::Result<()> {
        let workers = match self.shared.config.workers {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        };
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = self.shared.clone();
            pool.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let mut accepted: usize = 0;
        loop {
            if self.shared.queue.lock().unwrap().shutdown {
                break;
            }
            match self.listener.accept() {
                Ok((conn, _)) => {
                    let ordinal = accepted;
                    accepted += 1;
                    self.shared
                        .counters
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.requests.inc();
                    if self.faults.fires(site::SERVE_DROP_CONN, ordinal) {
                        // Injected connection loss: close without a
                        // byte of reply. Clients retry once.
                        self.shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
                        drop(conn);
                        continue;
                    }
                    let mut state = self.shared.queue.lock().unwrap();
                    if state.queue.len() >= self.shared.config.queue_cap.max(1) {
                        drop(state);
                        self.shared
                            .counters
                            .rejected
                            .fetch_add(1, Ordering::Relaxed);
                        let mut conn = conn;
                        let _ = conn.write_all(wire::error_reply("busy: queue full").as_bytes());
                        continue;
                    }
                    state.queue.push_back((conn, Instant::now()));
                    drop(state);
                    self.shared.ready.notify_one();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        // Wake every worker so they observe the shutdown flag.
        self.shared.ready.notify_all();
        for t in pool {
            let _ = t.join();
        }
        std::fs::remove_file(&self.shared.config.socket).ok();
        Ok(())
    }

    /// Binds and runs on a background thread (tests / embedding).
    /// Returns once the socket is accepting.
    pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let socket = server.shared.config.socket.clone();
        let shared = server.shared.clone();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            socket,
            shared,
            thread,
        })
    }
}

/// Handle to a background server.
pub struct ServerHandle {
    socket: PathBuf,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The socket the server listens on.
    pub fn socket(&self) -> &PathBuf {
        &self.socket
    }

    /// Counter snapshot: `(requests, analyses, cache_hits, dropped)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        let c = &self.shared.counters;
        (
            c.requests.load(Ordering::Relaxed),
            c.analyses.load(Ordering::Relaxed),
            c.cache_hits.load(Ordering::Relaxed),
            c.dropped.load(Ordering::Relaxed),
        )
    }

    /// Waits for the server to exit (after a `shutdown` request).
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (conn, enqueued) = {
            let mut state = shared.queue.lock().unwrap();
            loop {
                if let Some(c) = state.queue.pop_front() {
                    break c;
                }
                if state.shutdown {
                    return;
                }
                state = shared.ready.wait(state).unwrap();
            }
        };
        shared.metrics.queue_wait.observe(enqueued.elapsed());
        handle_conn(shared, conn);
    }
}

/// Reads the request line (bounded, with a read timeout so a stalled
/// client cannot pin a worker forever).
fn read_line(conn: &mut UnixStream) -> std::io::Result<String> {
    conn.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 4096];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.contains(&b'\n') {
            break;
        }
        // 64 MiB of request without a newline is an attack or a bug.
        if buf.len() > 64 << 20 {
            return Err(std::io::Error::other("request too large"));
        }
    }
    let end = buf.iter().position(|&b| b == b'\n').unwrap_or(buf.len());
    String::from_utf8(buf[..end].to_vec()).map_err(|_| std::io::Error::other("request not UTF-8"))
}

fn handle_conn(shared: &Shared, mut conn: UnixStream) {
    let line = match read_line(&mut conn) {
        Ok(l) => l,
        Err(_) => return, // client vanished; nothing to answer
    };
    let parsed = wire::parse_request(&line);
    let mut span = lcm_obs::span("serve_request", "serve");
    span.arg_str(
        "cmd",
        match &parsed {
            Err(_) => "parse_error",
            Ok(Request::Status) => "status",
            Ok(Request::Stats) => "stats",
            Ok(Request::Metrics) => "metrics",
            Ok(Request::Shutdown) => "shutdown",
            Ok(Request::Analyze { .. }) => "analyze",
        },
    );
    if let Ok(Request::Analyze { engine, .. }) = &parsed {
        span.arg_str("engine", engine.label());
    }
    let reply = match parsed {
        Err(e) => {
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            wire::error_reply(&e)
        }
        Ok(Request::Status) => status_reply(shared),
        Ok(Request::Stats) => stats_reply(shared),
        Ok(Request::Metrics) => lcm_obs::metrics::global().render_prometheus(),
        Ok(Request::Shutdown) => {
            let mut state = shared.queue.lock().unwrap();
            state.shutdown = true;
            drop(state);
            shared.ready.notify_all();
            let mut line = lcm_core::jsonw::Json::Obj(vec![
                ("ok".into(), lcm_core::jsonw::Json::Bool(true)),
                ("shutting_down".into(), lcm_core::jsonw::Json::Bool(true)),
            ])
            .render();
            line.push('\n');
            line
        }
        Ok(Request::Analyze {
            source,
            file,
            engine,
        }) => analyze(shared, source, file, engine),
    };
    let _ = conn.write_all(reply.as_bytes());
    let _ = conn.flush();
}

fn analyze(
    shared: &Shared,
    source: Option<String>,
    file: Option<String>,
    engine: EngineKind,
) -> String {
    let source = match (source, file) {
        (Some(s), _) => s,
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => return wire::error_reply(&format!("cannot read `{path}`: {e}")),
        },
        (None, None) => return wire::error_reply("analyze needs `source` or `file`"),
    };
    let module = match lcm_minic::compile(&source) {
        Ok(m) => m,
        Err(e) => return wire::error_reply(&format!("compile error: {e}")),
    };
    shared.counters.analyses.fetch_add(1, Ordering::Relaxed);
    shared.metrics.analyses_for(engine).inc();
    let report: ModuleReport = match &shared.store {
        Some(store) => lcm_store::analyze_module_cached(&shared.detector, &module, engine, store),
        None => shared.detector.analyze_module(&module, engine),
    };
    let counts = lcm_store::CacheCounts::of(&report);
    shared
        .counters
        .cache_hits
        .fetch_add(counts.hits, Ordering::Relaxed);
    shared
        .counters
        .cache_misses
        .fetch_add(counts.misses, Ordering::Relaxed);
    shared
        .counters
        .degraded
        .fetch_add(report.degraded_count() as u64, Ordering::Relaxed);
    wire::analyze_reply(&report, engine)
}

fn status_reply(shared: &Shared) -> String {
    use lcm_core::jsonw::Json;
    let queue_len = shared.queue.lock().unwrap().queue.len();
    let mut line = Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        (
            "uptime_secs".into(),
            Json::Num(shared.started.elapsed().as_secs_f64()),
        ),
        ("queue_len".into(), Json::Num(queue_len as f64)),
        (
            "cache".into(),
            Json::Str(if shared.store.is_some() {
                "enabled".into()
            } else {
                "disabled".into()
            }),
        ),
    ])
    .render();
    line.push('\n');
    line
}

fn stats_reply(shared: &Shared) -> String {
    use lcm_core::jsonw::Json;
    let c = &shared.counters;
    let n = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
    let mut members = vec![
        ("ok".into(), Json::Bool(true)),
        ("requests".into(), n(&c.requests)),
        ("analyses".into(), n(&c.analyses)),
        ("cache_hits".into(), n(&c.cache_hits)),
        ("cache_misses".into(), n(&c.cache_misses)),
        ("degraded".into(), n(&c.degraded)),
        ("rejected".into(), n(&c.rejected)),
        ("dropped".into(), n(&c.dropped)),
        ("parse_errors".into(), n(&c.parse_errors)),
    ];
    if let Some(store) = &shared.store {
        let s = store.stats();
        members.push(("store_entries".into(), Json::Num(store.len() as f64)));
        members.push((
            "store_recovered_drop".into(),
            Json::Num(s.recovered_drop as f64),
        ));
    }
    // Enrichment (PR 5): appended after every pre-existing field so old
    // clients' replies stay byte-stable up to here.
    let m = &shared.metrics;
    members.push((
        "uptime_secs".into(),
        Json::Num(shared.started.elapsed().as_secs_f64()),
    ));
    members.push(("analyses_pht".into(), Json::Num(m.analyses[0].get() as f64)));
    members.push(("analyses_stl".into(), Json::Num(m.analyses[1].get() as f64)));
    members.push(("analyses_psf".into(), Json::Num(m.analyses[2].get() as f64)));
    members.push((
        "cache_traffic_hits".into(),
        Json::Num(m.cache[0].get() as f64),
    ));
    members.push((
        "cache_traffic_misses".into(),
        Json::Num(m.cache[1].get() as f64),
    ));
    members.push((
        "cache_traffic_bypassed".into(),
        Json::Num(m.cache[2].get() as f64),
    ));
    let mut line = Json::Obj(members).render();
    line.push('\n');
    line
}
