//! The analysis daemon.
//!
//! A [`Server`] binds a Unix domain socket (and, opted in, a TCP
//! address — same protocol code, see [`crate::conn`]) and serves the
//! wire protocol with a fixed pool of worker threads behind a *bounded*
//! in-flight request queue — a burst beyond the bound is answered with
//! a `busy` error naming the rejected frame's `id` immediately rather
//! than queued without limit (the same "degrade, don't fall over"
//! discipline as the resource governor).
//!
//! Connections are **persistent and multiplexed** (protocol v2): a
//! per-connection reader thread decodes frames and feeds the shared
//! worker pool; workers write each reply through the connection's
//! serialized writer half as soon as it is ready, so replies can
//! overtake each other and are matched by `id`. A per-connection
//! fairness cap bounds how many frames one connection may have in
//! flight — past it the reader simply stops reading (backpressure in
//! the socket buffer), so one pipelining client cannot starve others
//! out of the global queue. A first frame without an `id` is a v1
//! one-shot connection and is served byte-identically to the original
//! protocol: one reply, then close.
//!
//! Worker isolation reuses the PR 1–3 machinery wholesale: each analyze
//! request runs under the configured [`DetectorConfig`] budgets, worker
//! panics degrade the one function, and a configured cache directory
//! routes every request through `lcm-store` so repeat submissions
//! short-circuit the engines entirely. On top of the store, a
//! hot-reply memo replays the rendered reply bytes of fully cache-hit
//! programs, so a warm repeat costs a hash lookup instead of a
//! compile + store probe + render.

use std::collections::HashSet;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lcm_core::fault::{site, FaultPlan};
use lcm_core::jsonw::Json;
use lcm_detect::{Detector, DetectorConfig, EngineKind, ModuleReport};
use lcm_store::Store;

use crate::conn::{Listener, Stream};
use crate::wire::{self, AnalyzeItem, BatchOutcome, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path (a stale file at this path is replaced).
    pub socket: PathBuf,
    /// Optional TCP listen address (`host:port`; `host:0` picks a free
    /// port, see [`ServerHandle::tcp_addr`]). The TCP listener serves
    /// the identical protocol through the identical code path.
    pub tcp: Option<String>,
    /// Worker threads serving requests. `0` means available cores.
    pub workers: usize,
    /// Requests queued beyond the in-flight workers before new frames
    /// are answered `busy` (naming the rejected `id` on v2).
    pub queue_cap: usize,
    /// Frames one connection may have in flight (queued + executing)
    /// before its reader stops reading further frames — backpressure
    /// that keeps one pipelining client from monopolizing the queue.
    pub fairness_cap: usize,
    /// Per-frame size cap; longer request lines are answered with a
    /// per-frame error (v2) or an error-then-close (v1). Defaults to
    /// [`wire::MAX_FRAME`]; tests shrink it.
    pub max_frame: usize,
    /// Directory holding `results.lcmstore`; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Analysis configuration every request runs under.
    pub detector: DetectorConfig,
    /// Armed fault sites (tests). `LCM_FAULT` is merged in as well.
    pub faults: FaultPlan,
    /// Worker *processes* for crash-isolated analysis (`--fleet N`).
    /// `0` (the default) analyzes in-process; `N > 0` routes every
    /// analyze through an `lcm_fleet::Fleet` of `N` supervised
    /// children. Rendered replies are byte-identical either way.
    pub fleet: usize,
    /// Worker command line override for fleet mode. `None` uses the
    /// fleet default (re-execute the current binary). Tests must set
    /// this — their "current binary" is the test harness.
    pub fleet_cmd: Option<Vec<String>>,
    /// Append-only JSONL supervision event log for fleet mode
    /// (`--events-out`): kills, restarts, steals, redeliveries, and
    /// crash forensics records. `None` disables the log.
    pub events_out: Option<PathBuf>,
    /// Install SIGTERM/SIGINT handlers that trigger the same graceful
    /// drain as a `shutdown` request. Off by default (a library user's
    /// process-wide signal dispositions are not ours to change); the
    /// `lcm-cli serve` binary turns it on.
    pub handle_signals: bool,
}

impl ServeConfig {
    /// A default configuration on the given socket path.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            tcp: None,
            workers: 0,
            queue_cap: 32,
            fairness_cap: 16,
            max_frame: wire::MAX_FRAME,
            cache_dir: None,
            detector: DetectorConfig::default(),
            faults: FaultPlan::default(),
            fleet: 0,
            fleet_cmd: None,
            events_out: None,
            handle_signals: false,
        }
    }
}

/// Monotonic counters exposed by `stats` (and used by tests).
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections accepted.
    pub requests: AtomicU64,
    /// Analyze requests that ran (hit or miss; batch items count one
    /// each).
    pub analyses: AtomicU64,
    /// Functions served from the cache.
    pub cache_hits: AtomicU64,
    /// Functions analyzed and stored.
    pub cache_misses: AtomicU64,
    /// Functions degraded across all requests.
    pub degraded: AtomicU64,
    /// Frames refused with `busy` (queue full).
    pub rejected: AtomicU64,
    /// Connections dropped by the `serve.drop_conn` fault.
    pub dropped: AtomicU64,
    /// Frames that failed to parse.
    pub parse_errors: AtomicU64,
    /// v2 frames received (any frame carrying an `id`).
    pub frames: AtomicU64,
    /// Batched analyze frames received.
    pub batches: AtomicU64,
    /// Programs submitted inside batch frames.
    pub batch_items: AtomicU64,
    /// Replies torn mid-write by the `serve.partial_write` fault.
    pub torn_writes: AtomicU64,
    /// Queued requests answered `shutting down` by the shutdown drain.
    pub drained: AtomicU64,
}

/// Registry-backed handles the daemon reports through; the same
/// numbers surface in `{"cmd":"metrics"}` (Prometheus) and the
/// enriched tail of `{"cmd":"stats"}`.
struct ServeMetrics {
    requests: lcm_obs::metrics::Counter,
    /// Analyze requests completed, indexed pht/stl/psf.
    analyses: [lcm_obs::metrics::Counter; 3],
    /// Cumulative cache traffic (shared with `lcm-store`'s counters),
    /// indexed hits/misses/bypassed.
    cache: [lcm_obs::metrics::Counter; 3],
    queue_wait: lcm_obs::metrics::Histogram,
    frames: lcm_obs::metrics::Counter,
    batch_items: lcm_obs::metrics::Counter,
    busy: lcm_obs::metrics::Counter,
    /// Enqueue → reply-written latency of analyze frames.
    request_latency: lcm_obs::metrics::Histogram,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        use lcm_obs::metrics::{global, latency_buckets, names};
        let g = global();
        ServeMetrics {
            requests: g.counter(names::SERVE_REQUESTS, "Daemon connections accepted"),
            analyses: [
                g.counter(
                    names::SERVE_ANALYSES_PHT,
                    "Analyze requests completed with the pht engine",
                ),
                g.counter(
                    names::SERVE_ANALYSES_STL,
                    "Analyze requests completed with the stl engine",
                ),
                g.counter(
                    names::SERVE_ANALYSES_PSF,
                    "Analyze requests completed with the psf engine",
                ),
            ],
            cache: [
                g.counter(names::CACHE_HITS, "Function results served from the store"),
                g.counter(
                    names::CACHE_MISSES,
                    "Function results analyzed and inserted into the store",
                ),
                g.counter(
                    names::CACHE_BYPASS,
                    "Function results that skipped the store (degraded/uncacheable)",
                ),
            ],
            queue_wait: g.histogram(
                names::SERVE_QUEUE_WAIT,
                "Time a queued daemon request waited for a worker",
                latency_buckets(),
            ),
            frames: g.counter(names::SERVE_FRAMES, "v2 protocol frames received"),
            batch_items: g.counter(
                names::SERVE_BATCH_ITEMS,
                "Programs submitted inside batched analyze frames",
            ),
            busy: g.counter(
                names::SERVE_BUSY,
                "Frames shed with a busy reply (queue full)",
            ),
            request_latency: g.histogram(
                names::SERVE_REQUEST_LATENCY,
                "Enqueue-to-reply latency of analyze frames",
                latency_buckets(),
            ),
        }
    }

    fn analyses_for(&self, engine: EngineKind) -> &lcm_obs::metrics::Counter {
        match engine {
            EngineKind::Pht => &self.analyses[0],
            EngineKind::Stl => &self.analyses[1],
            EngineKind::Psf => &self.analyses[2],
        }
    }
}

/// The per-connection state shared between its reader thread and the
/// workers answering its frames.
struct ConnShared {
    /// The writer half. One lock per reply serializes frames; replies
    /// from different workers interleave *between* lines, never inside
    /// one.
    writer: Mutex<Stream>,
    /// Rendered `id`s of this connection's queued/executing frames
    /// (duplicate detection + the fairness cap).
    inflight: Mutex<HashSet<String>>,
    /// Signalled when an in-flight frame completes (fairness-cap wait).
    space: Condvar,
}

impl ConnShared {
    /// Marks `id` no longer in flight and wakes the reader if it is
    /// blocked on the fairness cap.
    fn complete(&self, id: &str) {
        self.inflight.lock().unwrap().remove(id);
        self.space.notify_all();
    }
}

/// What a queued job runs.
enum JobKind {
    One(AnalyzeItem),
    Batch(Vec<AnalyzeItem>),
}

/// One queued request: a decoded analyze (or batch) frame bound to the
/// connection its reply must go to.
struct Job {
    id: Option<Json>,
    kind: JobKind,
    conn: Arc<ConnShared>,
    enqueued: Instant,
}

struct WorkState {
    queue: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    detector: Detector,
    store: Option<Store>,
    /// The worker-process fleet (`--fleet N`); `None` analyzes
    /// in-process.
    fleet: Option<lcm_fleet::Fleet>,
    counters: Counters,
    metrics: ServeMetrics,
    work: Mutex<WorkState>,
    ready: Condvar,
    /// Signalled (with the `work` mutex) when the shutdown flag flips;
    /// separate from `ready` so an `enqueue` `notify_one` meant for a
    /// worker can never be consumed by the run loop's shutdown wait.
    stop: Condvar,
    started: Instant,
    faults: FaultPlan,
    /// Global reply ordinal, the index `serve.partial_write` fires on.
    replies: AtomicU64,
    /// Hot-reply memo: rendered v1 reply lines of *fully cache-hit*
    /// runs, keyed by engine and source text. Only a run where every
    /// function came back a store hit (no misses, bypasses, or
    /// degradations) is memoized — re-running such a request against
    /// the append-only store reproduces the identical bytes, so the
    /// replay is indistinguishable from a fresh run and the
    /// daemon-vs-in-process byte-equality pin holds. Bounded by
    /// [`MEMO_CAP`]; counters advance on replay exactly as a re-run
    /// would advance them. Keyed by source text, one slot per engine,
    /// so lookups borrow the incoming source instead of cloning it.
    memo: Mutex<std::collections::HashMap<String, [Option<MemoReply>; 3]>>,
}

/// A memoized hot reply: the rendered v1 line plus the counter deltas
/// replaying it must apply.
struct MemoReply {
    line: Arc<str>,
    /// Function-level cache hits the reply reports (the function
    /// count, since only fully-hit runs are memoized).
    hits: u64,
}

/// Hot-reply memo entries kept before new inserts are skipped (the
/// memo never evicts — eviction would make replay behavior depend on
/// traffic order).
const MEMO_CAP: usize = 1024;

/// The memo slot index of an engine (mirrors `ServeMetrics::analyses`).
fn engine_slot(engine: EngineKind) -> usize {
    match engine {
        EngineKind::Pht => 0,
        EngineKind::Stl => 1,
        EngineKind::Psf => 2,
    }
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.work.lock().unwrap().shutdown
    }

    /// Writes one reply line through the connection's writer half. The
    /// `serve.partial_write` fault tears the frame here: half the bytes
    /// go out, then the connection is shut down — the client sees a
    /// line with no terminating newline and must treat it as a drop.
    fn write_reply(&self, conn: &ConnShared, reply: &str) {
        let ordinal = self.replies.fetch_add(1, Ordering::Relaxed) as usize;
        let mut w = conn.writer.lock().unwrap();
        if self.faults.fires(site::SERVE_PARTIAL_WRITE, ordinal) {
            self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
            let torn = &reply.as_bytes()[..reply.len() / 2];
            let _ = w.write_all(torn);
            let _ = w.flush();
            w.shutdown();
            return;
        }
        let _ = w.write_all(reply.as_bytes());
        let _ = w.flush();
    }
}

/// A bound (not yet running) server.
pub struct Server {
    listeners: Vec<Listener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the socket (and the TCP address, when configured) and
    /// opens the cache. An unopenable cache *disables* caching (with a
    /// line on stderr) instead of failing the server: a broken disk
    /// must not take analysis down.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        // Replace a stale socket file from a previous run.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let mut listeners = vec![Listener::bind_unix(&config.socket)?];
        if let Some(addr) = &config.tcp {
            listeners.push(Listener::bind_tcp(addr)?);
        }
        let faults = config.faults.merged_with_env();
        let store = match &config.cache_dir {
            None => None,
            Some(dir) => {
                let open = std::fs::create_dir_all(dir).and_then(|()| {
                    Store::open_with_faults(&dir.join("results.lcmstore"), faults.clone())
                });
                match open {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!(
                            "lcm-serve: cache at {} unavailable ({e}); serving uncached",
                            dir.display()
                        );
                        None
                    }
                }
            }
        };
        let detector = Detector::new(config.detector.clone());
        let fleet = (config.fleet > 0).then(|| {
            let mut fc = lcm_fleet::FleetConfig::new(config.fleet);
            if let Some(cmd) = &config.fleet_cmd {
                fc.worker_cmd = cmd.clone();
            }
            fc.events_out = config.events_out.clone();
            lcm_fleet::Fleet::new(fc)
        });
        Ok(Server {
            shared: Arc::new(Shared {
                detector,
                store,
                fleet,
                counters: Counters::default(),
                metrics: ServeMetrics::new(),
                work: Mutex::new(WorkState {
                    queue: std::collections::VecDeque::new(),
                    shutdown: false,
                }),
                ready: Condvar::new(),
                stop: Condvar::new(),
                started: Instant::now(),
                faults,
                replies: AtomicU64::new(0),
                memo: Mutex::new(std::collections::HashMap::new()),
                config,
            }),
            listeners,
        })
    }

    /// The TCP address actually bound, if a `--tcp` listener exists.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listeners.iter().find_map(Listener::tcp_addr)
    }

    /// Runs until a `shutdown` request: one blocking accept thread per
    /// listener (no polling — a v1 connection must never pay an idle
    /// tick to be accepted), the worker pool behind the bounded queue.
    /// Shutdown drains queued requests with explicit `shutting down`
    /// replies, wakes the accept threads with a self-connection, joins
    /// everything, and removes the socket file. Per-connection reader
    /// threads exit on their next poll tick.
    pub fn run(self) -> std::io::Result<()> {
        if self.shared.config.handle_signals {
            install_shutdown_signals();
            // The handler only flips an AtomicBool (the one thing that
            // is async-signal-safe); this watcher does the real work,
            // reusing the exact drain + stop-condvar + self-connection
            // wake path a `shutdown` request takes.
            let shared = self.shared.clone();
            std::thread::spawn(move || loop {
                if shared.is_shutdown() {
                    return;
                }
                if SIGNAL_PENDING.swap(false, Ordering::SeqCst) {
                    drain_on_shutdown(&shared);
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            });
        }
        let workers = match self.shared.config.workers {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        };
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = self.shared.clone();
            pool.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        // The wake addresses, captured before the listeners move.
        let tcp_addr = self.tcp_addr();
        let accepted = Arc::new(AtomicU64::new(0));
        let mut acceptors = Vec::with_capacity(self.listeners.len());
        for listener in self.listeners {
            let shared = self.shared.clone();
            let accepted = accepted.clone();
            acceptors.push(std::thread::spawn(move || {
                accept_loop(&shared, &listener, &accepted)
            }));
        }

        // Sleep until the shutdown flag flips (`drain_on_shutdown`
        // notifies `stop` after setting it).
        {
            let mut work = self.shared.work.lock().unwrap();
            while !work.shutdown {
                work = self.shared.stop.wait(work).unwrap();
            }
        }
        // Unblock each accept thread with a throwaway connection; it
        // re-checks the flag before serving what it accepted.
        let _ = Stream::connect_unix(&self.shared.config.socket);
        if let Some(addr) = tcp_addr {
            let _ = Stream::connect_tcp(&addr.to_string());
        }
        let mut result = Ok(());
        for t in acceptors {
            match t.join() {
                Ok(Err(e)) if result.is_ok() => result = Err(e),
                Ok(_) => {}
                Err(_) if result.is_ok() => {
                    result = Err(std::io::Error::other("accept thread panicked"))
                }
                Err(_) => {}
            }
        }
        // Wake every worker so they observe the shutdown flag.
        self.shared.ready.notify_all();
        for t in pool {
            let _ = t.join();
        }
        // In-flight requests are done: reap the worker fleet.
        if let Some(fleet) = &self.shared.fleet {
            fleet.shutdown();
        }
        std::fs::remove_file(&self.shared.config.socket).ok();
        result
    }

    /// Binds and runs on a background thread (tests / embedding).
    /// Returns once the sockets are accepting.
    pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let socket = server.shared.config.socket.clone();
        let tcp_addr = server.tcp_addr();
        let shared = server.shared.clone();
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            socket,
            tcp_addr,
            shared,
            thread,
        })
    }
}

/// Handle to a background server.
pub struct ServerHandle {
    socket: PathBuf,
    tcp_addr: Option<std::net::SocketAddr>,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The socket the server listens on.
    pub fn socket(&self) -> &PathBuf {
        &self.socket
    }

    /// The TCP address the server listens on, when configured.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.tcp_addr
    }

    /// Counter snapshot: `(requests, analyses, cache_hits, dropped)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        let c = &self.shared.counters;
        (
            c.requests.load(Ordering::Relaxed),
            c.analyses.load(Ordering::Relaxed),
            c.cache_hits.load(Ordering::Relaxed),
            c.dropped.load(Ordering::Relaxed),
        )
    }

    /// Counter snapshot of the v2 paths:
    /// `(frames, batches, rejected, torn_writes, drained)`.
    pub fn snapshot_v2(&self) -> (u64, u64, u64, u64, u64) {
        let c = &self.shared.counters;
        (
            c.frames.load(Ordering::Relaxed),
            c.batches.load(Ordering::Relaxed),
            c.rejected.load(Ordering::Relaxed),
            c.torn_writes.load(Ordering::Relaxed),
            c.drained.load(Ordering::Relaxed),
        )
    }

    /// Waits for the server to exit (after a `shutdown` request).
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// One listener's blocking accept loop. Exits when the shutdown flag is
/// up (the run loop sends a throwaway wake connection to get a blocked
/// accept past `accept()`). `accepted` is the global connection
/// ordinal, the index `serve.drop_conn` fires on.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &Listener,
    accepted: &AtomicU64,
) -> std::io::Result<()> {
    loop {
        match listener.accept() {
            Ok(conn) => {
                if shared.is_shutdown() {
                    // The wake connection (or a client racing the
                    // shutdown): close it unserved.
                    drop(conn);
                    return Ok(());
                }
                let ordinal = accepted.fetch_add(1, Ordering::Relaxed) as usize;
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                shared.metrics.requests.inc();
                if shared.faults.fires(site::SERVE_DROP_CONN, ordinal) {
                    // Injected connection loss: close without a byte of
                    // reply. Clients retry with backoff.
                    shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    drop(conn);
                    continue;
                }
                let shared = shared.clone();
                // Reader threads are detached: they exit on EOF or on
                // their next shutdown-poll tick, and hold only Arcs.
                std::thread::spawn(move || conn_loop(&shared, conn));
            }
            Err(_) if shared.is_shutdown() => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// How often blocked reads / fairness waits re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(200);

/// What the frame reader produced.
enum FrameRead {
    /// One complete line (without the newline).
    Line(String),
    /// Clean end of stream (or an unrecoverable read error).
    Eof,
    /// A frame exceeded [`wire::MAX_FRAME`]; its bytes were discarded
    /// up to the next newline and the connection is still usable.
    Oversized,
    /// The server is shutting down.
    Shutdown,
}

/// Buffered line reader over the connection's read half with the
/// per-frame size cap and shutdown polling folded in.
struct FrameReader {
    stream: Stream,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline, so a frame
    /// spanning many reads (a large batch) is scanned once overall.
    scanned: usize,
}

impl FrameReader {
    fn new(stream: Stream) -> FrameReader {
        let _ = stream.set_read_timeout(Some(POLL));
        FrameReader {
            stream,
            buf: Vec::with_capacity(256),
            scanned: 0,
        }
    }

    fn next(&mut self, shared: &Shared) -> FrameRead {
        use std::io::Read;
        let mut oversized = false;
        let mut chunk = [0u8; 65536];
        loop {
            if let Some(nl) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(self.scanned + nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                self.scanned = 0;
                if oversized {
                    return FrameRead::Oversized;
                }
                return FrameRead::Line(String::from_utf8_lossy(&line).into_owned());
            }
            self.scanned = self.buf.len();
            if self.buf.len() > shared.config.max_frame {
                // Discard until the newline arrives; the frame itself
                // is already lost, but the connection survives.
                oversized = true;
                self.buf.clear();
                self.scanned = 0;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Trailing bytes without a newline still form the
                    // final frame (lenient, like read-to-EOF v1).
                    if self.buf.is_empty() || oversized {
                        return if oversized {
                            FrameRead::Oversized
                        } else {
                            FrameRead::Eof
                        };
                    }
                    let line = std::mem::take(&mut self.buf);
                    self.scanned = 0;
                    return FrameRead::Line(String::from_utf8_lossy(&line).into_owned());
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shared.is_shutdown() {
                        return FrameRead::Shutdown;
                    }
                }
                Err(_) => return FrameRead::Eof,
            }
        }
    }
}

/// Per-connection reader: decodes frames and routes them. The first
/// frame fixes the protocol version — no `id` means v1 (one reply,
/// close), an `id` means v2 (persistent, multiplexed).
fn conn_loop(shared: &Arc<Shared>, stream: Stream) {
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnShared {
        writer: Mutex::new(writer),
        inflight: Mutex::new(HashSet::new()),
        space: Condvar::new(),
    });
    let mut reader = FrameReader::new(stream);
    let mut v2 = false;
    loop {
        let line = match reader.next(shared) {
            FrameRead::Line(l) => l,
            FrameRead::Eof => return,
            FrameRead::Shutdown => return,
            FrameRead::Oversized => {
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                shared.write_reply(
                    &conn,
                    &wire::error_reply(&format!(
                        "frame too large (max {} bytes)",
                        shared.config.max_frame
                    )),
                );
                if v2 {
                    continue;
                }
                return;
            }
        };
        let frame = match wire::parse_frame(&line) {
            Ok(f) => f,
            Err(e) => {
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                shared.write_reply(&conn, &wire::error_reply_id(e.id.as_ref(), &e.message));
                if v2 {
                    continue; // per-frame error; the connection survives
                }
                return; // v1: one reply, close
            }
        };
        if !v2 && frame.id.is_some() {
            v2 = true;
        }
        if v2 {
            shared.counters.frames.fetch_add(1, Ordering::Relaxed);
            shared.metrics.frames.inc();
            if frame.id.is_none() {
                // An interleaved v1 one-shot line on a v2 connection:
                // per-frame error, never a connection kill.
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                shared.write_reply(
                    &conn,
                    &wire::error_reply("v2 connection requires `id` on every frame"),
                );
                continue;
            }
        }
        let done = route_frame(shared, &conn, frame.id, frame.req, v2);
        if done || !v2 {
            return;
        }
    }
}

/// Handles one decoded frame: control requests inline, analyze work
/// through the bounded queue. Returns `true` when the connection is
/// finished (v1 one-shot served, or shutdown).
fn route_frame(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    id: Option<Json>,
    req: Request,
    v2: bool,
) -> bool {
    let mut span = lcm_obs::span("serve_request", "serve");
    span.arg_str(
        "cmd",
        match &req {
            Request::Status => "status",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::Analyze { .. } => "analyze",
            Request::AnalyzeBatch(_) => "analyze_batch",
        },
    );
    if let Request::Analyze { engine, .. } = &req {
        span.arg_str("engine", engine.label());
    }
    match req {
        Request::Status => {
            shared.write_reply(conn, &with_id(id.as_ref(), status_members(shared)));
            !v2
        }
        Request::Stats => {
            shared.write_reply(conn, &with_id(id.as_ref(), stats_members(shared)));
            !v2
        }
        Request::Metrics => {
            let text = lcm_obs::metrics::global().render_prometheus();
            match &id {
                // v1: raw multi-line Prometheus text (the documented
                // exception); v2: the same text inside a JSON frame so
                // multiplexed framing survives.
                None => shared.write_reply(conn, &text),
                Some(id) => shared.write_reply(conn, &wire::metrics_reply_id(id, &text)),
            }
            !v2
        }
        Request::Shutdown => {
            drain_on_shutdown(shared);
            let members = vec![
                ("ok".to_string(), Json::Bool(true)),
                ("shutting_down".to_string(), Json::Bool(true)),
            ];
            shared.write_reply(conn, &with_id(id.as_ref(), members));
            true
        }
        Request::Analyze {
            source,
            file,
            engine,
        } => {
            // Reader-thread fast path: a memoized hot reply is written
            // straight from the reader — no queue slot consumed, no
            // worker handoff. Skipped during shutdown so `enqueue`
            // still owns the `shutting down` reply.
            if let Some(src) = source.as_deref() {
                if !shared.is_shutdown() {
                    if let Some(line) = memo_replay(shared, engine, src) {
                        let t0 = Instant::now();
                        shared.write_reply(conn, &wire::prepend_id(id.as_ref(), &line));
                        shared.metrics.request_latency.observe(t0.elapsed());
                        return !v2;
                    }
                }
            }
            enqueue(
                shared,
                conn,
                id,
                JobKind::One(AnalyzeItem {
                    source,
                    file,
                    engine,
                }),
            )
        }
        Request::AnalyzeBatch(items) => {
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .batch_items
                .fetch_add(items.len() as u64, Ordering::Relaxed);
            shared.metrics.batch_items.add(items.len() as u64);
            // Same fast path for a fully-memoized batch: one lock
            // probe answers the whole frame from the reader.
            if !shared.is_shutdown() {
                if let Some(outcomes) = memo_replay_batch(shared, &items) {
                    let t0 = Instant::now();
                    shared.write_reply(conn, &wire::batch_reply(id.as_ref(), &outcomes));
                    shared.metrics.request_latency.observe(t0.elapsed());
                    return !v2;
                }
            }
            enqueue(shared, conn, id, JobKind::Batch(items))
        }
    }
}

/// Queues one analyze job, applying the per-connection fairness cap
/// (block the reader — backpressure) and the global queue bound (shed
/// with a `busy` reply naming the `id`). Returns `true` when the
/// connection is done (v1 one-shot: reply will close it).
fn enqueue(shared: &Arc<Shared>, conn: &Arc<ConnShared>, id: Option<Json>, kind: JobKind) -> bool {
    let v1 = id.is_none();
    let rendered = id.as_ref().map(Json::render);
    if let Some(key) = &rendered {
        // Fairness cap: wait (with shutdown polling) for this
        // connection's in-flight count to drop below the cap.
        let cap = shared.config.fairness_cap.max(1);
        let mut inflight = conn.inflight.lock().unwrap();
        while inflight.len() >= cap {
            if shared.is_shutdown() {
                drop(inflight);
                shared.write_reply(conn, &wire::error_reply_id(id.as_ref(), "shutting down"));
                return true;
            }
            let (guard, _) = conn.space.wait_timeout(inflight, POLL).unwrap();
            inflight = guard;
        }
        if !inflight.insert(key.clone()) {
            drop(inflight);
            shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
            shared.write_reply(
                conn,
                &wire::error_reply_id(id.as_ref(), "duplicate in-flight `id`"),
            );
            return false;
        }
    }
    let job = Job {
        id,
        kind,
        conn: conn.clone(),
        enqueued: Instant::now(),
    };
    let mut work = shared.work.lock().unwrap();
    if work.shutdown {
        drop(work);
        if let Some(key) = &rendered {
            conn.complete(key);
        }
        shared.write_reply(
            conn,
            &wire::error_reply_id(job.id.as_ref(), "shutting down"),
        );
        return true;
    }
    if work.queue.len() >= shared.config.queue_cap.max(1) {
        drop(work);
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        shared.metrics.busy.inc();
        if let Some(key) = &rendered {
            conn.complete(key);
        }
        shared.write_reply(
            conn,
            &wire::error_reply_id(job.id.as_ref(), "busy: queue full"),
        );
        return v1;
    }
    work.queue.push_back(job);
    drop(work);
    shared.ready.notify_one();
    v1
}

/// Set by the SIGTERM/SIGINT handler, consumed by the watcher thread
/// [`Server::run`] spawns under [`ServeConfig::handle_signals`].
static SIGNAL_PENDING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// The handler body: store one flag. Nothing else is async-signal-safe
/// (no locks, no allocation, no I/O).
extern "C" fn on_shutdown_signal(_sig: i32) {
    SIGNAL_PENDING.store(true, Ordering::SeqCst);
}

/// Registers `on_shutdown_signal` for SIGTERM and SIGINT through the
/// raw libc `signal` symbol (std links libc; the workspace carries no
/// libc crate).
fn install_shutdown_signals() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Flips the shutdown flag and drains every queued job with an explicit
/// `shutting down` reply — queued clients get an answer, never a silent
/// close. Workers finish their executing job, then exit.
fn drain_on_shutdown(shared: &Shared) {
    let stolen: Vec<Job> = {
        let mut work = shared.work.lock().unwrap();
        work.shutdown = true;
        work.queue.drain(..).collect()
    };
    shared.ready.notify_all();
    shared.stop.notify_all();
    for job in stolen {
        shared.counters.drained.fetch_add(1, Ordering::Relaxed);
        shared.write_reply(
            &job.conn,
            &wire::error_reply_id(job.id.as_ref(), "shutting down"),
        );
        if let Some(id) = &job.id {
            job.conn.complete(&id.render());
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut work = shared.work.lock().unwrap();
            loop {
                if let Some(j) = work.queue.pop_front() {
                    break j;
                }
                if work.shutdown {
                    return;
                }
                work = shared.ready.wait(work).unwrap();
            }
        };
        shared.metrics.queue_wait.observe(job.enqueued.elapsed());
        let reply = match &job.kind {
            JobKind::One(item) => match analyze_rendered(shared, item) {
                Ok(line) => wire::prepend_id(job.id.as_ref(), &line),
                Err(e) => wire::error_reply_id(job.id.as_ref(), &e),
            },
            JobKind::Batch(items) => {
                let outcomes: Vec<BatchOutcome> = items
                    .iter()
                    .map(|item| match analyze_rendered(shared, item) {
                        Ok(line) => BatchOutcome::Rendered(line),
                        Err(e) => BatchOutcome::Failed(e),
                    })
                    .collect();
                wire::batch_reply(job.id.as_ref(), &outcomes)
            }
        };
        shared.write_reply(&job.conn, &reply);
        shared
            .metrics
            .request_latency
            .observe(job.enqueued.elapsed());
        if let Some(id) = &job.id {
            job.conn.complete(&id.render());
        }
    }
}

/// Runs one analyze item (compile → cache-or-engines) and returns the
/// rendered v1 reply line, or the error string destined for the reply.
///
/// Repeat submissions of a fully cache-hit program short-circuit
/// through the hot-reply memo: the memoized bytes are exactly what a
/// re-run would render (every function hits the append-only store
/// again), so only the counters need to advance — compile, store
/// probing, and reply rendering all drop out of the warm path.
fn analyze_rendered(shared: &Shared, item: &AnalyzeItem) -> Result<Arc<str>, String> {
    let source = match (&item.source, &item.file) {
        (Some(s), _) => s.clone(),
        (None, Some(path)) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        (None, None) => return Err("analyze needs `source` or `file`".into()),
    };
    if let Some(line) = memo_replay(shared, item.engine, &source) {
        return Ok(line);
    }
    let engine = item.engine;
    let module = lcm_minic::compile(&source).map_err(|e| format!("compile error: {e}"))?;
    shared.counters.analyses.fetch_add(1, Ordering::Relaxed);
    shared.metrics.analyses_for(engine).inc();
    let report: ModuleReport = match (&shared.fleet, &shared.store) {
        // Fleet mode: crash-isolated worker processes, same cache
        // discipline, byte-identical rendered reply.
        (Some(fleet), store) => fleet.analyze_module(
            &source,
            &module,
            engine,
            shared.detector.config(),
            store.as_ref(),
        ),
        (None, Some(store)) => {
            lcm_store::analyze_module_cached(&shared.detector, &module, engine, store)
        }
        (None, None) => shared.detector.analyze_module(&module, engine),
    };
    let counts = lcm_store::CacheCounts::of(&report);
    shared
        .counters
        .cache_hits
        .fetch_add(counts.hits, Ordering::Relaxed);
    shared
        .counters
        .cache_misses
        .fetch_add(counts.misses, Ordering::Relaxed);
    shared
        .counters
        .degraded
        .fetch_add(report.degraded_count() as u64, Ordering::Relaxed);
    let line: Arc<str> = wire::analyze_reply(&report, engine).into();
    let fully_hit = shared.store.is_some()
        && !report.functions.is_empty()
        && counts.hits == report.functions.len() as u64
        && counts.misses == 0
        && counts.bypassed == 0
        && report.degraded_count() == 0;
    if fully_hit {
        let mut memo = shared.memo.lock().unwrap();
        if memo.len() < MEMO_CAP {
            memo.entry(source).or_default()[engine_slot(engine)] = Some(MemoReply {
                line: line.clone(),
                hits: counts.hits,
            });
        }
    }
    Ok(line)
}

/// Consults the hot-reply memo for `source`, advancing the counters
/// exactly as the fresh all-hit run the replay stands in for would:
/// one analysis, every function a cache hit (both the daemon counter
/// and the store-shared traffic metric).
fn memo_replay(shared: &Shared, engine: EngineKind, source: &str) -> Option<Arc<str>> {
    let (line, hits) = {
        let memo = shared.memo.lock().unwrap();
        let hit = memo.get(source)?[engine_slot(engine)].as_ref()?;
        (hit.line.clone(), hit.hits)
    };
    shared.counters.analyses.fetch_add(1, Ordering::Relaxed);
    shared.metrics.analyses_for(engine).inc();
    shared
        .counters
        .cache_hits
        .fetch_add(hits, Ordering::Relaxed);
    shared.metrics.cache[0].add(hits);
    Some(line)
}

/// The batch fast path: every item answered from the memo in one
/// lock acquisition, or `None` (any miss falls back to the queue).
fn memo_replay_batch(shared: &Shared, items: &[AnalyzeItem]) -> Option<Vec<BatchOutcome>> {
    let mut outcomes = Vec::with_capacity(items.len());
    let mut hits_total = 0u64;
    {
        let memo = shared.memo.lock().unwrap();
        for item in items {
            let hit = memo.get(item.source.as_deref()?)?[engine_slot(item.engine)].as_ref()?;
            hits_total += hit.hits;
            outcomes.push(BatchOutcome::Rendered(hit.line.clone()));
        }
    }
    shared
        .counters
        .analyses
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    for item in items {
        shared.metrics.analyses_for(item.engine).inc();
    }
    shared
        .counters
        .cache_hits
        .fetch_add(hits_total, Ordering::Relaxed);
    shared.metrics.cache[0].add(hits_total);
    Some(outcomes)
}

/// Renders an object reply, prepending the frame's `id` when present
/// (absent: byte-identical to the v1 reply).
fn with_id(id: Option<&Json>, mut members: Vec<(String, Json)>) -> String {
    if let Some(id) = id {
        members.insert(0, ("id".to_string(), id.clone()));
    }
    let mut line = Json::Obj(members).render();
    line.push('\n');
    line
}

fn status_members(shared: &Shared) -> Vec<(String, Json)> {
    let queue_len = shared.work.lock().unwrap().queue.len();
    vec![
        ("ok".into(), Json::Bool(true)),
        (
            "uptime_secs".into(),
            Json::Num(shared.started.elapsed().as_secs_f64()),
        ),
        ("queue_len".into(), Json::Num(queue_len as f64)),
        (
            "cache".into(),
            Json::Str(if shared.store.is_some() {
                "enabled".into()
            } else {
                "disabled".into()
            }),
        ),
    ]
}

fn stats_members(shared: &Shared) -> Vec<(String, Json)> {
    let c = &shared.counters;
    let n = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
    let mut members = vec![
        ("ok".into(), Json::Bool(true)),
        ("requests".into(), n(&c.requests)),
        ("analyses".into(), n(&c.analyses)),
        ("cache_hits".into(), n(&c.cache_hits)),
        ("cache_misses".into(), n(&c.cache_misses)),
        ("degraded".into(), n(&c.degraded)),
        ("rejected".into(), n(&c.rejected)),
        ("dropped".into(), n(&c.dropped)),
        ("parse_errors".into(), n(&c.parse_errors)),
    ];
    if let Some(store) = &shared.store {
        let s = store.stats();
        members.push(("store_entries".into(), Json::Num(store.len() as f64)));
        members.push((
            "store_recovered_drop".into(),
            Json::Num(s.recovered_drop as f64),
        ));
    }
    // Enrichment (PR 5): appended after every pre-existing field so old
    // clients' replies stay byte-stable up to here.
    let m = &shared.metrics;
    members.push((
        "uptime_secs".into(),
        Json::Num(shared.started.elapsed().as_secs_f64()),
    ));
    members.push(("analyses_pht".into(), Json::Num(m.analyses[0].get() as f64)));
    members.push(("analyses_stl".into(), Json::Num(m.analyses[1].get() as f64)));
    members.push(("analyses_psf".into(), Json::Num(m.analyses[2].get() as f64)));
    members.push((
        "cache_traffic_hits".into(),
        Json::Num(m.cache[0].get() as f64),
    ));
    members.push((
        "cache_traffic_misses".into(),
        Json::Num(m.cache[1].get() as f64),
    ));
    members.push((
        "cache_traffic_bypassed".into(),
        Json::Num(m.cache[2].get() as f64),
    ));
    // Enrichment (PR 7, protocol v2): same append-only discipline.
    members.push(("frames".into(), n(&c.frames)));
    members.push(("batches".into(), n(&c.batches)));
    members.push(("batch_items".into(), n(&c.batch_items)));
    members.push(("torn_writes".into(), n(&c.torn_writes)));
    members.push(("drained".into(), n(&c.drained)));
    // Enrichment (fleet observability): per-worker-slot health,
    // appended strictly after every pre-existing field — non-fleet
    // daemons' replies stay byte-stable up to `drained`.
    if let Some(fleet) = &shared.fleet {
        members.push(("fleet_workers".into(), Json::Num(fleet.workers() as f64)));
        let slots = fleet
            .health()
            .into_iter()
            .map(|h| {
                Json::Obj(vec![
                    ("slot".into(), Json::Num(h.slot as f64)),
                    ("pid".into(), Json::Num(f64::from(h.pid))),
                    ("incarnation".into(), Json::Num(h.incarnation as f64)),
                    ("restarts".into(), Json::Num(h.restarts as f64)),
                    ("steals".into(), Json::Num(h.steals as f64)),
                    ("kills".into(), Json::Num(h.kills as f64)),
                    ("redeliveries".into(), Json::Num(h.redeliveries as f64)),
                    ("tasks".into(), Json::Num(h.tasks as f64)),
                    ("queue_depth".into(), Json::Num(h.queue_depth as f64)),
                    ("retired".into(), Json::Bool(h.retired)),
                    ("busy".into(), Json::Bool(h.busy)),
                    (
                        "last_phase".into(),
                        h.last_phase.map_or(Json::Null, Json::Str),
                    ),
                ])
            })
            .collect();
        members.push(("fleet_slots".into(), Json::Arr(slots)));
    }
    members
}
