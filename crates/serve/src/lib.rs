//! `lcm-serve`: the resident analysis daemon.
//!
//! The ROADMAP's north star is a service, not a batch script: analysis
//! requests arrive continuously, most submissions are unchanged since
//! the last run, and the marginal cost of a repeat should be a cache
//! lookup, not a SAT campaign. This crate provides that shell:
//!
//! * [`Server`] — a long-running daemon on a Unix domain socket (plus
//!   an opt-in TCP listener sharing every line of protocol code)
//!   speaking line-delimited JSON. Connections are persistent and
//!   multiplexed (protocol v2): frames carry client-chosen `id`s,
//!   clients pipeline without waiting, replies arrive out of order and
//!   match by `id`, and a batched `analyze` submits many programs in
//!   one frame. A bounded in-flight request queue sheds bursts with
//!   `busy` replies naming the rejected `id`; a per-connection fairness
//!   cap keeps one pipelining client from starving the rest. A first
//!   frame without an `id` is protocol v1 — one request, one reply,
//!   close — served byte-identically to the original daemon;
//! * [`Client`] — the v1 connector: one request per connection, with a
//!   bounded deterministic-backoff retry when the connection is dropped
//!   or a reply frame is torn (the `serve.drop_conn` and
//!   `serve.partial_write` fault sites exercise exactly these paths);
//! * [`Connection`] — the v2 connector ([`Client::connect`]):
//!   pipelined sends, id-matched receives, batched analyze;
//! * [`wire`] — the frame protocol shared by both ends, built on
//!   `lcm_core::jsonw` (the workspace's single hand-rolled JSON
//!   implementation; no serde, per the DESIGN.md §6 policy);
//! * [`conn`] — the Unix/TCP transport abstraction.
//!
//! When the server is configured with a cache directory, every analyze
//! request routes through `lcm-store`: unchanged functions are served
//! from the content-addressed result cache without running an engine,
//! and the reply's per-function `cache` labels plus the `stats`
//! counters (`cache_hits` / `cache_misses`) make the short-circuit
//! observable end to end. The standing invariant: every reply — v1 or
//! v2, pipelined or batched, Unix or TCP — renders byte-identical to
//! an in-process run of the same program.

pub mod client;
pub mod conn;
pub mod server;
pub mod wire;

pub use client::{backoff_delay, Client, ClientError, Connection, ServerAddr};
pub use server::{Counters, ServeConfig, Server, ServerHandle};
pub use wire::Request;
