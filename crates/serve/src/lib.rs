//! `lcm-serve`: the resident analysis daemon.
//!
//! The ROADMAP's north star is a service, not a batch script: analysis
//! requests arrive continuously, most submissions are unchanged since
//! the last run, and the marginal cost of a repeat should be a cache
//! lookup, not a SAT campaign. This crate provides that shell:
//!
//! * [`Server`] — a long-running daemon on a Unix domain socket
//!   speaking one-line JSON requests (`analyze` / `status` / `stats` /
//!   `shutdown`), with a bounded queue (bursts beyond it are answered
//!   `busy` instead of growing without bound), a fixed worker pool, and
//!   per-request resource governance reusing the `DetectorConfig`
//!   budgets wholesale;
//! * [`Client`] — the matching connector: one request per connection,
//!   with a bounded retry when the connection is dropped before a reply
//!   (the `serve.drop_conn` fault site exercises exactly this path);
//! * [`wire`] — the line-delimited JSON protocol shared by both ends,
//!   built on `lcm_core::jsonw` (the workspace's single hand-rolled
//!   JSON implementation; no serde, per the DESIGN.md §6 policy).
//!
//! When the server is configured with a cache directory, every analyze
//! request routes through `lcm-store`: unchanged functions are served
//! from the content-addressed result cache without running an engine,
//! and the reply's per-function `cache` labels plus the `stats`
//! counters (`cache_hits` / `cache_misses`) make the short-circuit
//! observable end to end.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{Counters, ServeConfig, Server, ServerHandle};
pub use wire::Request;
