//! End-to-end daemon tests: spawn a real server on a temp socket, talk
//! to it with the real client.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lcm_core::fault::{site, FaultPlan};
use lcm_core::jsonw::Json;
use lcm_detect::EngineKind;
use lcm_serve::{Client, ClientError, ServeConfig, Server};

/// A fresh socket path under the system temp dir (Unix socket paths
/// have a ~100-byte limit, so keep it short).
fn temp_socket(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lcm-{}-{tag}-{n}.sock", std::process::id()))
}

const VICTIM: &str = r#"
    int A[16]; int B[4096]; int size; int tmp;
    void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }
"#;

#[test]
fn round_trip_status_analyze_stats_shutdown() {
    let socket = temp_socket("rt");
    let handle = Server::spawn(ServeConfig::new(&socket)).unwrap();
    let client = Client::new(&socket);

    let status = client.status().unwrap();
    assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(status.get("cache").unwrap().as_str(), Some("disabled"));

    let reply = client.analyze_source(VICTIM, EngineKind::Pht).unwrap();
    let functions = reply.get("functions").unwrap().as_arr().unwrap();
    assert_eq!(functions.len(), 1);
    assert_eq!(functions[0].get("name").unwrap().as_str(), Some("victim"));
    assert_eq!(
        functions[0].get("status").unwrap().as_str(),
        Some("completed")
    );
    // No cache configured: every function is a bypass.
    assert_eq!(functions[0].get("cache").unwrap().as_str(), Some("bypass"));
    assert!(!functions[0]
        .get("findings")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("analyses").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(0));

    client.shutdown().unwrap();
    handle.join().unwrap();
    assert!(!socket.exists(), "socket file removed on shutdown");
}

#[test]
fn cache_dir_short_circuits_repeat_submissions() {
    let socket = temp_socket("cache");
    let cache_dir = std::env::temp_dir().join(format!(
        "lcm-serve-cache-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut config = ServeConfig::new(&socket);
    config.cache_dir = Some(cache_dir.clone());
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);

    let cold = client.analyze_source(VICTIM, EngineKind::Pht).unwrap();
    let warm = client.analyze_source(VICTIM, EngineKind::Pht).unwrap();
    assert_eq!(cold.get("cache_hits").unwrap().as_u64(), Some(0));
    assert_eq!(warm.get("cache_hits").unwrap().as_u64(), Some(1));
    let label = |r: &Json| {
        r.get("functions").unwrap().as_arr().unwrap()[0]
            .get("cache")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(label(&cold), "miss");
    assert_eq!(label(&warm), "hit");
    // Findings identical across the hit/miss boundary.
    assert_eq!(
        cold.get("functions").unwrap().as_arr().unwrap()[0].get("findings"),
        warm.get("functions").unwrap().as_arr().unwrap()[0].get("findings"),
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn dropped_connection_is_retried_once_and_succeeds() {
    let socket = temp_socket("drop");
    let mut config = ServeConfig::new(&socket);
    // Drop the first accepted connection without a reply byte.
    config.faults = FaultPlan::default().arm(site::SERVE_DROP_CONN, Some(0));
    let handle = Server::spawn(config).unwrap();

    let client = Client::new(&socket);
    let status = client.status().unwrap();
    assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
    let (requests, _, _, dropped) = handle.snapshot();
    assert_eq!(dropped, 1, "first connection was dropped by the fault");
    assert!(requests >= 2, "the retry produced a second connection");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn dropped_connection_without_retries_surfaces_as_error() {
    let socket = temp_socket("drop0");
    let mut config = ServeConfig::new(&socket);
    config.faults = FaultPlan::default().arm(site::SERVE_DROP_CONN, Some(0));
    let handle = Server::spawn(config).unwrap();

    let client = Client::new(&socket).retries(0);
    match client.status() {
        Err(ClientError::Dropped { attempts }) => assert_eq!(attempts, 1),
        other => panic!("expected Dropped, got {other:?}"),
    }
    // A fresh request (connection ordinal 1) is served normally.
    client.status().unwrap();

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_requests_get_error_replies_not_hangs() {
    let socket = temp_socket("bad");
    let handle = Server::spawn(ServeConfig::new(&socket)).unwrap();
    let client = Client::new(&socket);

    match client.request(r#"{"cmd":"frobnicate"}"#) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown cmd"), "{msg}"),
        other => panic!("expected Server error, got {other:?}"),
    }
    match client.request(r#"{"cmd":"analyze","source":"int x = ;"}"#) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("compile error"), "{msg}"),
        other => panic!("expected compile error, got {other:?}"),
    }
    // The daemon survives garbage and still serves.
    client.status().unwrap();

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// Protocol v2: persistent multiplexed connections.
// ---------------------------------------------------------------------------

/// Two distinguishable programs (different function names) so replies
/// matched by id can also be checked by payload.
fn victim_source(i: usize) -> String {
    format!(
        "int A[16]; int B[4096]; int size; int tmp;
         void victim_{i}(int y) {{ if (y < size) tmp &= B[A[y] * 512]; }}"
    )
}

#[test]
fn v2_pipelined_replies_match_by_id_at_depth_8() {
    let socket = temp_socket("v2p");
    let handle = Server::spawn(ServeConfig::new(&socket)).unwrap();
    let client = Client::new(&socket);
    let mut conn = client.connect().unwrap();

    // Pipeline 8 analyze frames without reading a single reply.
    let sources: Vec<String> = (0..8).map(victim_source).collect();
    let mut expect = std::collections::HashMap::new();
    for src in &sources {
        let id = conn.send_analyze(src, EngineKind::Pht).unwrap();
        let name = src.split("void ").nth(1).unwrap();
        let name = name.split('(').next().unwrap().to_string();
        expect.insert(id, name);
    }
    // Drain all 8; ids decide which answer is which, not arrival order.
    for _ in 0..8 {
        let (id, reply) = conn.recv().unwrap();
        let name = expect.remove(&id).expect("unknown or duplicate reply id");
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
        let functions = reply.get("functions").unwrap().as_arr().unwrap();
        assert_eq!(functions[0].get("name").unwrap().as_str(), Some(&*name));
    }
    assert!(expect.is_empty());
    let (frames, ..) = handle.snapshot_v2();
    assert_eq!(frames, 8);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn v2_batch_aggregates_one_reply_per_item_in_order() {
    let socket = temp_socket("v2b");
    let handle = Server::spawn(ServeConfig::new(&socket)).unwrap();
    let client = Client::new(&socket);
    let mut conn = client.connect().unwrap();

    let s0 = victim_source(0);
    let s1 = victim_source(1);
    let id = conn
        .send_batch(&[
            (&s0, EngineKind::Pht),
            (&s1, EngineKind::Stl),
            ("int x = ;", EngineKind::Pht), // compile error: per-item failure
        ])
        .unwrap();
    let (rid, reply) = conn.recv().unwrap();
    assert_eq!(rid, id);
    // One failed item: aggregated ok is false, the others still carry
    // their full results.
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(reply.get("failed").unwrap().as_u64(), Some(1));
    let results = reply.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(results[0].get("engine").unwrap().as_str(), Some("pht"));
    assert_eq!(results[1].get("engine").unwrap().as_str(), Some("stl"));
    assert_eq!(results[2].get("ok").unwrap().as_bool(), Some(false));
    assert!(results[2]
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("compile error"));
    // Batch elements render exactly as their one-shot replies: same
    // program, same engine, one connection each.
    let oneshot = client.analyze_source(&s0, EngineKind::Pht).unwrap();
    assert_eq!(
        results[0].get("functions").unwrap().render(),
        oneshot.get("functions").unwrap().render()
    );
    let (_, batches, ..) = handle.snapshot_v2();
    assert_eq!(batches, 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn v2_decoder_survives_malformed_frames() {
    let Some(fifo) = make_fifo("v2m") else {
        eprintln!("mkfifo unavailable; skipping");
        return;
    };
    let socket = temp_socket("v2m");
    let mut config = ServeConfig::new(&socket);
    config.max_frame = 1024; // so the oversized case is cheap to hit
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);
    let mut conn = client.connect().unwrap();

    // Establish v2 with a good frame.
    let good = conn
        .send_analyze(&victim_source(0), EngineKind::Pht)
        .unwrap();
    let (id, reply) = conn.recv().unwrap();
    assert_eq!(id, good);
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));

    // 1. Interleaved v1 one-shot line (no id) on a v2 connection.
    conn.send_line(r#"{"cmd":"status"}"#).unwrap();
    // 2. Duplicate in-flight id: park a first id-77 frame on the FIFO
    //    (the rendezvous guarantees it is still in flight), then send a
    //    second frame reusing its id.
    let mut fifo_w = Some(park_worker_on_fifo(&mut conn, &fifo, 77));
    conn.send_line(r#"{"cmd":"analyze","id":77,"source":"int x;"}"#)
        .unwrap();
    // 3. Unparseable JSON.
    conn.send_line("not json at all").unwrap();
    // 4. Unknown cmd with a recoverable id.
    conn.send_line(r#"{"cmd":"frobnicate","id":91}"#).unwrap();
    // 5. Oversized frame (beyond the shrunken max_frame).
    let huge = format!(
        r#"{{"cmd":"analyze","id":92,"source":"{}"}}"#,
        "x".repeat(4096)
    );
    conn.send_line(&huge).unwrap();

    // Collect the replies: the duplicate-id error, the missing-id
    // error, the parse error, the unknown-cmd error, the oversized
    // error, and — once the FIFO releases the parked worker — the one
    // real analysis for id 77. The connection and the server survive
    // all of it.
    let mut saw = std::collections::HashSet::new();
    for i in 0..6 {
        if i == 5 {
            // The five inline error replies are in; let the parked
            // id-77 analysis finish.
            use std::io::Write as _;
            let mut w = fifo_w.take().unwrap();
            w.write_all(victim_source(0).as_bytes()).unwrap();
        }
        let line = conn_recv_raw(&mut conn);
        let v = lcm_core::jsonw::parse(line.trim()).unwrap();
        let err = v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        match v.get("id") {
            None if err.contains("requires `id`") => saw.insert("missing_id"),
            None if err.contains("bad request JSON") => saw.insert("bad_json"),
            None if err.contains("frame too large") => saw.insert("oversized"),
            Some(id) if id.as_u64() == Some(77) && err.contains("duplicate") => {
                saw.insert("duplicate")
            }
            Some(id) if id.as_u64() == Some(77) => {
                assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
                saw.insert("real_analysis")
            }
            Some(id) if id.as_u64() == Some(91) => saw.insert("unknown_cmd"),
            other => panic!("unexpected reply {other:?} / {err}"),
        };
    }
    assert_eq!(saw.len(), 6, "every malformed frame got its own reply");

    // The connection still works after the abuse.
    let id = conn
        .send_analyze(&victim_source(1), EngineKind::Stl)
        .unwrap();
    let (rid, reply) = conn.recv().unwrap();
    assert_eq!(rid, id);
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));

    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&fifo);
}

/// Reads one raw reply line from a v2 connection (test helper for
/// replies that may not carry an id).
fn conn_recv_raw(conn: &mut lcm_serve::Connection) -> String {
    conn.recv_raw_line().unwrap()
}

#[test]
fn v2_fairness_cap_backpressures_without_loss() {
    let socket = temp_socket("v2f");
    let mut config = ServeConfig::new(&socket);
    config.fairness_cap = 2;
    config.workers = 1;
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);
    let mut conn = client.connect().unwrap();

    // Pipeline 6 frames: far beyond the cap of 2. The reader simply
    // stops pulling frames past the cap; nothing is lost or rejected.
    let mut pending = std::collections::HashSet::new();
    for i in 0..6 {
        let id = conn
            .send_analyze(&victim_source(i), EngineKind::Pht)
            .unwrap();
        pending.insert(id);
    }
    for _ in 0..6 {
        let (id, reply) = conn.recv().unwrap();
        assert!(pending.remove(&id));
        assert_eq!(
            reply.get("ok").unwrap().as_bool(),
            Some(true),
            "fairness backpressure must not shed: {}",
            reply.render()
        );
    }
    assert!(pending.is_empty());
    let (_, _, rejected, _, _) = handle.snapshot_v2();
    assert_eq!(rejected, 0, "backpressure, not busy replies");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn v2_busy_shed_names_the_rejected_id() {
    let socket = temp_socket("v2q");
    let mut config = ServeConfig::new(&socket);
    config.workers = 1;
    config.queue_cap = 1;
    config.fairness_cap = 64;
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);
    let mut conn = client.connect().unwrap();

    // A fat batch occupies the single worker for a while…
    let batch: Vec<String> = (0..12).map(victim_source).collect();
    let batch_items: Vec<(&str, EngineKind)> = batch
        .iter()
        .map(|s| (s.as_str(), EngineKind::Pht))
        .collect();
    let batch_id = conn.send_batch(&batch_items).unwrap();
    // …then a burst of pipelined frames: one fits the queue (cap 1),
    // the rest must be shed with busy replies naming their ids.
    let mut ids = Vec::new();
    for i in 0..4 {
        ids.push(
            conn.send_analyze(&victim_source(i), EngineKind::Pht)
                .unwrap(),
        );
    }
    let mut busy = 0;
    let mut served = 0;
    for _ in 0..5 {
        let (id, reply) = conn.recv().unwrap();
        if reply.get("ok").unwrap().as_bool() == Some(true) {
            served += 1;
            continue;
        }
        let err = reply.get("error").unwrap().as_str().unwrap();
        assert_eq!(err, "busy: queue full");
        assert!(
            ids.contains(&id) && id != batch_id,
            "busy reply must name the rejected frame's id"
        );
        busy += 1;
    }
    assert!(busy >= 1, "queue_cap=1 under a 4-deep burst must shed");
    assert_eq!(busy + served, 5);
    let (_, _, rejected, _, _) = handle.snapshot_v2();
    assert_eq!(rejected, busy);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// Shutdown drain: queued requests get explicit replies, never silence.
// ---------------------------------------------------------------------------

/// Creates a FIFO under the temp dir (via `mkfifo`). Shutdown-drain
/// tests use it to park the single worker deterministically: `analyze
/// {"file": <fifo>}` blocks inside `read_to_string` until the test
/// opens the write end, and the *open* of the write end in turn blocks
/// until the worker has the read end open — a rendezvous proving the
/// worker is occupied, with no sleeps.
fn make_fifo(tag: &str) -> Option<PathBuf> {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("lcm-{}-{tag}-{n}.fifo", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let ok = std::process::Command::new("mkfifo")
        .arg(&path)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    ok.then_some(path)
}

/// Sends `analyze {"file": <fifo>}` with a fixed id, then opens the
/// FIFO's write end — returning only once the worker is blocked inside
/// the job. The returned handle keeps the worker parked; write the
/// source and drop it to let the job finish.
fn park_worker_on_fifo(
    conn: &mut lcm_serve::Connection,
    fifo: &std::path::Path,
    id: u64,
) -> std::fs::File {
    let frame = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("analyze".into())),
        ("id".to_string(), Json::Num(id as f64)),
        ("file".to_string(), Json::Str(fifo.display().to_string())),
    ])
    .render();
    conn.send_line(&frame).unwrap();
    std::fs::OpenOptions::new().write(true).open(fifo).unwrap()
}

#[test]
fn shutdown_drains_queued_v2_frames_with_explicit_replies() {
    let Some(fifo) = make_fifo("sdv2") else {
        eprintln!("mkfifo unavailable; skipping");
        return;
    };
    let socket = temp_socket("sdv2");
    let mut config = ServeConfig::new(&socket);
    config.workers = 1;
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);
    let mut conn = client.connect().unwrap();

    // Park the single worker on the FIFO, queue one more frame, then
    // shut down. Frames on one connection are decoded in order, so the
    // analyze is in the queue before the shutdown is handled.
    let busy_id = 1000u64;
    let fifo_w = park_worker_on_fifo(&mut conn, &fifo, busy_id);
    let queued_id = conn
        .send_analyze(&victim_source(0), EngineKind::Pht)
        .unwrap();
    let shutdown_id = conn.send_cmd("shutdown").unwrap();

    // The drain reply and the shutdown ack arrive while the worker is
    // still parked; the parked job cannot reply before the FIFO opens.
    let mut got = std::collections::HashMap::new();
    for _ in 0..2 {
        let (id, reply) = conn.recv().unwrap();
        got.insert(id, reply);
    }
    // The queued frame was drained with an explicit reply…
    assert_eq!(
        got[&queued_id].get("error").unwrap().as_str(),
        Some("shutting down")
    );
    // …and the shutdown itself was acked.
    assert_eq!(
        got[&shutdown_id].get("shutting_down").unwrap().as_bool(),
        Some(true)
    );

    // Release the worker: in-flight work finishes normally before the
    // workers join, even though the drain already happened.
    use std::io::Write as _;
    let mut fifo_w = fifo_w;
    fifo_w.write_all(victim_source(0).as_bytes()).unwrap();
    drop(fifo_w);
    let (id, reply) = conn.recv().unwrap();
    assert_eq!(id, busy_id);
    assert_eq!(
        reply.get("ok").unwrap().as_bool(),
        Some(true),
        "in-flight work finishes before workers join"
    );

    let (_, _, _, _, drained) = handle.snapshot_v2();
    assert_eq!(drained, 1);
    handle.join().unwrap();
    let _ = std::fs::remove_file(&fifo);
}

#[test]
fn shutdown_drains_queued_v1_connections_with_explicit_replies() {
    let Some(fifo) = make_fifo("sdv1") else {
        eprintln!("mkfifo unavailable; skipping");
        return;
    };
    let socket = temp_socket("sdv1");
    let mut config = ServeConfig::new(&socket);
    config.workers = 1;
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);

    // Park the single worker from a v2 connection…
    let mut conn = client.connect().unwrap();
    let busy_id = 1000u64;
    let fifo_w = park_worker_on_fifo(&mut conn, &fifo, busy_id);

    // …queue a v1 one-shot on a second thread…
    let v1_socket = socket.clone();
    let v1 = std::thread::spawn(move || {
        let client = Client::new(&v1_socket).retries(0);
        client.analyze_source(
            "int A[16]; int B[4096]; int size; int tmp;
             void queued(int y) { if (y < size) tmp &= B[A[y] * 512]; }",
            EngineKind::Pht,
        )
    });
    std::thread::sleep(std::time::Duration::from_millis(50));

    // …and shut down while it waits. Whether the v1 frame was already
    // queued (drained) or still being decoded (refused at enqueue), the
    // client must receive the explicit shutting-down error, not a
    // silent close.
    let shutdown_id = conn.send_cmd("shutdown").unwrap();
    match v1.join().unwrap() {
        Err(ClientError::Server(msg)) => assert_eq!(msg, "shutting down"),
        other => panic!("queued v1 connection got {other:?}"),
    }

    // Release the worker and confirm its job still completed.
    use std::io::Write as _;
    let mut fifo_w = fifo_w;
    fifo_w.write_all(victim_source(0).as_bytes()).unwrap();
    drop(fifo_w);
    let mut got = std::collections::HashMap::new();
    for _ in 0..2 {
        let (id, reply) = conn.recv().unwrap();
        got.insert(id, reply);
    }
    assert_eq!(got[&busy_id].get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(
        got[&shutdown_id].get("shutting_down").unwrap().as_bool(),
        Some(true)
    );
    handle.join().unwrap();
    let _ = std::fs::remove_file(&fifo);
}

// ---------------------------------------------------------------------------
// Faults: torn replies and dropped connections, with backoff.
// ---------------------------------------------------------------------------

#[test]
fn torn_reply_is_retried_like_a_drop() {
    let socket = temp_socket("torn");
    let mut config = ServeConfig::new(&socket);
    // Tear the first reply the server ever writes mid-frame.
    config.faults = FaultPlan::default().arm(site::SERVE_PARTIAL_WRITE, Some(0));
    let handle = Server::spawn(config).unwrap();

    let client = Client::new(&socket);
    let status = client.status().unwrap();
    assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
    let (_, _, _, torn, _) = handle.snapshot_v2();
    assert_eq!(torn, 1, "first reply was torn by the fault");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn consecutive_drops_are_retried_with_escalating_backoff() {
    let socket = temp_socket("bk");
    let mut config = ServeConfig::new(&socket);
    // Drop the first two accepted connections: success needs retry
    // depth > 1, i.e. the 5 ms + 10 ms backoff legs both run.
    config.faults = FaultPlan::default()
        .arm(site::SERVE_DROP_CONN, Some(0))
        .arm(site::SERVE_DROP_CONN, Some(1));
    let handle = Server::spawn(config).unwrap();

    let client = Client::new(&socket).retries(2);
    let start = std::time::Instant::now();
    let status = client.status().unwrap();
    let elapsed = start.elapsed();
    assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
    assert!(
        elapsed >= lcm_serve::backoff_delay(1) + lcm_serve::backoff_delay(2),
        "two retries must wait the deterministic schedule (got {elapsed:?})"
    );
    let (_, _, _, dropped) = handle.snapshot();
    assert_eq!(dropped, 2);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

// ---------------------------------------------------------------------------
// TCP listener: same protocol, same bytes.
// ---------------------------------------------------------------------------

#[test]
fn tcp_listener_serves_identical_replies() {
    let socket = temp_socket("tcp");
    let mut config = ServeConfig::new(&socket);
    config.tcp = Some("127.0.0.1:0".into());
    let handle = Server::spawn(config).unwrap();
    let addr = handle.tcp_addr().expect("tcp listener bound").to_string();

    let unix = Client::new(&socket);
    let tcp = Client::tcp(&addr);
    let src = victim_source(3);

    // v1 over both transports: identical functions payload.
    let a = unix.analyze_source(&src, EngineKind::Pht).unwrap();
    let b = tcp.analyze_source(&src, EngineKind::Pht).unwrap();
    assert_eq!(
        a.get("functions").unwrap().render(),
        b.get("functions").unwrap().render()
    );

    // v2 pipelined over TCP.
    let mut conn = tcp.connect().unwrap();
    let id0 = conn
        .send_analyze(&victim_source(4), EngineKind::Stl)
        .unwrap();
    let id1 = conn
        .send_analyze(&victim_source(5), EngineKind::Pht)
        .unwrap();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..2 {
        let (id, reply) = conn.recv().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
        seen.insert(id);
    }
    assert!(seen.contains(&id0) && seen.contains(&id1));

    // Metrics over v2 arrive framed as JSON, not raw text.
    let mid = conn.send_cmd("metrics").unwrap();
    let (rid, reply) = conn.recv().unwrap();
    assert_eq!(rid, mid);
    assert!(reply
        .get("prometheus")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("# TYPE lcm_serve_requests_total counter"));

    unix.shutdown().unwrap();
    handle.join().unwrap();
}
