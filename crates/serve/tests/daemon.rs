//! End-to-end daemon tests: spawn a real server on a temp socket, talk
//! to it with the real client.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lcm_core::fault::{site, FaultPlan};
use lcm_core::jsonw::Json;
use lcm_detect::EngineKind;
use lcm_serve::{Client, ClientError, ServeConfig, Server};

/// A fresh socket path under the system temp dir (Unix socket paths
/// have a ~100-byte limit, so keep it short).
fn temp_socket(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lcm-{}-{tag}-{n}.sock", std::process::id()))
}

const VICTIM: &str = r#"
    int A[16]; int B[4096]; int size; int tmp;
    void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }
"#;

#[test]
fn round_trip_status_analyze_stats_shutdown() {
    let socket = temp_socket("rt");
    let handle = Server::spawn(ServeConfig::new(&socket)).unwrap();
    let client = Client::new(&socket);

    let status = client.status().unwrap();
    assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(status.get("cache").unwrap().as_str(), Some("disabled"));

    let reply = client.analyze_source(VICTIM, EngineKind::Pht).unwrap();
    let functions = reply.get("functions").unwrap().as_arr().unwrap();
    assert_eq!(functions.len(), 1);
    assert_eq!(functions[0].get("name").unwrap().as_str(), Some("victim"));
    assert_eq!(
        functions[0].get("status").unwrap().as_str(),
        Some("completed")
    );
    // No cache configured: every function is a bypass.
    assert_eq!(functions[0].get("cache").unwrap().as_str(), Some("bypass"));
    assert!(!functions[0]
        .get("findings")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("analyses").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(0));

    client.shutdown().unwrap();
    handle.join().unwrap();
    assert!(!socket.exists(), "socket file removed on shutdown");
}

#[test]
fn cache_dir_short_circuits_repeat_submissions() {
    let socket = temp_socket("cache");
    let cache_dir = std::env::temp_dir().join(format!(
        "lcm-serve-cache-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut config = ServeConfig::new(&socket);
    config.cache_dir = Some(cache_dir.clone());
    let handle = Server::spawn(config).unwrap();
    let client = Client::new(&socket);

    let cold = client.analyze_source(VICTIM, EngineKind::Pht).unwrap();
    let warm = client.analyze_source(VICTIM, EngineKind::Pht).unwrap();
    assert_eq!(cold.get("cache_hits").unwrap().as_u64(), Some(0));
    assert_eq!(warm.get("cache_hits").unwrap().as_u64(), Some(1));
    let label = |r: &Json| {
        r.get("functions").unwrap().as_arr().unwrap()[0]
            .get("cache")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(label(&cold), "miss");
    assert_eq!(label(&warm), "hit");
    // Findings identical across the hit/miss boundary.
    assert_eq!(
        cold.get("functions").unwrap().as_arr().unwrap()[0].get("findings"),
        warm.get("functions").unwrap().as_arr().unwrap()[0].get("findings"),
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn dropped_connection_is_retried_once_and_succeeds() {
    let socket = temp_socket("drop");
    let mut config = ServeConfig::new(&socket);
    // Drop the first accepted connection without a reply byte.
    config.faults = FaultPlan::default().arm(site::SERVE_DROP_CONN, Some(0));
    let handle = Server::spawn(config).unwrap();

    let client = Client::new(&socket);
    let status = client.status().unwrap();
    assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
    let (requests, _, _, dropped) = handle.snapshot();
    assert_eq!(dropped, 1, "first connection was dropped by the fault");
    assert!(requests >= 2, "the retry produced a second connection");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn dropped_connection_without_retries_surfaces_as_error() {
    let socket = temp_socket("drop0");
    let mut config = ServeConfig::new(&socket);
    config.faults = FaultPlan::default().arm(site::SERVE_DROP_CONN, Some(0));
    let handle = Server::spawn(config).unwrap();

    let client = Client::new(&socket).retries(0);
    match client.status() {
        Err(ClientError::Dropped { attempts }) => assert_eq!(attempts, 1),
        other => panic!("expected Dropped, got {other:?}"),
    }
    // A fresh request (connection ordinal 1) is served normally.
    client.status().unwrap();

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_requests_get_error_replies_not_hangs() {
    let socket = temp_socket("bad");
    let handle = Server::spawn(ServeConfig::new(&socket)).unwrap();
    let client = Client::new(&socket);

    match client.request(r#"{"cmd":"frobnicate"}"#) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown cmd"), "{msg}"),
        other => panic!("expected Server error, got {other:?}"),
    }
    match client.request(r#"{"cmd":"analyze","source":"int x = ;"}"#) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("compile error"), "{msg}"),
        other => panic!("expected compile error, got {other:?}"),
    }
    // The daemon survives garbage and still serves.
    client.status().unwrap();

    client.shutdown().unwrap();
    handle.join().unwrap();
}
