//! The append-only on-disk record log.
//!
//! File layout:
//!
//! ```text
//! {"magic": "lcm-store", "version": 1, "canon": 1}\n   // JSON header line
//! [record]*                                           // binary records
//! ```
//!
//! Each record is:
//!
//! ```text
//! magic    u32le  0x4C434D52 ("RMCL" little-endian)
//! kind     u8     1 = Clou result, 2 = baseline result
//! fp       16B    fingerprint, little-endian
//! len      u32le  payload length
//! payload  len B
//! checksum u64le  fnv64(kind || fp || payload)
//! ```
//!
//! Recovery discipline: on open, records are scanned in order; the scan
//! stops at the first damaged record (bad magic, bad kind, truncation,
//! checksum mismatch) and the file is truncated back to the last valid
//! prefix. A crash mid-append therefore costs at most the records after
//! the tear — never the store, and never the analysis (a dropped record
//! is just a future cache miss). An unreadable *header* abandons the
//! whole file: the format version is unknown, so no record can be
//! trusted.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use lcm_core::jsonw::{self, Json};

use crate::fp::{fnv64, Fingerprint};

/// Record magic: "RMCL" when viewed as little-endian bytes.
const RECORD_MAGIC: u32 = 0x4C434D52;
/// Header magic string.
const HEADER_MAGIC: &str = "lcm-store";
/// On-disk format version.
pub const STORE_VERSION: u64 = 1;
/// Refuse absurd payloads (a corrupt length prefix must not drive a
/// multi-gigabyte allocation).
const MAX_PAYLOAD: u32 = 64 << 20;

/// Payload discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A Clou [`lcm_detect::FunctionReport`].
    Clou,
    /// A baseline [`lcm_haunted::HauntedReport`].
    Bh,
}

impl RecordKind {
    fn code(self) -> u8 {
        match self {
            RecordKind::Clou => 1,
            RecordKind::Bh => 2,
        }
    }

    fn of(code: u8) -> Option<Self> {
        match code {
            1 => Some(RecordKind::Clou),
            2 => Some(RecordKind::Bh),
            _ => None,
        }
    }
}

/// One decoded record.
#[derive(Debug, Clone)]
pub struct Record {
    pub kind: RecordKind,
    pub fp: Fingerprint,
    pub payload: Vec<u8>,
}

/// What [`read_log`] found.
#[derive(Debug, Default)]
pub struct LogScan {
    /// Valid records, in append order.
    pub records: Vec<Record>,
    /// Byte offset of the end of the valid prefix (where appends resume).
    pub valid_len: u64,
    /// Records dropped by recovery (damaged suffix). `0` on a clean log.
    pub dropped: u64,
    /// True when the header itself was unreadable and the file is being
    /// started over.
    pub reset: bool,
}

/// The serialized header line.
pub fn header_line() -> String {
    let header = Json::Obj(vec![
        ("magic".into(), Json::Str(HEADER_MAGIC.into())),
        ("version".into(), Json::Num(STORE_VERSION as f64)),
        (
            "canon".into(),
            Json::Num(lcm_ir::canon::CANON_VERSION as f64),
        ),
    ]);
    let mut line = header.render();
    line.push('\n');
    line
}

fn header_ok(line: &str) -> bool {
    let Ok(h) = jsonw::parse(line) else {
        return false;
    };
    h.get("magic").and_then(Json::as_str) == Some(HEADER_MAGIC)
        && h.get("version").and_then(Json::as_u64) == Some(STORE_VERSION)
        && h.get("canon").and_then(Json::as_u64) == Some(lcm_ir::canon::CANON_VERSION as u64)
}

/// Serializes one record (used for both appends and the corruption
/// fault, which flips a byte of this buffer before it reaches disk).
pub fn encode_record(kind: RecordKind, fp: Fingerprint, payload: &[u8]) -> Vec<u8> {
    let mut sum = Vec::with_capacity(17 + payload.len());
    sum.push(kind.code());
    sum.extend_from_slice(&fp.to_bytes());
    sum.extend_from_slice(payload);
    let checksum = fnv64(&sum);
    let mut out = Vec::with_capacity(33 + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.push(kind.code());
    out.extend_from_slice(&fp.to_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn read_exact_at(buf: &[u8], pos: usize, n: usize) -> Option<&[u8]> {
    buf.get(pos..pos.checked_add(n)?)
}

/// Scans `bytes` (the file after the header) and returns every valid
/// record plus the length of the valid prefix in `bytes`.
fn scan_records(bytes: &[u8]) -> (Vec<Record>, usize, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut dropped = 0u64;
    loop {
        let start = pos;
        let Some(magic) = read_exact_at(bytes, pos, 4) else {
            // Clean EOF (or a tear shorter than a magic) — whatever
            // remains is dropped.
            dropped += (bytes.len() > start) as u64;
            return (records, start, dropped);
        };
        if u32::from_le_bytes(magic.try_into().unwrap()) != RECORD_MAGIC {
            return (records, start, dropped + 1);
        }
        pos += 4;
        let Some(&kind_code) = bytes.get(pos) else {
            return (records, start, dropped + 1);
        };
        let Some(kind) = RecordKind::of(kind_code) else {
            return (records, start, dropped + 1);
        };
        pos += 1;
        let Some(fp_bytes) = read_exact_at(bytes, pos, 16) else {
            return (records, start, dropped + 1);
        };
        let fp = Fingerprint::from_bytes(fp_bytes.try_into().unwrap());
        pos += 16;
        let Some(len_bytes) = read_exact_at(bytes, pos, 4) else {
            return (records, start, dropped + 1);
        };
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap());
        if len > MAX_PAYLOAD {
            return (records, start, dropped + 1);
        }
        pos += 4;
        let Some(payload) = read_exact_at(bytes, pos, len as usize) else {
            return (records, start, dropped + 1);
        };
        pos += len as usize;
        let Some(sum_bytes) = read_exact_at(bytes, pos, 8) else {
            return (records, start, dropped + 1);
        };
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        pos += 8;
        let mut sum = Vec::with_capacity(17 + payload.len());
        sum.push(kind_code);
        sum.extend_from_slice(&fp.to_bytes());
        sum.extend_from_slice(payload);
        if fnv64(&sum) != stored {
            return (records, start, dropped + 1);
        }
        records.push(Record {
            kind,
            fp,
            payload: payload.to_vec(),
        });
    }
}

/// Reads (and, if damaged, repairs) the log at `path`, returning the
/// valid records and a file handle positioned for appends.
///
/// Never errors on *content* — damage yields recovery, not failure.
/// I/O errors (permissions, missing parent directory) do propagate.
pub fn read_log(path: &Path) -> std::io::Result<(LogScan, File)> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let mut scan = LogScan::default();
    if bytes.is_empty() {
        // Fresh store: write the header.
        file.write_all(header_line().as_bytes())?;
        scan.valid_len = file.stream_position()?;
        return Ok((scan, file));
    }

    let header_end = bytes.iter().position(|&b| b == b'\n').map(|i| i + 1);
    let header_valid = header_end
        .map(|end| {
            std::str::from_utf8(&bytes[..end])
                .map(header_ok)
                .unwrap_or(false)
        })
        .unwrap_or(false);
    if !header_valid {
        // Unknown format (or version skew): start over. The old bytes
        // cannot be interpreted safely; dropping them only costs misses.
        scan.reset = true;
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(header_line().as_bytes())?;
        scan.valid_len = file.stream_position()?;
        return Ok((scan, file));
    }
    let header_end = header_end.unwrap();
    let (records, body_len, dropped) = scan_records(&bytes[header_end..]);
    scan.records = records;
    scan.dropped = dropped;
    scan.valid_len = (header_end + body_len) as u64;
    if scan.valid_len < bytes.len() as u64 {
        // Damaged suffix: truncate it away so the next append produces a
        // clean log rather than burying garbage mid-file.
        file.set_len(scan.valid_len)?;
    }
    file.seek(SeekFrom::Start(scan.valid_len))?;
    Ok((scan, file))
}

/// Appends one already-encoded record and flushes it.
pub fn append_record(file: &mut File, encoded: &[u8]) -> std::io::Result<()> {
    let mut w = BufWriter::new(&mut *file);
    w.write_all(encoded)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lcm-store-log-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn round_trip_and_reopen() {
        let path = temp_path("rt");
        {
            let (scan, mut file) = read_log(&path).unwrap();
            assert!(scan.records.is_empty());
            append_record(&mut file, &encode_record(RecordKind::Clou, fp(1), b"alpha")).unwrap();
            append_record(&mut file, &encode_record(RecordKind::Bh, fp(2), b"beta")).unwrap();
        }
        let (scan, _file) = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.dropped, 0);
        assert!(!scan.reset);
        assert_eq!(scan.records[0].payload, b"alpha");
        assert_eq!(scan.records[1].kind, RecordKind::Bh);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_mid_record_recovers_prefix() {
        let path = temp_path("trunc");
        {
            let (_, mut file) = read_log(&path).unwrap();
            append_record(&mut file, &encode_record(RecordKind::Clou, fp(1), b"keep")).unwrap();
            append_record(&mut file, &encode_record(RecordKind::Clou, fp(2), b"torn")).unwrap();
        }
        // Tear the last record: drop its final 3 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (scan, mut file) = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.dropped, 1);
        assert_eq!(scan.records[0].payload, b"keep");
        // The file was truncated to the valid prefix; appending works.
        append_record(&mut file, &encode_record(RecordKind::Clou, fp(3), b"next")).unwrap();
        drop(file);
        let (scan, _) = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.dropped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_flip_drops_suffix() {
        let path = temp_path("flip");
        {
            let (_, mut file) = read_log(&path).unwrap();
            append_record(&mut file, &encode_record(RecordKind::Clou, fp(1), b"good")).unwrap();
            append_record(&mut file, &encode_record(RecordKind::Clou, fp(2), b"bad!")).unwrap();
            append_record(&mut file, &encode_record(RecordKind::Clou, fp(3), b"lost")).unwrap();
        }
        // Flip one payload byte of the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let needle = bytes.windows(4).position(|w| w == b"bad!").unwrap();
        bytes[needle] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (scan, _) = read_log(&path).unwrap();
        // Recovery keeps the prefix before the damage; the record after
        // the flip is unreachable (scan stops at first damage).
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"good");
        assert!(scan.dropped >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_resets() {
        let path = temp_path("hdr");
        std::fs::write(&path, b"not a header\n\x52\x4d\x43\x4c junk").unwrap();
        let (scan, mut file) = read_log(&path).unwrap();
        assert!(scan.reset);
        assert!(scan.records.is_empty());
        append_record(&mut file, &encode_record(RecordKind::Clou, fp(9), b"new")).unwrap();
        drop(file);
        let (scan, _) = read_log(&path).unwrap();
        assert!(!scan.reset);
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_is_damage_not_allocation() {
        let path = temp_path("len");
        {
            let (_, mut file) = read_log(&path).unwrap();
            let mut rec = encode_record(RecordKind::Clou, fp(1), b"x");
            // Overwrite the length field (offset 21) with a huge value.
            rec[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
            append_record(&mut file, &rec).unwrap();
        }
        let (scan, _) = read_log(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.dropped, 1);
        std::fs::remove_file(&path).ok();
    }
}
