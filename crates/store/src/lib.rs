//! `lcm-store`: a persistent, content-addressed cache of per-function
//! analysis results.
//!
//! Clou's per-function analysis is expensive (SAT-backed chain
//! enumeration) but *pure*: the findings are a function of the IR, the
//! engine, and the configuration knobs that shape findings. This crate
//! exploits that purity. Each completed [`FunctionReport`] (and each
//! completed baseline [`HauntedReport`]) is keyed by a structural
//! [`Fingerprint`] of everything that can influence it — the function's
//! canonical encoding, its transitive callees (inlining makes their
//! bodies part of the analyzed A-CFG), referenced globals, engine, and
//! findings-affecting config — and persisted in an append-only log.
//!
//! On a warm run the engines never execute: [`analyze_module_cached`]
//! serves every unchanged function from the store, reporting it as
//! `cache: Hit` with the (micro-second scale) lookup time in the new
//! `cache` phase bucket. Editing one function invalidates exactly that
//! function (plus its callers) — see [`lcm_ir::canon`].
//!
//! Failure discipline mirrors the resilience layer (DESIGN.md §6c): a
//! missing, truncated, corrupt, or version-skewed store file **never**
//! fails analysis. Damage is repaired on open by dropping the invalid
//! suffix; an unopenable path degrades to running without a cache.

mod cached;
pub mod codec;
pub mod fp;
pub mod log;

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use lcm_core::fault::{site, FaultPlan};
use lcm_detect::FunctionReport;
use lcm_haunted::HauntedReport;

pub use cached::{
    analyze_module_bh_cached, analyze_module_cached, cached_function_report, CacheCounts,
};
pub use fp::{bh_fingerprint, clou_fingerprint, Fingerprint};
pub use log::STORE_VERSION;

use log::{Record, RecordKind};

/// Counters describing one open store's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing (or an undecodable payload).
    pub misses: u64,
    /// Records inserted this session.
    pub inserts: u64,
    /// Records loaded from disk at open.
    pub loaded: u64,
    /// Records dropped by corruption recovery at open.
    pub recovered_drop: u64,
    /// True when the file had to be reset (unreadable header).
    pub reset: bool,
}

struct Inner {
    path: PathBuf,
    /// In-memory index over the log. Later records win, so re-inserting
    /// a fingerprint (e.g. after a recovered tear) just shadows the old
    /// payload.
    map: HashMap<(u8, Fingerprint), Vec<u8>>,
    file: File,
    stats: StoreStats,
    faults: FaultPlan,
    /// Append ordinal, keys the `store.corrupt_record` fault site.
    appended: usize,
}

/// A handle to one on-disk result cache. Cheap to share: all methods
/// take `&self` (a mutex guards the map and file).
pub struct Store {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Store")
            .field("path", &inner.path)
            .field("entries", &inner.map.len())
            .finish()
    }
}

impl Store {
    /// Opens (creating or repairing as needed) the store at `path`.
    /// `path` is a file; a conventional name is `results.lcmstore`.
    /// Errors only on real I/O failure — damaged content self-repairs.
    pub fn open(path: &Path) -> std::io::Result<Store> {
        Self::open_with_faults(path, FaultPlan::default())
    }

    /// [`Store::open`] with an explicit fault plan (tests arm
    /// `store.corrupt_record` this way; `LCM_FAULT` is merged in too).
    pub fn open_with_faults(path: &Path, faults: FaultPlan) -> std::io::Result<Store> {
        let (scan, file) = log::read_log(path)?;
        let mut map = HashMap::with_capacity(scan.records.len());
        for Record { kind, fp, payload } in &scan.records {
            map.insert((kind_code(*kind), *fp), payload.clone());
        }
        let stats = StoreStats {
            loaded: scan.records.len() as u64,
            recovered_drop: scan.dropped,
            reset: scan.reset,
            ..StoreStats::default()
        };
        Ok(Store {
            inner: Mutex::new(Inner {
                path: path.to_path_buf(),
                map,
                file,
                stats,
                faults: faults.merged_with_env(),
                appended: 0,
            }),
        })
    }

    /// The file backing this store.
    pub fn path(&self) -> PathBuf {
        self.inner.lock().unwrap().path.clone()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().unwrap().stats
    }

    /// Entries currently indexed.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a cached Clou report. A present-but-undecodable payload
    /// counts as a miss (and is dropped from the index so it is not
    /// retried every lookup).
    pub fn lookup_clou(&self, fp: Fingerprint) -> Option<FunctionReport> {
        self.lookup(RecordKind::Clou, fp, |payload| {
            codec::decode_clou(payload).ok()
        })
    }

    /// Caches a completed Clou report. Degraded reports are rejected by
    /// the caller ([`cached_function_report`]), not here, because this
    /// layer cannot distinguish "legitimately empty" from "cut short".
    pub fn insert_clou(&self, fp: Fingerprint, report: &FunctionReport) {
        self.insert(RecordKind::Clou, fp, codec::encode_clou(report));
    }

    /// Looks up a cached baseline report.
    pub fn lookup_bh(&self, fp: Fingerprint) -> Option<HauntedReport> {
        self.lookup(RecordKind::Bh, fp, |payload| codec::decode_bh(payload).ok())
    }

    /// Caches a completed baseline report.
    pub fn insert_bh(&self, fp: Fingerprint, report: &HauntedReport) {
        self.insert(RecordKind::Bh, fp, codec::encode_bh(report));
    }

    fn lookup<T>(
        &self,
        kind: RecordKind,
        fp: Fingerprint,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let key = (kind_code(kind), fp);
        match inner.map.get(&key).map(|p| decode(p)) {
            Some(Some(v)) => {
                inner.stats.hits += 1;
                Some(v)
            }
            Some(None) => {
                inner.map.remove(&key);
                inner.stats.misses += 1;
                None
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Rewrites the log so it holds exactly the live entries — shadowed
    /// duplicates and recovered-over garbage dropped — in deterministic
    /// `(kind, fingerprint)` order. Returns the record count of the
    /// compacted log.
    ///
    /// Crash discipline: every byte goes to a sibling temp file first
    /// and the old log is only replaced by one atomic `rename`, so a
    /// crash at any point (the `store.compact_crash` fault site
    /// simulates one after `index` records) leaves either the old log
    /// fully intact or the new one fully written — never a torn store.
    /// A leftover temp file is inert debris; the next compact
    /// overwrites it.
    pub fn compact(&self) -> std::io::Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        let tmp_path = compact_tmp_path(&inner.path);
        let mut entries: Vec<((u8, Fingerprint), Vec<u8>)> =
            inner.map.iter().map(|(k, v)| (*k, v.clone())).collect();
        entries.sort_by_key(|&((kind, fp), _)| (kind, fp.0));
        {
            let tmp = File::create(&tmp_path)?;
            let mut w = std::io::BufWriter::new(tmp);
            w.write_all(log::header_line().as_bytes())?;
            for (i, ((kind_code, fp), payload)) in entries.iter().enumerate() {
                if inner.faults.fires(site::STORE_COMPACT_CRASH, i) {
                    // Simulated crash: flush the partial temp file (the
                    // debris a real crash leaves) and bail before the
                    // rename. The live log is untouched.
                    w.flush()?;
                    return Err(std::io::Error::other(format!(
                        "injected fault: store.compact_crash after {i} records"
                    )));
                }
                let kind = kind_of_code(*kind_code);
                w.write_all(&log::encode_record(kind, *fp, payload))?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, &inner.path)?;
        // Swap the append handle onto the compacted file.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&inner.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.file = file;
        Ok(entries.len() as u64)
    }

    fn insert(&self, kind: RecordKind, fp: Fingerprint, payload: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        let mut encoded = log::encode_record(kind, fp, &payload);
        if inner
            .faults
            .fires(site::STORE_CORRUPT_RECORD, inner.appended)
        {
            // Damage the on-disk bytes only: flip one payload byte after
            // the checksum was computed. The in-memory index keeps the
            // good copy, so this session is unaffected; the *next* open
            // exercises the recovery path.
            let idx = encoded.len() - 9; // last payload byte
            encoded[idx] ^= 0xFF;
        }
        inner.appended += 1;
        // A write failure (disk full, file deleted underneath us) makes
        // the entry session-only: still indexed in memory, just not
        // persisted. Analysis must not fail because the cache could not.
        if log::append_record(&mut inner.file, &encoded).is_ok() {
            inner.stats.inserts += 1;
        }
        inner.map.insert((kind_code(kind), fp), payload);
    }
}

fn kind_code(kind: RecordKind) -> u8 {
    match kind {
        RecordKind::Clou => 1,
        RecordKind::Bh => 2,
    }
}

fn kind_of_code(code: u8) -> RecordKind {
    match code {
        1 => RecordKind::Clou,
        2 => RecordKind::Bh,
        _ => unreachable!("kind codes come from kind_code"),
    }
}

/// The sibling temp file `compact` writes before the atomic rename.
fn compact_tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "store".into());
    name.push(".compact-tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lcm-store-{}-{tag}-{n}.lcmstore",
            std::process::id()
        ))
    }

    fn sample_report(name: &str) -> FunctionReport {
        FunctionReport {
            name: name.into(),
            transmitters: vec![],
            saeg_size: 17,
            runtime: std::time::Duration::ZERO,
            timings: Default::default(),
            status: lcm_detect::FunctionStatus::Completed,
            cache: lcm_detect::CacheStatus::Miss,
        }
    }

    #[test]
    fn insert_lookup_reopen() {
        let path = temp_store("basic");
        let fp = Fingerprint(42);
        {
            let store = Store::open(&path).unwrap();
            assert!(store.lookup_clou(fp).is_none());
            store.insert_clou(fp, &sample_report("f"));
            let hit = store.lookup_clou(fp).unwrap();
            assert_eq!(hit.name, "f");
            assert_eq!(hit.saeg_size, 17);
            let s = store.stats();
            assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.stats().loaded, 1);
        assert_eq!(store.lookup_clou(fp).unwrap().name, "f");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_fault_damages_disk_not_session() {
        let path = temp_store("fault");
        let fp0 = Fingerprint(1);
        let fp1 = Fingerprint(2);
        {
            let faults = FaultPlan::default().arm(site::STORE_CORRUPT_RECORD, Some(0));
            let store = Store::open_with_faults(&path, faults).unwrap();
            store.insert_clou(fp0, &sample_report("damaged"));
            store.insert_clou(fp1, &sample_report("clean"));
            // In-memory copies are intact either way.
            assert!(store.lookup_clou(fp0).is_some());
            assert!(store.lookup_clou(fp1).is_some());
        }
        // Reopen: record 0 is damaged on disk, so recovery drops it (and
        // everything after the damage — append-only logs recover a
        // prefix). Analysis still works; the entries are just misses.
        let store = Store::open(&path).unwrap();
        assert!(store.stats().recovered_drop >= 1);
        assert!(store.lookup_clou(fp0).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_keeps_only_live_records() {
        let path = temp_store("compact");
        {
            let store = Store::open(&path).unwrap();
            // Shadow fp 1 twice: three appends, two live entries.
            store.insert_clou(Fingerprint(1), &sample_report("old"));
            store.insert_clou(Fingerprint(1), &sample_report("new"));
            store.insert_clou(Fingerprint(2), &sample_report("other"));
            assert_eq!(store.compact().unwrap(), 2);
            // The compacted store keeps serving this session.
            assert_eq!(store.lookup_clou(Fingerprint(1)).unwrap().name, "new");
            store.insert_clou(Fingerprint(3), &sample_report("appended"));
        }
        // Reopen: exactly the live records (+ the post-compact append),
        // the shadowed duplicate gone.
        let store = Store::open(&path).unwrap();
        assert_eq!(store.stats().loaded, 3);
        assert_eq!(store.stats().recovered_drop, 0);
        assert_eq!(store.lookup_clou(Fingerprint(1)).unwrap().name, "new");
        assert_eq!(store.lookup_clou(Fingerprint(3)).unwrap().name, "appended");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_crash_leaves_old_log_fully_intact() {
        let path = temp_store("compact-crash");
        {
            let faults = FaultPlan::default().arm(site::STORE_COMPACT_CRASH, Some(1));
            let store = Store::open_with_faults(&path, faults).unwrap();
            store.insert_clou(Fingerprint(1), &sample_report("a"));
            store.insert_clou(Fingerprint(2), &sample_report("b"));
            let err = store.compact().unwrap_err();
            assert!(err.to_string().contains("store.compact_crash"));
            // The crash left partial-temp debris but never touched the
            // live log.
            assert!(compact_tmp_path(&path).exists());
        }
        // Reopen the old log: every record still there, nothing torn.
        let store = Store::open(&path).unwrap();
        assert_eq!(store.stats().loaded, 2);
        assert!(!store.stats().reset);
        assert_eq!(store.stats().recovered_drop, 0);
        assert!(store.lookup_clou(Fingerprint(1)).is_some());
        assert!(store.lookup_clou(Fingerprint(2)).is_some());
        // A retry without the fault completes and replaces the debris.
        assert_eq!(store.compact().unwrap(), 2);
        assert!(!compact_tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clou_and_bh_namespaces_are_disjoint() {
        let path = temp_store("ns");
        let store = Store::open(&path).unwrap();
        let fp = Fingerprint(7);
        store.insert_clou(fp, &sample_report("f"));
        assert!(store.lookup_bh(fp).is_none());
        assert!(store.lookup_clou(fp).is_some());
        std::fs::remove_file(&path).ok();
    }
}
