//! Cache-aware analysis drivers: the store wired in front of the
//! engines.

use std::time::Instant;

use lcm_core::govern::AnalysisError;
use lcm_detect::{CacheStatus, Detector, EngineKind, FunctionReport, ModuleReport};
use lcm_haunted::{HauntedConfig, HauntedEngine, HauntedModuleReport, HauntedReport};
use lcm_ir::Module;

use crate::fp::{bh_fingerprint, clou_fingerprint};
use crate::Store;

/// How a batch of function analyses interacted with the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Functions served entirely from the store.
    pub hits: u64,
    /// Functions analyzed and stored.
    pub misses: u64,
    /// Functions that skipped the cache (no store, or uncacheable).
    pub bypassed: u64,
}

impl CacheCounts {
    /// Accumulates another batch.
    pub fn merge(&mut self, other: CacheCounts) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypassed += other.bypassed;
    }

    /// Tallies the per-function `cache` labels of a module report.
    pub fn of(report: &ModuleReport) -> CacheCounts {
        let mut c = CacheCounts::default();
        for f in &report.functions {
            match f.cache {
                CacheStatus::Hit => c.hits += 1,
                CacheStatus::Miss => c.misses += 1,
                CacheStatus::Bypass => c.bypassed += 1,
            }
        }
        c
    }

    /// Total functions observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.bypassed
    }
}

/// Analyzes one function through the cache.
///
/// * **Hit** — the stored findings come back verbatim; `runtime` and the
///   `cache` phase bucket are the lookup time; no engine runs.
/// * **Miss** — the engine runs ([`Detector::analyze_function`]-style,
///   governed, with `index` keying the fault plan); a *completed* result
///   is inserted. Degraded results are never cached: their findings are
///   a lower bound that would otherwise be served as truth forever.
pub fn cached_function_report(
    det: &Detector,
    module: &Module,
    fname: &str,
    engine: EngineKind,
    store: &Store,
) -> FunctionReport {
    let t0 = Instant::now();
    let mut sp = lcm_obs::span("cache_lookup", "store");
    sp.arg_str("fn", fname);
    let fp = clou_fingerprint(module, fname, det.config(), engine);
    if let Some(mut hit) = store.lookup_clou(fp) {
        sp.arg_str("cache", CacheStatus::Hit.label());
        cache_traffic(CacheStatus::Hit).inc();
        let elapsed = t0.elapsed();
        hit.runtime = elapsed;
        hit.timings.cache = elapsed;
        hit.timings.cache_hits = 1;
        return hit;
    }
    drop(sp);
    let mut report = det.analyze_function(module, fname, engine);
    if report.status.is_completed() {
        report.cache = CacheStatus::Miss;
        store.insert_clou(fp, &report);
    } else {
        report.cache = CacheStatus::Bypass;
    }
    cache_traffic(report.cache).inc();
    // Everything this function spent beyond the engine run itself —
    // fingerprinting, lookup, insertion — lands in the cache bucket so
    // the breakdown still sums to wall clock.
    let wall = t0.elapsed();
    report.timings.cache = wall.saturating_sub(report.runtime);
    report.runtime = wall;
    report
}

/// The process-wide counter tracking one cache disposition
/// (`lcm_cache_{hits,misses,bypass}_total`).
fn cache_traffic(status: CacheStatus) -> &'static lcm_obs::metrics::Counter {
    use lcm_obs::metrics::{global, names, Counter};
    use std::sync::OnceLock;
    static HANDLES: OnceLock<[Counter; 3]> = OnceLock::new();
    let [hits, misses, bypass] = HANDLES.get_or_init(|| {
        let g = global();
        [
            g.counter(names::CACHE_HITS, "Function results served from the store"),
            g.counter(
                names::CACHE_MISSES,
                "Function results analyzed and inserted into the store",
            ),
            g.counter(
                names::CACHE_BYPASS,
                "Function results that skipped the store (degraded/uncacheable)",
            ),
        ]
    });
    match status {
        CacheStatus::Hit => hits,
        CacheStatus::Miss => misses,
        CacheStatus::Bypass => bypass,
    }
}

/// [`Detector::analyze_module`] with the store in front: every public
/// function goes through [`cached_function_report`], fanned out over
/// `det.config().jobs` workers. Worker panics degrade the one function
/// (same discipline as the uncached path).
pub fn analyze_module_cached(
    det: &Detector,
    module: &Module,
    engine: EngineKind,
    store: &Store,
) -> ModuleReport {
    let names: Vec<&str> = module.public_functions().map(|f| f.name.as_str()).collect();
    let results = lcm_core::par::map_indexed_catch(&names, det.config().jobs, |_, name| {
        cached_function_report(det, module, name, engine, store)
    });
    let functions = results
        .into_iter()
        .zip(&names)
        .map(|(res, name)| match res {
            Ok(report) => report,
            Err(message) => {
                FunctionReport::degraded(name.to_string(), AnalysisError::WorkerPanic { message })
            }
        })
        .collect();
    ModuleReport { functions }
}

/// The baseline (Binsec/Haunted stand-in) with the store in front.
/// Only *exhaustive or capped-but-deterministic* results are cached:
/// the step/path caps are part of the fingerprint, so a cached partial
/// result is exactly reproducible. Degraded functions (A-CFG failure,
/// worker panic) are never cached.
pub fn analyze_module_bh_cached(
    module: &Module,
    engine: HauntedEngine,
    config: HauntedConfig,
    store: &Store,
) -> (HauntedModuleReport, CacheCounts) {
    let names: Vec<&str> = module.public_functions().map(|f| f.name.as_str()).collect();
    let results = lcm_core::par::map_indexed_catch(&names, config.jobs, |_, name| {
        cached_bh_function(module, name, engine, config, store)
    });
    let mut counts = CacheCounts::default();
    let functions = results
        .into_iter()
        .zip(&names)
        .map(|(res, name)| match res {
            Ok((report, was_hit)) => {
                if was_hit {
                    counts.hits += 1;
                } else if report.degraded.is_none() {
                    counts.misses += 1;
                } else {
                    counts.bypassed += 1;
                }
                report
            }
            Err(message) => {
                counts.bypassed += 1;
                HauntedReport {
                    name: name.to_string(),
                    leaks: Vec::new(),
                    paths_explored: 0,
                    exhausted: false,
                    runtime: std::time::Duration::ZERO,
                    t_enumerate: std::time::Duration::ZERO,
                    t_execute: std::time::Duration::ZERO,
                    t_witness: std::time::Duration::ZERO,
                    degraded: Some(format!("worker panic: {message}")),
                }
            }
        })
        .collect();
    (HauntedModuleReport { functions }, counts)
}

fn cached_bh_function(
    module: &Module,
    fname: &str,
    engine: HauntedEngine,
    config: HauntedConfig,
    store: &Store,
) -> (HauntedReport, bool) {
    let t0 = Instant::now();
    let fp = bh_fingerprint(module, fname, &config, engine);
    if let Some(mut hit) = store.lookup_bh(fp) {
        hit.runtime = t0.elapsed();
        return (hit, true);
    }
    let report = lcm_haunted::analyze_function(module, fname, engine, config);
    if report.degraded.is_none() {
        store.insert_bh(fp, &report);
    }
    (report, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lcm-cached-{}-{tag}-{n}.lcmstore",
            std::process::id()
        ))
    }

    fn spectre_module() -> Module {
        lcm_minic::compile(
            r#"
            int A[16]; int B[4096]; int size; int tmp;
            void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn second_run_is_all_hits_with_identical_findings() {
        let path = temp_store("warm");
        let store = Store::open(&path).unwrap();
        let det = Detector::default();
        let m = spectre_module();
        let cold = analyze_module_cached(&det, &m, EngineKind::Pht, &store);
        let warm = analyze_module_cached(&det, &m, EngineKind::Pht, &store);
        assert_eq!(CacheCounts::of(&cold).misses, 1);
        assert_eq!(CacheCounts::of(&warm).hits, 1);
        assert_eq!(warm.functions[0].cache, CacheStatus::Hit);
        // Findings identical modulo timing fields.
        assert_eq!(
            cold.functions[0].transmitters,
            warm.functions[0].transmitters
        );
        assert_eq!(cold.functions[0].saeg_size, warm.functions[0].saeg_size);
        // The warm run's only tracked time is the cache bucket.
        assert_eq!(warm.timings().cache_hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn degraded_results_are_never_cached() {
        use lcm_core::fault::site;
        use lcm_detect::DetectorConfig;
        let path = temp_store("degraded");
        let store = Store::open(&path).unwrap();
        let m = spectre_module();
        let mut cfg = DetectorConfig::default();
        cfg.faults = lcm_core::FaultPlan::default().arm(site::SOLVER_ABORT, None);
        let det = Detector::new(cfg);
        let r = analyze_module_cached(&det, &m, EngineKind::Pht, &store);
        assert!(!r.functions[0].status.is_completed());
        assert_eq!(r.functions[0].cache, CacheStatus::Bypass);
        assert!(store.is_empty());
        // A healthy detector afterwards misses (nothing was poisoned).
        let det = Detector::default();
        let r = analyze_module_cached(&det, &m, EngineKind::Pht, &store);
        assert_eq!(r.functions[0].cache, CacheStatus::Miss);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bh_results_cache_too() {
        let path = temp_store("bh");
        let store = Store::open(&path).unwrap();
        let m = spectre_module();
        let cfg = HauntedConfig {
            jobs: 1,
            ..HauntedConfig::default()
        };
        let (cold, c0) = analyze_module_bh_cached(&m, HauntedEngine::Pht, cfg, &store);
        let (warm, c1) = analyze_module_bh_cached(&m, HauntedEngine::Pht, cfg, &store);
        assert_eq!(c0.misses, 1);
        assert_eq!(c1.hits, 1);
        assert_eq!(cold.functions[0].leaks, warm.functions[0].leaks);
        assert_eq!(
            cold.functions[0].paths_explored,
            warm.functions[0].paths_explored
        );
        std::fs::remove_file(&path).ok();
    }
}
