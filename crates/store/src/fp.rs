//! Structural fingerprints: the content addresses of cached results.
//!
//! A fingerprint hashes *everything that can influence a function's
//! findings* and nothing else:
//!
//! * the canonical encoding of the function, its transitive defined
//!   callees, and the globals they reference
//!   ([`lcm_ir::canon::encode_function_deps`] — inlining and unrolling
//!   make callee bodies part of the analyzed A-CFG);
//! * which engine ran (PHT / STL / PSF, or a baseline engine);
//! * every configuration knob that changes completed findings
//!   (speculation capacities, window size, class filters, extension
//!   toggles). Knobs that only change *how fast* the same findings are
//!   produced — `jobs`, `disable_prefilter`, budgets, fault plans — are
//!   deliberately excluded, so a warm cache survives a thread-count or
//!   budget change.
//!
//! The hash is 128-bit FNV-1a. It is not cryptographic — the store
//! defends against corruption and version skew, not adversarial
//! collision-crafting — but 128 bits make accidental collisions
//! negligible at any realistic cache size.

use lcm_detect::{DetectorConfig, EngineKind};
use lcm_haunted::{HauntedConfig, HauntedEngine};
use lcm_ir::{canon, Module};

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Streaming FNV-1a/128 hasher.
#[derive(Debug, Clone)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128(FNV_OFFSET)
    }
}

impl Fnv128 {
    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a length-prefixed string (prefixing keeps field
    /// boundaries unambiguous: `("ab","c")` must not collide with
    /// `("a","bc")`).
    pub fn update_str(&mut self, s: &str) {
        self.update(&(s.len() as u32).to_le_bytes());
        self.update(s.as_bytes());
    }

    /// Absorbs a u64 field.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.0)
    }
}

/// A 128-bit content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// On-disk little-endian form.
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Parses the on-disk form.
    pub fn from_bytes(b: [u8; 16]) -> Self {
        Fingerprint(u128::from_le_bytes(b))
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a/64, used for per-record checksums in the log (16 bytes of
/// checksum per record would be overkill; 8 detect any realistic
/// bit-rot or torn write).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn engine_tag(engine: EngineKind) -> u64 {
    match engine {
        EngineKind::Pht => 0,
        EngineKind::Stl => 1,
        EngineKind::Psf => 2,
    }
}

/// The address of one (function, Clou engine, config) analysis result.
pub fn clou_fingerprint(
    module: &Module,
    fname: &str,
    config: &DetectorConfig,
    engine: EngineKind,
) -> Fingerprint {
    let mut h = Fnv128::default();
    h.update_str("clou");
    h.update_u64(engine_tag(engine));
    // Findings-affecting knobs only; see module docs for the exclusions.
    h.update_u64(config.spec.rob_size as u64);
    h.update_u64(config.spec.lsq_size as u64);
    h.update_u64(config.spec.speculation_depth as u64);
    h.update_u64(config.window as u64);
    h.update_u64(match config.target_class {
        None => u64::MAX,
        Some(c) => c as u64,
    });
    h.update_u64(config.gep_filter as u64);
    h.update_u64(config.universal_needs_transient_access as u64);
    h.update_u64(config.secret_filter as u64);
    h.update_u64(config.detect_interference as u64);
    h.update(&canon::encode_function_deps(module, fname));
    h.finish()
}

/// The address of one (function, baseline engine, config) result.
pub fn bh_fingerprint(
    module: &Module,
    fname: &str,
    config: &HauntedConfig,
    engine: HauntedEngine,
) -> Fingerprint {
    let mut h = Fnv128::default();
    h.update_str("bh");
    h.update_u64(match engine {
        HauntedEngine::Pht => 0,
        HauntedEngine::Stl => 1,
    });
    h.update_u64(config.rob as u64);
    h.update_u64(config.lsq as u64);
    // Unlike the Clou knobs, the exploration caps *do* shape the result
    // set (partial exploration stops early), so they address the cache.
    h.update_u64(config.max_paths as u64);
    h.update_u64(config.step_budget);
    h.update(&canon::encode_function_deps(module, fname));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> Module {
        lcm_minic::compile(
            r#"
            int A[16]; int B[4096]; int size; int tmp;
            void victim(int y) { if (y < size) tmp &= B[A[y] * 512]; }
            void other(int y) { if (y < size) tmp &= A[y]; }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn known_vectors() {
        // FNV-1a/128 of the empty string is the offset basis; of "a" is
        // a published test vector.
        assert_eq!(Fnv128::default().finish().0, FNV_OFFSET);
        let mut h = Fnv128::default();
        h.update(b"a");
        assert_eq!(h.finish().0, 0xd228cb696f1a8caf78912b704e4a8964);
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn deterministic_and_function_sensitive() {
        let m = module();
        let cfg = DetectorConfig::default();
        let a = clou_fingerprint(&m, "victim", &cfg, EngineKind::Pht);
        let b = clou_fingerprint(&m, "victim", &cfg, EngineKind::Pht);
        assert_eq!(a, b);
        assert_ne!(a, clou_fingerprint(&m, "other", &cfg, EngineKind::Pht));
        assert_ne!(a, clou_fingerprint(&m, "victim", &cfg, EngineKind::Stl));
    }

    #[test]
    fn findings_knobs_address_the_cache() {
        let m = module();
        let base = DetectorConfig::default();
        let a = clou_fingerprint(&m, "victim", &base, EngineKind::Pht);
        let mut cfg = base.clone();
        cfg.window = 64;
        assert_ne!(a, clou_fingerprint(&m, "victim", &cfg, EngineKind::Pht));
        let mut cfg = base.clone();
        cfg.secret_filter = true;
        assert_ne!(a, clou_fingerprint(&m, "victim", &cfg, EngineKind::Pht));
        let mut cfg = base.clone();
        cfg.spec.rob_size = 64;
        assert_ne!(a, clou_fingerprint(&m, "victim", &cfg, EngineKind::Pht));
    }

    #[test]
    fn speed_knobs_do_not() {
        let m = module();
        let base = DetectorConfig::default();
        let a = clou_fingerprint(&m, "victim", &base, EngineKind::Pht);
        let mut cfg = base.clone();
        cfg.jobs = 7;
        cfg.disable_prefilter = true;
        cfg.budgets.max_conflicts = Some(12);
        assert_eq!(a, clou_fingerprint(&m, "victim", &cfg, EngineKind::Pht));
    }

    #[test]
    fn bh_fingerprints_distinct_from_clou() {
        let m = module();
        let a = bh_fingerprint(&m, "victim", &HauntedConfig::default(), HauntedEngine::Pht);
        let b = clou_fingerprint(&m, "victim", &DetectorConfig::default(), EngineKind::Pht);
        assert_ne!(a, b);
        let mut cfg = HauntedConfig::default();
        cfg.jobs = 3; // fan-out width never addresses the cache
        assert_eq!(a, bh_fingerprint(&m, "victim", &cfg, HauntedEngine::Pht));
        cfg.max_paths = 7; // exploration caps do
        assert_ne!(a, bh_fingerprint(&m, "victim", &cfg, HauntedEngine::Pht));
    }
}
