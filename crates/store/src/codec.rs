//! Binary payload encoding of cached results.
//!
//! Hand-rolled little-endian records (the workspace carries no serde;
//! DESIGN.md §6). Decoding is *total*: every read is bounds-checked and
//! every tag validated, returning [`Corrupt`] instead of panicking, so
//! a damaged record on disk degrades to a cache miss rather than an
//! abort.

use std::time::Duration;

use lcm_aeg::EventId;
use lcm_core::speculation::SpeculationPrimitive;
use lcm_core::taxonomy::TransmitterClass;
use lcm_detect::{CacheStatus, Finding, FunctionReport, FunctionStatus, PhaseTimings};
use lcm_haunted::{HauntedLeak, HauntedReport};
use lcm_ir::{BlockId, InstId};

/// A payload that failed to decode (bad tag, truncated field, absurd
/// length). The store treats this exactly like a checksum failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corrupt;

impl std::fmt::Display for Corrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("corrupt cache payload")
    }
}

impl std::error::Error for Corrupt {}

/// Byte-appending writer.
pub struct W(pub Vec<u8>);

impl W {
    pub fn new() -> Self {
        W(Vec::with_capacity(64))
    }
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn bool(&mut self, v: bool) {
        self.0.push(v as u8);
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }
}

impl Default for W {
    fn default() -> Self {
        Self::new()
    }
}

/// Bounds-checked cursor reader.
pub struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        R { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Corrupt> {
        let end = self.pos.checked_add(n).ok_or(Corrupt)?;
        if end > self.buf.len() {
            return Err(Corrupt);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, Corrupt> {
        Ok(self.take(1)?[0])
    }
    pub fn bool(&mut self) -> Result<bool, Corrupt> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Corrupt),
        }
    }
    pub fn u32(&mut self) -> Result<u32, Corrupt> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> Result<u64, Corrupt> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn str(&mut self) -> Result<String, Corrupt> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Corrupt)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, Corrupt> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(Corrupt),
        }
    }
    /// Every byte must be consumed — trailing garbage is corruption.
    pub fn finish(self) -> Result<(), Corrupt> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Corrupt)
        }
    }
}

fn class_code(c: TransmitterClass) -> u8 {
    match c {
        TransmitterClass::Address => 0,
        TransmitterClass::Control => 1,
        TransmitterClass::Data => 2,
        TransmitterClass::UniversalControl => 3,
        TransmitterClass::UniversalData => 4,
    }
}

fn class_of(code: u8) -> Result<TransmitterClass, Corrupt> {
    Ok(match code {
        0 => TransmitterClass::Address,
        1 => TransmitterClass::Control,
        2 => TransmitterClass::Data,
        3 => TransmitterClass::UniversalControl,
        4 => TransmitterClass::UniversalData,
        _ => return Err(Corrupt),
    })
}

fn primitive_code(p: SpeculationPrimitive) -> u8 {
    match p {
        SpeculationPrimitive::ConditionalBranch => 0,
        SpeculationPrimitive::StoreForwarding => 1,
        SpeculationPrimitive::AliasPrediction => 2,
    }
}

fn primitive_of(code: u8) -> Result<SpeculationPrimitive, Corrupt> {
    Ok(match code {
        0 => SpeculationPrimitive::ConditionalBranch,
        1 => SpeculationPrimitive::StoreForwarding,
        2 => SpeculationPrimitive::AliasPrediction,
        _ => return Err(Corrupt),
    })
}

/// Serializes one [`Finding`] into `w`. Public because the fleet wire
/// protocol (`lcm-fleet`) ships findings across the worker-process
/// boundary with the identical encoding the store uses on disk.
pub fn encode_finding(w: &mut W, f: &Finding) {
    w.str(&f.function);
    w.u64(f.transmitter.0 as u64);
    w.u32(f.transmitter_inst.0);
    w.u8(class_code(f.class));
    w.bool(f.transient_transmitter);
    w.opt_u64(f.access.map(|e| e.0 as u64));
    w.bool(f.access_transient);
    w.opt_u64(f.index.map(|e| e.0 as u64));
    w.u8(primitive_code(f.primitive));
    w.opt_u64(f.branch.map(|b| b.0 as u64));
    w.opt_u64(f.bypassed_store.map(|e| e.0 as u64));
    w.bool(f.interference);
    w.u32(f.witness_blocks.len() as u32);
    for b in &f.witness_blocks {
        w.u32(b.0);
    }
    match f.witness_dir {
        None => w.u8(0),
        Some((b, taken)) => {
            w.u8(1);
            w.u32(b.0);
            w.bool(taken);
        }
    }
}

/// Deserializes one [`Finding`] (inverse of [`encode_finding`]).
pub fn decode_finding(r: &mut R) -> Result<Finding, Corrupt> {
    let function = r.str()?;
    let transmitter = EventId(r.u64()? as usize);
    let transmitter_inst = InstId(r.u32()?);
    let class = class_of(r.u8()?)?;
    let transient_transmitter = r.bool()?;
    let access = r.opt_u64()?.map(|v| EventId(v as usize));
    let access_transient = r.bool()?;
    let index = r.opt_u64()?.map(|v| EventId(v as usize));
    let primitive = primitive_of(r.u8()?)?;
    let branch = r.opt_u64()?.map(|v| BlockId(v as u32));
    let bypassed_store = r.opt_u64()?.map(|v| EventId(v as usize));
    let interference = r.bool()?;
    let n = r.u32()? as usize;
    // A length prefix beyond the payload is caught by `take`, but cap it
    // anyway so a corrupt prefix cannot trigger a huge allocation.
    if n > r.buf.len() {
        return Err(Corrupt);
    }
    let mut witness_blocks = Vec::with_capacity(n);
    for _ in 0..n {
        witness_blocks.push(BlockId(r.u32()?));
    }
    let witness_dir = match r.u8()? {
        0 => None,
        1 => Some((BlockId(r.u32()?), r.bool()?)),
        _ => return Err(Corrupt),
    };
    Ok(Finding {
        function,
        transmitter,
        transmitter_inst,
        class,
        transient_transmitter,
        access,
        access_transient,
        index,
        primitive,
        branch,
        bypassed_store,
        interference,
        witness_blocks,
        witness_dir,
    })
}

/// Serializes a completed [`FunctionReport`]. Timing fields are not
/// stored — a cache hit's `runtime` is the (tiny) time spent serving it,
/// which callers fill in.
pub fn encode_clou(report: &FunctionReport) -> Vec<u8> {
    debug_assert!(report.status.is_completed());
    let mut w = W::new();
    w.str(&report.name);
    w.u64(report.saeg_size as u64);
    w.u32(report.transmitters.len() as u32);
    for f in &report.transmitters {
        encode_finding(&mut w, f);
    }
    w.0
}

/// Deserializes a [`FunctionReport`] with `cache: Hit` and zeroed
/// timings (the caller stamps lookup time into `timings.cache`).
pub fn decode_clou(payload: &[u8]) -> Result<FunctionReport, Corrupt> {
    let mut r = R::new(payload);
    let name = r.str()?;
    let saeg_size = r.u64()? as usize;
    let n = r.u32()? as usize;
    if n > payload.len() {
        return Err(Corrupt);
    }
    let mut transmitters = Vec::with_capacity(n);
    for _ in 0..n {
        transmitters.push(decode_finding(&mut r)?);
    }
    r.finish()?;
    Ok(FunctionReport {
        name,
        transmitters,
        saeg_size,
        runtime: Duration::ZERO,
        timings: PhaseTimings::default(),
        status: FunctionStatus::Completed,
        cache: CacheStatus::Hit,
    })
}

/// Serializes a completed (non-degraded) baseline report.
pub fn encode_bh(report: &HauntedReport) -> Vec<u8> {
    debug_assert!(report.degraded.is_none());
    let mut w = W::new();
    w.str(&report.name);
    w.u32(report.leaks.len() as u32);
    for l in &report.leaks {
        w.str(&l.function);
        w.u32(l.inst.0);
        w.u8(primitive_code(l.primitive));
    }
    w.u64(report.paths_explored as u64);
    w.bool(report.exhausted);
    w.0
}

/// Deserializes a baseline report (zero runtime; caller stamps it).
pub fn decode_bh(payload: &[u8]) -> Result<HauntedReport, Corrupt> {
    let mut r = R::new(payload);
    let name = r.str()?;
    let n = r.u32()? as usize;
    if n > payload.len() {
        return Err(Corrupt);
    }
    let mut leaks = Vec::with_capacity(n);
    for _ in 0..n {
        leaks.push(HauntedLeak {
            function: r.str()?,
            inst: InstId(r.u32()?),
            primitive: primitive_of(r.u8()?)?,
        });
    }
    let paths_explored = r.u64()? as usize;
    let exhausted = r.bool()?;
    r.finish()?;
    Ok(HauntedReport {
        name,
        leaks,
        paths_explored,
        exhausted,
        runtime: Duration::ZERO,
        t_enumerate: Duration::ZERO,
        t_execute: Duration::ZERO,
        t_witness: Duration::ZERO,
        degraded: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            function: "victim".into(),
            transmitter: EventId(7),
            transmitter_inst: InstId(3),
            class: TransmitterClass::UniversalData,
            transient_transmitter: true,
            access: Some(EventId(2)),
            access_transient: true,
            index: Some(EventId(1)),
            primitive: SpeculationPrimitive::ConditionalBranch,
            branch: Some(BlockId(0)),
            bypassed_store: None,
            interference: false,
            witness_blocks: vec![BlockId(0), BlockId(2)],
            witness_dir: Some((BlockId(0), true)),
        }
    }

    #[test]
    fn clou_round_trip() {
        let report = FunctionReport {
            name: "victim".into(),
            transmitters: vec![finding()],
            saeg_size: 42,
            runtime: Duration::from_millis(9),
            timings: PhaseTimings::default(),
            status: FunctionStatus::Completed,
            cache: CacheStatus::Miss,
        };
        let bytes = encode_clou(&report);
        let back = decode_clou(&bytes).unwrap();
        assert_eq!(back.name, report.name);
        assert_eq!(back.saeg_size, report.saeg_size);
        assert_eq!(back.transmitters, report.transmitters);
        assert_eq!(back.cache, CacheStatus::Hit);
        assert!(back.status.is_completed());
    }

    #[test]
    fn bh_round_trip() {
        let report = HauntedReport {
            name: "victim".into(),
            leaks: vec![HauntedLeak {
                function: "victim".into(),
                inst: InstId(5),
                primitive: SpeculationPrimitive::StoreForwarding,
            }],
            paths_explored: 12,
            exhausted: true,
            runtime: Duration::ZERO,
            t_enumerate: Duration::ZERO,
            t_execute: Duration::ZERO,
            t_witness: Duration::ZERO,
            degraded: None,
        };
        let bytes = encode_bh(&report);
        let back = decode_bh(&bytes).unwrap();
        assert_eq!(back.leaks, report.leaks);
        assert_eq!(back.paths_explored, 12);
        assert!(back.exhausted);
    }

    #[test]
    fn every_truncation_is_corrupt_not_panic() {
        let report = FunctionReport {
            name: "f".into(),
            transmitters: vec![finding(), finding()],
            saeg_size: 9,
            runtime: Duration::ZERO,
            timings: PhaseTimings::default(),
            status: FunctionStatus::Completed,
            cache: CacheStatus::Miss,
        };
        let bytes = encode_clou(&report);
        for cut in 0..bytes.len() {
            assert!(decode_clou(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut bytes = encode_bh(&HauntedReport {
            name: "f".into(),
            leaks: vec![],
            paths_explored: 0,
            exhausted: false,
            runtime: Duration::ZERO,
            t_enumerate: Duration::ZERO,
            t_execute: Duration::ZERO,
            t_witness: Duration::ZERO,
            degraded: None,
        });
        assert!(decode_bh(&bytes).is_ok());
        bytes.push(0);
        assert!(decode_bh(&bytes).is_err());
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let mut w = W::new();
        w.str("f");
        w.u64(1);
        w.u32(1);
        // A finding whose class tag is invalid.
        w.str("f");
        w.u64(0);
        w.u32(0);
        w.u8(99);
        assert!(decode_clou(&w.0).is_err());
    }
}
