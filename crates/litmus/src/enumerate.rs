//! Bounded exhaustive enumeration of candidate executions (the Alloy-style
//! analysis behind subrosa, §3.4).

use lcm_core::confidentiality::ConfidentialityModel;
use lcm_core::exec::{Execution, ExecutionBuilder};
use lcm_core::mcm::ConsistencyModel;
use lcm_core::EventId;

/// A rebuild callback: recreates a template execution with the given
/// explicit `rfx` and `cox` edges applied.
pub type Rebuild<'a> = &'a dyn Fn(&[(EventId, EventId)], &[(EventId, EventId)]) -> Execution;

/// An abstract litmus operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read of a named location.
    R(String),
    /// Write to a named location.
    W(String),
    /// Fence.
    F,
}

impl Op {
    /// A read of `loc`.
    pub fn r(loc: &str) -> Op {
        Op::R(loc.to_string())
    }

    /// A write to `loc`.
    pub fn w(loc: &str) -> Op {
        Op::W(loc.to_string())
    }
}

/// A litmus program: one op list per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Litmus {
    /// Threads.
    pub threads: Vec<Vec<Op>>,
}

impl Litmus {
    /// A new litmus program.
    pub fn new(threads: Vec<Vec<Op>>) -> Self {
        Litmus { threads }
    }

    /// Parses a compact litmus notation: threads separated by `||`, ops by
    /// `;`. Each op is `W <loc>`, `R <loc>`, or `F` (fence). Whitespace is
    /// free.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcm_litmus::enumerate::Litmus;
    /// let sb = Litmus::parse("W x; R y || W y; R x").unwrap();
    /// assert_eq!(sb.threads.len(), 2);
    /// assert_eq!(sb.len(), 4);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed op.
    pub fn parse(src: &str) -> Result<Litmus, String> {
        let mut threads = Vec::new();
        for (ti, tsrc) in src.split("||").enumerate() {
            let mut ops = Vec::new();
            for op_src in tsrc.split(';') {
                let toks: Vec<&str> = op_src.split_whitespace().collect();
                match toks.as_slice() {
                    [] => continue,
                    ["W", loc] => ops.push(Op::w(loc)),
                    ["R", loc] => ops.push(Op::r(loc)),
                    ["F"] => ops.push(Op::F),
                    other => {
                        return Err(format!(
                            "thread {ti}: cannot parse op `{}`",
                            other.join(" ")
                        ))
                    }
                }
            }
            if !ops.is_empty() {
                threads.push(ops);
            }
        }
        Ok(Litmus { threads })
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// `true` if there are no operations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn build_with(&self, rf_choice: &[Option<usize>], co_orders: &[Vec<usize>]) -> Execution {
        // rf_choice[i]: for read #i, the index of the write op (global op
        // numbering) it reads from, or None for ⊤. co_orders: per
        // location (sorted by name), a total order of write op indices.
        let mut b = ExecutionBuilder::new();
        let mut op_events: Vec<EventId> = Vec::new();
        let mut reads: Vec<usize> = Vec::new();
        let mut writes: Vec<usize> = Vec::new();
        let mut op_idx = 0;
        for (tid, t) in self.threads.iter().enumerate() {
            b.on_thread(tid);
            let mut prev: Option<EventId> = None;
            for op in t {
                let e = match op {
                    Op::R(l) => {
                        reads.push(op_idx);
                        b.read(l)
                    }
                    Op::W(l) => {
                        writes.push(op_idx);
                        b.write(l)
                    }
                    Op::F => b.fence(),
                };
                if let Some(p) = prev {
                    b.po(p, e);
                }
                prev = Some(e);
                op_events.push(e);
                op_idx += 1;
            }
        }
        for (ri, &rop) in reads.iter().enumerate() {
            if let Some(wop) = rf_choice[ri] {
                b.rf(op_events[wop], op_events[rop]);
            }
        }
        for order in co_orders {
            for w in order.windows(2) {
                b.co(op_events[w[0]], op_events[w[1]]);
            }
        }
        b.build()
    }

    /// The per-dimension choice space behind candidate enumeration: one
    /// dimension per read (`rf` source: ⊤ or a same-location write) and
    /// one per location (a total `co` order of its writes).
    fn choice_space(&self) -> ChoiceSpace {
        let mut flat: Vec<&Op> = Vec::new();
        for t in &self.threads {
            flat.extend(t.iter());
        }
        let read_ops: Vec<usize> = flat
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::R(_)))
            .map(|(i, _)| i)
            .collect();
        let mut locs: Vec<String> = flat
            .iter()
            .filter_map(|o| match o {
                Op::R(l) | Op::W(l) => Some(l.clone()),
                Op::F => None,
            })
            .collect();
        locs.sort_unstable();
        locs.dedup();
        let writes_to = |l: &str| -> Vec<usize> {
            flat.iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, Op::W(m) if m == l))
                .map(|(i, _)| i)
                .collect()
        };
        let rf = read_ops
            .iter()
            .map(|&r| {
                let loc = match flat[r] {
                    Op::R(l) => l.as_str(),
                    _ => unreachable!(),
                };
                let mut c: Vec<Option<usize>> = vec![None];
                c.extend(writes_to(loc).into_iter().map(Some));
                c
            })
            .collect();
        let co = locs.iter().map(|l| permutations(&writes_to(l))).collect();
        let mut read_ord = vec![usize::MAX; flat.len()];
        for (ord, &op) in read_ops.iter().enumerate() {
            read_ord[op] = ord;
        }
        ChoiceSpace {
            rf,
            co,
            locs,
            read_ord,
        }
    }

    /// The program's automorphism group: pairs of a location renaming and
    /// a thread renaming that map the program to itself. Capped — if the
    /// naive `threads! × locs!` search space exceeds [`SYMMETRY_CAP`],
    /// only the identity is returned (no reduction, still exact).
    fn automorphisms(&self, space: &ChoiceSpace) -> Vec<Automorphism> {
        let nthreads = self.threads.len();
        let nlocs = space.locs.len();
        let cost = factorial(nthreads).saturating_mul(factorial(nlocs));
        let nops = self.len();
        let identity = Automorphism {
            opmap: (0..nops).collect(),
            locmap: (0..nlocs).collect(),
        };
        if cost > SYMMETRY_CAP {
            return vec![identity];
        }
        // Global op index of (thread, position).
        let mut offsets = Vec::with_capacity(nthreads);
        let mut acc = 0usize;
        for t in &self.threads {
            offsets.push(acc);
            acc += t.len();
        }
        let loc_index = |l: &str| space.locs.iter().position(|m| m == l).unwrap();
        let thread_perms = permutations(&(0..nthreads).collect::<Vec<_>>());
        let loc_perms = permutations(&(0..nlocs).collect::<Vec<_>>());
        let mut out = Vec::new();
        for sigma in &thread_perms {
            if self
                .threads
                .iter()
                .enumerate()
                .any(|(t, ops)| ops.len() != self.threads[sigma[t]].len())
            {
                continue;
            }
            'pi: for pi in &loc_perms {
                for (t, ops) in self.threads.iter().enumerate() {
                    for (p, op) in ops.iter().enumerate() {
                        let image = &self.threads[sigma[t]][p];
                        let matches = match (op, image) {
                            (Op::F, Op::F) => true,
                            (Op::R(l), Op::R(m)) | (Op::W(l), Op::W(m)) => {
                                space.locs[pi[loc_index(l)]] == *m
                            }
                            _ => false,
                        };
                        if !matches {
                            continue 'pi;
                        }
                    }
                }
                let mut opmap = vec![0usize; nops];
                for (t, ops) in self.threads.iter().enumerate() {
                    for p in 0..ops.len() {
                        opmap[offsets[t] + p] = offsets[sigma[t]] + p;
                    }
                }
                out.push(Automorphism {
                    opmap,
                    locmap: pi.clone(),
                });
            }
        }
        if out.is_empty() {
            out.push(identity);
        }
        out
    }

    /// Streams every structurally well-formed candidate execution to the
    /// visitor **without materializing the choice space** (the seed
    /// implementation built the full cartesian product of rf choices ×
    /// co orders up front, which is what capped tractable program size).
    /// Returns `false` from the visitor to stop early.
    pub fn for_each_candidate(&self, mut visit: impl FnMut(&Execution) -> bool) -> EnumStats {
        let space = self.choice_space();
        let total = space.total();
        self.stream_range(&space, 0, total, None, &mut |x, _| visit(x))
    }

    /// Enumerates every structurally well-formed candidate execution:
    /// all `rf` choices × all per-location `co` total orders.
    ///
    /// Materializes the full set — prefer [`Litmus::for_each_candidate`]
    /// or the counting APIs for anything beyond toy sizes.
    pub fn candidate_executions(&self) -> Vec<Execution> {
        let mut out = Vec::new();
        self.for_each_candidate(|x| {
            out.push(x.clone());
            true
        });
        out
    }

    /// Streaming count of well-formed candidate executions.
    pub fn count_candidates(&self) -> u64 {
        self.for_each_candidate(|_| true).visited
    }

    /// The size of the candidate space (`rf` choices × `co` orders),
    /// computed arithmetically — no enumeration. `u128` because large
    /// programs overflow `u64`.
    pub fn candidate_count(&self) -> u128 {
        self.choice_space().total()
    }

    /// Streaming count of model-consistent executions.
    pub fn count_consistent(&self, model: &dyn ConsistencyModel) -> u64 {
        let mut n = 0;
        self.for_each_candidate(|x| {
            if model.check(x).is_ok() {
                n += 1;
            }
            true
        });
        n
    }

    /// Parallel streaming count of model-consistent executions: the flat
    /// choice space is split into `jobs` contiguous ranges fanned over
    /// [`lcm_core::par::map_indexed`]; each worker decodes its range
    /// independently (mixed-radix), so the count is identical at every
    /// job count.
    pub fn count_consistent_par<M: ConsistencyModel + Sync>(&self, model: &M, jobs: usize) -> u64 {
        let space = self.choice_space();
        let total = space.total();
        let jobs = lcm_core::par::effective_jobs(jobs).max(1) as u128;
        let chunks: Vec<(u128, u128)> = (0..jobs)
            .map(|j| (total * j / jobs, total * (j + 1) / jobs))
            .filter(|(a, b)| a < b)
            .collect();
        lcm_core::par::map_indexed(&chunks, chunks.len(), |_, &(start, end)| {
            let mut n = 0u64;
            self.stream_range(&space, start, end, None, &mut |x, _| {
                if model.check(x).is_ok() {
                    n += 1;
                }
                true
            });
            n
        })
        .into_iter()
        .sum()
    }

    /// Symmetry-reduced count of model-consistent executions: only
    /// canonical choice vectors (lexicographically least under the
    /// program's location/thread-renaming group) are built and checked;
    /// each contributes its orbit size. `total` equals the exhaustive
    /// [`Litmus::count_consistent`] — consistency predicates are
    /// invariant under renaming — while only `canonical` executions were
    /// actually built.
    pub fn count_consistent_symmetric(&self, model: &dyn ConsistencyModel) -> SymmetricCount {
        let space = self.choice_space();
        let auts = self.automorphisms(&space);
        let total = space.total();
        let mut out = SymmetricCount::default();
        let stats = self.stream_range(&space, 0, total, Some(&auts), &mut |x, orbit| {
            if model.check(x).is_ok() {
                out.canonical += 1;
                out.total += orbit;
            }
            true
        });
        out.pruned = stats.pruned;
        out
    }

    /// Decodes and visits the choice vectors in `[start, end)` (mixed-
    /// radix over the space's dimension sizes, co dimensions fastest).
    /// With `symmetry`, non-canonical vectors are skipped (counted in
    /// `pruned`) and the visitor receives each canonical vector's orbit
    /// size; otherwise every well-formed execution is visited with
    /// orbit size 1.
    fn stream_range(
        &self,
        space: &ChoiceSpace,
        start: u128,
        end: u128,
        symmetry: Option<&[Automorphism]>,
        visit: &mut dyn FnMut(&Execution, u64) -> bool,
    ) -> EnumStats {
        let mut stats = EnumStats::default();
        if start >= end {
            return stats;
        }
        let sizes = space.sizes();
        let mut idx = space.decode(start, &sizes);
        let nreads = space.rf.len();
        let mut rf: Vec<Option<usize>> = Vec::with_capacity(nreads);
        let mut co: Vec<Vec<usize>> = Vec::with_capacity(space.co.len());
        let mut cursor = start;
        while cursor < end {
            rf.clear();
            co.clear();
            for (r, &i) in idx.iter().take(nreads).enumerate() {
                rf.push(space.rf[r][i]);
            }
            for (l, &i) in idx.iter().skip(nreads).enumerate() {
                co.push(space.co[l][i].clone());
            }
            let orbit = match symmetry {
                None => 1,
                Some(auts) => match space.orbit_of_canonical(auts, &rf, &co) {
                    Some(orbit) => orbit,
                    None => {
                        stats.pruned += 1;
                        cursor += 1;
                        if !space.advance(&mut idx, &sizes) {
                            break;
                        }
                        continue;
                    }
                },
            };
            let x = self.build_with(&rf, &co);
            stats.built += 1;
            if x.well_formed().is_ok() {
                stats.visited += 1;
                if !visit(&x, orbit) {
                    break;
                }
            }
            cursor += 1;
            if !space.advance(&mut idx, &sizes) {
                break;
            }
        }
        enum_executions_counter().add(stats.built);
        if stats.pruned > 0 {
            enum_pruned_counter().add(stats.pruned);
        }
        stats
    }

    /// The candidate executions consistent with a memory model: the
    /// program's **architectural semantics** (§2.2).
    pub fn consistent_executions(&self, model: &dyn ConsistencyModel) -> Vec<Execution> {
        let mut out = Vec::new();
        self.for_each_candidate(|x| {
            if model.check(x).is_ok() {
                out.push(x.clone());
            }
            true
        });
        out
    }
}

/// Search cap for [`Litmus::automorphisms`]: above this many `(σ, π)`
/// pairs the group search is skipped and enumeration runs unreduced.
const SYMMETRY_CAP: u64 = 40_320; // 8!

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product::<u64>().max(1)
}

/// Streaming enumeration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Choice vectors decoded and built into executions.
    pub built: u64,
    /// Executions that passed well-formedness and reached the visitor.
    pub visited: u64,
    /// Choice vectors skipped as non-canonical under symmetry.
    pub pruned: u64,
}

/// Result of a symmetry-reduced consistent-execution count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymmetricCount {
    /// Canonical (actually built and checked) consistent executions.
    pub canonical: u64,
    /// Exhaustive-equivalent total: Σ orbit sizes over canonical reps.
    pub total: u64,
    /// Choice vectors skipped without building an execution.
    pub pruned: u64,
}

/// One program automorphism: a thread renaming composed with a location
/// renaming, realized as a permutation of global op indices plus the
/// induced permutation of sorted-location indices.
#[derive(Debug, Clone)]
struct Automorphism {
    opmap: Vec<usize>,
    locmap: Vec<usize>,
}

/// The enumeration choice space (see [`Litmus::choice_space`]).
struct ChoiceSpace {
    /// Per read (in global op order): candidate rf sources.
    rf: Vec<Vec<Option<usize>>>,
    /// Per sorted location: candidate co orders (write op indices).
    co: Vec<Vec<Vec<usize>>>,
    /// Sorted location names.
    locs: Vec<String>,
    /// Global op index → read ordinal (`usize::MAX` for non-reads).
    read_ord: Vec<usize>,
}

impl ChoiceSpace {
    fn sizes(&self) -> Vec<usize> {
        self.rf
            .iter()
            .map(Vec::len)
            .chain(self.co.iter().map(Vec::len))
            .collect()
    }

    /// Total number of choice vectors (may exceed `u64` for large
    /// programs, hence `u128`).
    fn total(&self) -> u128 {
        self.sizes().iter().map(|&s| s as u128).product()
    }

    /// Mixed-radix decode of a flat index (last dimension fastest).
    fn decode(&self, mut flat: u128, sizes: &[usize]) -> Vec<usize> {
        let mut idx = vec![0usize; sizes.len()];
        for (i, &s) in sizes.iter().enumerate().rev() {
            idx[i] = (flat % s as u128) as usize;
            flat /= s as u128;
        }
        idx
    }

    /// Odometer increment; `false` on wrap-around (space exhausted).
    fn advance(&self, idx: &mut [usize], sizes: &[usize]) -> bool {
        for i in (0..idx.len()).rev() {
            idx[i] += 1;
            if idx[i] < sizes[i] {
                return true;
            }
            idx[i] = 0;
        }
        false
    }

    /// `Some(orbit size)` if the choice vector is the lexicographic
    /// minimum of its orbit under the automorphism group, else `None`.
    fn orbit_of_canonical(
        &self,
        auts: &[Automorphism],
        rf: &[Option<usize>],
        co: &[Vec<usize>],
    ) -> Option<u64> {
        let mut stabilizer = 0u64;
        let mut rf2: Vec<Option<usize>> = vec![None; rf.len()];
        let mut co2: Vec<Vec<usize>> = vec![Vec::new(); co.len()];
        for aut in auts {
            // rf: read at op i maps to the read at opmap[i]; its source
            // write maps through opmap as well.
            for (r, choice) in rf.iter().enumerate() {
                let op = self
                    .read_ord
                    .iter()
                    .position(|&ord| ord == r)
                    .expect("read ordinal");
                let r2 = self.read_ord[aut.opmap[op]];
                rf2[r2] = choice.map(|w| aut.opmap[w]);
            }
            for (l, order) in co.iter().enumerate() {
                co2[aut.locmap[l]] = order.iter().map(|&w| aut.opmap[w]).collect();
            }
            match (rf2.as_slice(), co2.as_slice()).cmp(&(rf, co)) {
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Equal => stabilizer += 1,
                std::cmp::Ordering::Greater => {}
            }
        }
        Some(auts.len() as u64 / stabilizer.max(1))
    }
}

fn enum_executions_counter() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::ENUM_EXECUTIONS,
            "Candidate executions built by the litmus enumerator",
        )
    })
}

fn enum_pruned_counter() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::ENUM_SYMMETRY_PRUNED,
            "Choice vectors skipped as non-canonical under program symmetry",
        )
    })
}

/// Enumerates every microarchitectural witness of a fixed architectural
/// execution template: all `rfx` source choices for xstate readers × all
/// per-xstate `cox` orders, rebuilt via `rebuild` (which must recreate the
/// same events and architectural witness, then apply the given
/// `rfx`/`cox` edges).
///
/// Returns only witnesses that are strictly well-formed and satisfy the
/// confidentiality predicate.
pub fn microarch_witnesses(
    template: &Execution,
    confidentiality: &dyn ConfidentialityModel,
    rebuild: Rebuild<'_>,
) -> Vec<Execution> {
    // Per xstate element: writers and readers.
    use std::collections::BTreeMap;
    let mut writers: BTreeMap<u32, Vec<EventId>> = BTreeMap::new();
    let mut readers: Vec<(EventId, u32)> = Vec::new();
    for e in template.events() {
        if let Some(xs) = e.xstate() {
            if e.writes_xstate() {
                writers.entry(xs.0).or_default().push(e.id());
            }
            if e.reads_xstate() && e.kind() != lcm_core::EventKind::Init {
                readers.push((e.id(), xs.0));
            }
        }
    }
    // rfx candidates per reader.
    let rfx_cands: Vec<Vec<EventId>> = readers
        .iter()
        .map(|&(r, xs)| {
            writers
                .get(&xs)
                .map(|ws| ws.iter().copied().filter(|&w| w != r).collect())
                .unwrap_or_default()
        })
        .collect();
    // cox orders per xstate: permutations of non-init writers (init first
    // implicitly via builder completion).
    let cox_groups: Vec<Vec<EventId>> = writers
        .values()
        .map(|ws| {
            ws.iter()
                .copied()
                .filter(|&w| template.event(w).kind() != lcm_core::EventKind::Init)
                .collect::<Vec<_>>()
        })
        .collect();
    let cox_orders: Vec<Vec<Vec<EventId>>> =
        cox_groups.iter().map(|ws| permutations_e(ws)).collect();

    let mut out = Vec::new();
    for rfx in product_e(&rfx_cands) {
        for cox in product_vec(&cox_orders) {
            let rfx_edges: Vec<(EventId, EventId)> = readers
                .iter()
                .zip(&rfx)
                .map(|(&(r, _), &w)| (w, r))
                .collect();
            let mut cox_edges = Vec::new();
            for order in &cox {
                for w in order.windows(2) {
                    cox_edges.push((w[0], w[1]));
                }
            }
            let x = rebuild(&rfx_edges, &cox_edges);
            if x.well_formed_strict().is_ok() && confidentiality.check(&x).is_ok() {
                out.push(x);
            }
        }
    }
    out
}

/// The result of comparing two confidentiality predicates over the same
/// witness space (extension — §3.4's planned use of subrosa: "comparing
/// LCMs across microarchitectures").
#[derive(Debug, Clone, Default)]
pub struct ModelComparison {
    /// Witnesses only the first model permits.
    pub only_first: usize,
    /// Witnesses only the second model permits.
    pub only_second: usize,
    /// Witnesses both permit.
    pub both: usize,
    /// Witnesses both permit that additionally violate non-interference
    /// under the first-only set (leakage unique to the first hardware).
    pub leaky_only_first: usize,
    /// Leakage unique to the second hardware.
    pub leaky_only_second: usize,
}

impl ModelComparison {
    /// `true` if the first model permits strictly more behaviour.
    pub fn first_is_weaker(&self) -> bool {
        self.only_first > 0 && self.only_second == 0
    }
}

/// Compares two confidentiality models over every structurally well-formed
/// microarchitectural witness of a template execution: which witnesses
/// (and which *leaky* witnesses) each hardware model admits.
pub fn compare_models(
    template: &Execution,
    first: &dyn ConfidentialityModel,
    second: &dyn ConfidentialityModel,
    rebuild: Rebuild<'_>,
) -> ModelComparison {
    // Enumerate under a permit-all oracle, then classify.
    struct PermitAll;
    impl ConfidentialityModel for PermitAll {
        fn name(&self) -> &'static str {
            "permit-all"
        }
        fn check(
            &self,
            _: &Execution,
        ) -> Result<(), lcm_core::confidentiality::ConfidentialityViolation> {
            Ok(())
        }
    }
    let mut out = ModelComparison::default();
    for x in microarch_witnesses(template, &PermitAll, rebuild) {
        let a = first.check(&x).is_ok();
        let b = second.check(&x).is_ok();
        let leaky = !lcm_core::noninterference::interference_free(&x);
        match (a, b) {
            (true, true) => out.both += 1,
            (true, false) => {
                out.only_first += 1;
                if leaky {
                    out.leaky_only_first += 1;
                }
            }
            (false, true) => {
                out.only_second += 1;
                if leaky {
                    out.leaky_only_second += 1;
                }
            }
            (false, false) => {}
        }
    }
    out
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

fn permutations_e(items: &[EventId]) -> Vec<Vec<EventId>> {
    let raw: Vec<usize> = items.iter().map(|e| e.0).collect();
    permutations(&raw)
        .into_iter()
        .map(|p| p.into_iter().map(EventId).collect())
        .collect()
}

fn product<T: Clone>(cands: &[Vec<T>]) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![vec![]];
    for c in cands {
        let mut next = Vec::new();
        for partial in &out {
            for item in c {
                let mut p = partial.clone();
                p.push(item.clone());
                next.push(p);
            }
        }
        out = next;
    }
    out
}

fn product_e(cands: &[Vec<EventId>]) -> Vec<Vec<EventId>> {
    product(cands)
}

fn product_vec(cands: &[Vec<Vec<EventId>>]) -> Vec<Vec<Vec<EventId>>> {
    product(cands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::confidentiality::X86Lcm;
    use lcm_core::mcm::{Sc, Tso};
    use lcm_core::noninterference;

    /// Store buffering: Wx; Ry || Wy; Rx.
    fn sb() -> Litmus {
        Litmus::new(vec![
            vec![Op::w("x"), Op::r("y")],
            vec![Op::w("y"), Op::r("x")],
        ])
    }

    #[test]
    fn sb_has_four_candidates_tso_allows_all_sc_three() {
        let l = sb();
        let all = l.candidate_executions();
        assert_eq!(all.len(), 4, "2 rf choices per read");
        let tso = l.consistent_executions(&Tso);
        let sc = l.consistent_executions(&Sc);
        assert_eq!(tso.len(), 4, "TSO allows the relaxed outcome");
        assert_eq!(sc.len(), 3, "SC forbids both-reads-stale");
        // TSO is weaker: every SC execution is TSO-consistent.
        assert!(sc.len() <= tso.len());
    }

    #[test]
    fn sb_with_fences_restores_sc() {
        let l = Litmus::new(vec![
            vec![Op::w("x"), Op::F, Op::r("y")],
            vec![Op::w("y"), Op::F, Op::r("x")],
        ]);
        let tso = l.consistent_executions(&Tso);
        let sc = l.consistent_executions(&Sc);
        assert_eq!(tso.len(), sc.len(), "fences eliminate the TSO-only outcome");
        assert_eq!(tso.len(), 3);
    }

    /// Message passing: Wx; Wy || Ry; Rx.
    #[test]
    fn mp_stale_flag_read_forbidden_by_tso() {
        let l = Litmus::new(vec![
            vec![Op::w("x"), Op::w("y")],
            vec![Op::r("y"), Op::r("x")],
        ]);
        let all = l.candidate_executions();
        assert_eq!(all.len(), 4);
        let tso = l.consistent_executions(&Tso);
        // The outcome Ry=new ∧ Rx=stale is forbidden: 3 remain.
        assert_eq!(tso.len(), 3);
    }

    #[test]
    fn coherence_two_writes_one_reader() {
        // W x; W x || R x: co has 2 orders, read has 3 sources = 6
        // structurally, coherence (sc_per_loc) prunes.
        let l = Litmus::new(vec![vec![Op::w("x"), Op::w("x")], vec![Op::r("x")]]);
        let all = l.candidate_executions();
        assert_eq!(all.len(), 6);
        let tso = l.consistent_executions(&Tso);
        // po(w1,w2) forces co(w1,w2): the co order w2->w1 violates
        // sc_per_loc regardless of rf: 3 remain.
        assert_eq!(tso.len(), 3);
    }

    #[test]
    fn microarch_enumeration_finds_implied_and_deviant_witnesses() {
        // Single thread: R x; W x. Microarchitecturally the write's line
        // read may hit the read's fill (implied) or go to ⊤ (deviant).
        let make = |rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]| {
            let mut b = ExecutionBuilder::new();
            let r = b.read("x");
            let w = b.write("x");
            b.po(r, w);
            for &(a, c) in rfx {
                b.rfx(a, c);
            }
            for &(a, c) in cox {
                b.cox(a, c);
            }
            b.build()
        };
        let template = make(&[], &[]);
        let witnesses = microarch_witnesses(&template, &X86Lcm, &make);
        assert!(!witnesses.is_empty());
        let clean: Vec<_> = witnesses
            .iter()
            .filter(|x| noninterference::interference_free(x))
            .collect();
        let leaky: Vec<_> = witnesses
            .iter()
            .filter(|x| !noninterference::interference_free(x))
            .collect();
        assert!(!clean.is_empty(), "the implied witness is enumerated");
        assert!(
            !leaky.is_empty(),
            "deviating witnesses exist and are detected"
        );
    }

    #[test]
    fn empty_program() {
        let l = Litmus::new(vec![]);
        assert!(l.is_empty());
        assert_eq!(l.candidate_executions().len(), 1, "the empty execution");
    }

    /// IRIW: two writers, two readers observing in opposite orders. TSO is
    /// multi-copy atomic, so the paradoxical outcome is forbidden — the
    /// consistent sets of SC and TSO coincide on this shape.
    #[test]
    fn iriw_has_no_tso_only_outcomes() {
        let l = Litmus::new(vec![
            vec![Op::w("x")],
            vec![Op::w("y")],
            vec![Op::r("x"), Op::r("y")],
            vec![Op::r("y"), Op::r("x")],
        ]);
        let sc = l.consistent_executions(&Sc);
        let tso = l.consistent_executions(&Tso);
        assert_eq!(sc.len(), tso.len(), "TSO adds nothing on IRIW");
        // The paradoxical outcome (t2 sees x-new,y-old; t3 sees y-new,
        // x-old) is not among them.
        for x in &tso {
            let val = |ridx: usize| -> bool {
                // read event ids: reads are events in thread order; check
                // rf source kind (Init = old).
                let read = x
                    .events()
                    .iter()
                    .filter(|e| e.kind() == lcm_core::EventKind::Read)
                    .nth(ridx)
                    .unwrap();
                let src = x.rf().predecessors(read.id().0).next().unwrap();
                x.event(lcm_core::EventId(src)).kind() != lcm_core::EventKind::Init
            };
            let paradox = val(0) && !val(1) && val(2) && !val(3);
            assert!(!paradox, "IRIW paradox permitted");
        }
    }

    /// CoRR: two reads of the same location must not observe writes in
    /// opposite orders (read-read coherence), enforced by sc_per_loc.
    #[test]
    fn corr_coherence_enforced() {
        let l = Litmus::new(vec![vec![Op::w("x")], vec![Op::r("x"), Op::r("x")]]);
        for x in l.consistent_executions(&Tso) {
            // If the first read sees the new value, the second must too.
            let reads: Vec<_> = x
                .events()
                .iter()
                .filter(|e| e.kind() == lcm_core::EventKind::Read)
                .collect();
            let sees_new = |r: &lcm_core::Event| {
                let src = x.rf().predecessors(r.id().0).next().unwrap();
                x.event(lcm_core::EventId(src)).kind() != lcm_core::EventKind::Init
            };
            if sees_new(reads[0]) {
                assert!(
                    sees_new(reads[1]),
                    "new-then-old read order violates coherence"
                );
            }
        }
    }

    #[test]
    fn fence_only_threads_are_harmless() {
        let l = Litmus::new(vec![vec![Op::F, Op::F]]);
        assert_eq!(l.consistent_executions(&Tso).len(), 1);
    }

    #[test]
    fn parse_agrees_with_programmatic_construction() {
        let parsed = Litmus::parse("W x; R y || W y; R x").unwrap();
        assert_eq!(parsed, sb());
        let fenced = Litmus::parse("W x; F; R y || W y; F; R x").unwrap();
        assert_eq!(fenced.len(), 6);
        assert_eq!(
            parsed.consistent_executions(&Tso).len(),
            sb().consistent_executions(&Tso).len()
        );
    }

    #[test]
    fn parse_rejects_malformed_ops() {
        assert!(Litmus::parse("W x; BLORP y").unwrap_err().contains("BLORP"));
        assert!(Litmus::parse("W").is_err());
        // Empty threads / trailing separators are tolerated.
        let l = Litmus::parse("W x; ; R x ||").unwrap();
        assert_eq!(l.threads.len(), 1);
        assert_eq!(l.len(), 2);
    }

    /// The parameterizable-model path (§5.2's future work, implemented as
    /// an extension): user-supplied cat specifications drive the
    /// enumerator and agree with the built-in models.
    #[test]
    fn cat_models_agree_with_builtins_on_classic_litmus() {
        use lcm_core::cat::{presets, CatModel};
        let cat_tso = CatModel::parse("TSO", presets::TSO).unwrap();
        let cat_sc = CatModel::parse("SC", presets::SC).unwrap();
        for l in [
            Litmus::new(vec![
                vec![Op::w("x"), Op::r("y")],
                vec![Op::w("y"), Op::r("x")],
            ]),
            Litmus::new(vec![
                vec![Op::w("x"), Op::w("y")],
                vec![Op::r("y"), Op::r("x")],
            ]),
            Litmus::new(vec![vec![Op::w("x"), Op::w("x")], vec![Op::r("x")]]),
        ] {
            assert_eq!(
                l.consistent_executions(&cat_tso).len(),
                l.consistent_executions(&Tso).len()
            );
            assert_eq!(
                l.consistent_executions(&cat_sc).len(),
                l.consistent_executions(&Sc).len()
            );
        }
    }

    #[test]
    fn silent_store_hardware_is_weaker_than_x86() {
        use lcm_core::confidentiality::SilentStoreLcm;
        // Template: two same-location stores; a silent-store machine may
        // execute the second as a read.
        let make = |rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]| {
            let mut b = ExecutionBuilder::new();
            let w1 = b.write("x");
            // Model the silent option: the second store's mode decides
            // which machine can produce the witness. Use a silent write so
            // the x86 predicate rejects every witness and the comparison
            // attributes all of them to the silent-store machine.
            let w2 = b.silent_write("x");
            b.po(w1, w2);
            b.co(w1, w2);
            for &(a, c) in rfx {
                b.rfx(a, c);
            }
            for &(a, c) in cox {
                b.cox(a, c);
            }
            b.build()
        };
        let template = make(&[], &[]);
        let cmp = compare_models(&template, &SilentStoreLcm, &X86Lcm, &make);
        assert!(cmp.first_is_weaker(), "{cmp:?}");
        assert!(
            cmp.leaky_only_first > 0,
            "silent stores add leaky behaviour: {cmp:?}"
        );
        assert_eq!(cmp.both, 0, "x86 permits no silent-store witness");
    }

    #[test]
    fn model_compared_with_itself_has_no_exclusive_behaviour() {
        let make = |rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]| {
            let mut b = ExecutionBuilder::new();
            let r = b.read("x");
            let w = b.write("x");
            b.po(r, w);
            for &(a, c) in rfx {
                b.rfx(a, c);
            }
            for &(a, c) in cox {
                b.cox(a, c);
            }
            b.build()
        };
        let template = make(&[], &[]);
        let cmp = compare_models(&template, &X86Lcm, &X86Lcm, &make);
        assert_eq!(cmp.only_first, 0);
        assert_eq!(cmp.only_second, 0);
        assert!(cmp.both > 0);
    }

    #[test]
    fn streaming_count_matches_materialized() {
        for l in [
            sb(),
            Litmus::new(vec![vec![Op::w("x"), Op::w("x")], vec![Op::r("x")]]),
            Litmus::new(vec![
                vec![Op::w("x"), Op::F, Op::r("y")],
                vec![Op::w("y"), Op::F, Op::r("x")],
            ]),
            Litmus::new(vec![]),
        ] {
            assert_eq!(
                l.count_candidates() as usize,
                l.candidate_executions().len()
            );
            assert_eq!(
                l.count_consistent(&Tso) as usize,
                l.consistent_executions(&Tso).len()
            );
        }
    }

    #[test]
    fn streaming_early_exit_stops() {
        let l = sb();
        let mut seen = 0;
        l.for_each_candidate(|_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn parallel_count_is_job_invariant() {
        let l = Litmus::new(vec![
            vec![Op::w("x"), Op::r("y"), Op::w("y")],
            vec![Op::w("y"), Op::r("x"), Op::w("x")],
        ]);
        let serial = l.count_consistent(&Tso);
        for jobs in [1, 2, 4, 8] {
            assert_eq!(l.count_consistent_par(&Tso, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn sb_symmetry_group_halves_the_work() {
        // SB is invariant under swapping the threads together with x↔y:
        // |G| = 2, so roughly half the choice vectors are non-canonical.
        let l = sb();
        let sym = l.count_consistent_symmetric(&Tso);
        assert_eq!(
            sym.total,
            l.count_consistent(&Tso),
            "orbit totals are exact"
        );
        assert!(sym.pruned > 0, "the swap automorphism prunes: {sym:?}");
        assert!(sym.canonical < sym.total);
    }

    #[test]
    fn symmetric_count_exact_on_asymmetric_program() {
        // No non-trivial automorphism: different ops per thread.
        let l = Litmus::new(vec![vec![Op::w("x"), Op::w("x")], vec![Op::r("x")]]);
        let sym = l.count_consistent_symmetric(&Tso);
        assert_eq!(sym.total, l.count_consistent(&Tso));
        assert_eq!(sym.pruned, 0, "identity-only group prunes nothing");
        assert_eq!(sym.canonical, sym.total);
    }

    #[test]
    fn symmetric_count_exact_under_sc_with_fences() {
        let l = Litmus::new(vec![
            vec![Op::w("x"), Op::F, Op::r("y")],
            vec![Op::w("y"), Op::F, Op::r("x")],
        ]);
        let sym = l.count_consistent_symmetric(&Sc);
        assert_eq!(sym.total, l.count_consistent(&Sc));
        assert!(sym.pruned > 0);
    }
}
