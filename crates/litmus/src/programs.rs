//! The paper's worked attacks as complete candidate executions (§4.2).
//!
//! Each constructor returns an [`Execution`] whose microarchitectural
//! witness matches the paper's figure, together with the named events a
//! test needs to assert on.

use lcm_core::exec::{Execution, ExecutionBuilder};
use lcm_core::EventId;

/// Named events of the Spectre v1 execution (Fig. 2b).
#[derive(Debug, Clone, Copy)]
pub struct SpectreV1 {
    /// `2: R y` — the index read.
    pub e2: EventId,
    /// `5: R A+r2` — the committed access.
    pub e5: EventId,
    /// `6: R B+r4` — the committed (candidate universal) transmitter.
    pub e6: EventId,
    /// `5ₛ` — the transient access.
    pub e5s: EventId,
    /// `6ₛ` — the transient true-universal transmitter.
    pub e6s: EventId,
    /// Observers of s0, s1, s2 (committed fork) and s2 (transient fork).
    pub obs: [EventId; 4],
}

/// Builds the Fig. 2b candidate execution of vanilla Spectre v1: the
/// committed taken path `2 → 5 → 6` plus a transient not-taken fork
/// `5ₛ → 6ₛ` (speculation depth 2), with observers probing each touched
/// line.
pub fn spectre_v1() -> (Execution, SpectreV1) {
    let mut b = ExecutionBuilder::new();
    let e2 = b.read("y");
    b.set_label(e2, "2: R y (RW s0)");
    // Transient fork (branch mispredicted not-taken... the other fork).
    let e5s = b.transient_read("A+r2");
    b.set_label(e5s, "5s: Rs A+r2 (RW s1)");
    let e6s = b.transient_read("B+r4");
    b.set_label(e6s, "6s: Rs B+r4 (RW s2)");
    // Committed path (re-executed after the squash; the line reads hit
    // the transient fills, themselves a com/comx deviation).
    let e5 = b.read("A+r2");
    b.set_label(e5, "5: R A+r2 (RW s1)");
    let e6 = b.read("B+r4");
    b.set_label(e6, "6: R B+r4 (RW s2)");
    b.po_chain(&[e2, e5, e6]);
    b.tfo_chain(&[e2, e5s, e6s]);
    b.tfo(e6s, e5); // rollback: committed path fetched after squash
    b.addr_gep(e2, e5).addr_gep(e5, e6);
    b.addr_gep(e2, e5s).addr_gep(e5s, e6s);
    b.rfx(e5s, e5);
    b.cox(e5s, e5);
    b.rfx(e6s, e6);
    b.cox(e6s, e6);
    // Observers probe the final cache state.
    let o0 = b.observe("y");
    let o1 = b.observe("A+r2");
    let o2 = b.observe("B+r4");
    let o3 = b.observe("B+r4");
    b.po_chain(&[e6, o0, o1, o2]);
    b.tfo(e6s, o3);
    b.rfx(e2, o0);
    b.rfx(e5, o1);
    b.rfx(e6, o2);
    // o3 shares B+r4's xstate; its line was touched by 6s then 6 — only
    // one observer probe per xstate element is meaningful; give o3 the
    // transient fill to witness the transient transmitter.
    let xs = b.xstate_of(e6s).unwrap();
    b.set_xstate(o3, xs);
    b.rfx(e6s, o3);
    (
        b.build(),
        SpectreV1 {
            e2,
            e5,
            e6,
            e5s,
            e6s,
            obs: [o0, o1, o2, o3],
        },
    )
}

/// Named events of the Fig. 3 variant.
#[derive(Debug, Clone, Copy)]
pub struct SpectreV1Var {
    /// `5: R A+r1` — the **committed** access (`x = A[y]` before the
    /// bounds check).
    pub e5: EventId,
    /// `6ₛ` — transient transmitter with committed access.
    pub e6s: EventId,
    /// Observer of the transmitter's line.
    pub obs: EventId,
}

/// Builds the Fig. 3 variant of Spectre v1: `x = A[y]; if (y < size)
/// temp &= B[x];` — the access instruction commits, only the transmitter
/// is transient, so the leakage scope is restricted (§4.2, the STT
/// discussion).
pub fn spectre_v1_var() -> (Execution, SpectreV1Var) {
    let mut b = ExecutionBuilder::new();
    let e2 = b.read("y");
    b.set_label(e2, "2: R y (RW s0)");
    let e5 = b.read("A+r1");
    b.set_label(e5, "5: R A+r1 (RW s1)");
    b.po_chain(&[e2, e5]);
    b.addr_gep(e2, e5);
    // Bounds check mispredicts; the body executes transiently.
    let e6s = b.transient_read("B+r1");
    b.set_label(e6s, "6s: Rs B+r1 (RW s2)");
    b.tfo(e5, e6s);
    b.addr_gep(e5, e6s);
    let obs = b.observe("B+r1");
    b.tfo(e6s, obs);
    b.rfx(e6s, obs);
    (b.build(), SpectreV1Var { e5, e6s, obs })
}

/// Named events of the Spectre v4 execution (Fig. 4a).
#[derive(Debug, Clone, Copy)]
pub struct SpectreV4 {
    /// `2: R y` — the first read, whose fill the stale read hits.
    pub e2: EventId,
    /// `3: W y` — the store the transient read bypasses.
    pub e3: EventId,
    /// `4ₛ: Rₛ y` — the stale (bypassing) read.
    pub e4s: EventId,
    /// `5ₛ` — transient access.
    pub e5s: EventId,
    /// `6ₛ` — transient universal transmitter.
    pub e6s: EventId,
    /// Observer of the transmitter's line.
    pub obs: EventId,
}

/// Builds the Fig. 4a Spectre v4 execution: store forwarding lets `4ₛ`
/// read `y` *before* `3` overwrites it (`frx(4ₛ, 3)` with
/// `tfo_loc(3, 4ₛ)` — the cycle an x86 LCM must permit, §4.2).
pub fn spectre_v4() -> (Execution, SpectreV4) {
    let mut b = ExecutionBuilder::new();
    let e2 = b.read("y");
    b.set_label(e2, "2: R y (RW s1)");
    let e3 = b.write("y");
    b.set_label(e3, "3: W y (RW s1)");
    b.po(e2, e3);
    b.rfx(e2, e3); // 3's line read hits 2's fill
    b.cox(e2, e3);
    let e4s = b.transient_read_hit("y");
    b.set_label(e4s, "4s: Rs y (R s1)");
    b.tfo(e3, e4s);
    b.rfx(e2, e4s); // stale: bypasses 3
    let e5s = b.transient_read("A+r3");
    b.set_label(e5s, "5s: Rs A+r3 (RW s2)");
    let e6s = b.transient_read("B+r4");
    b.set_label(e6s, "6s: Rs B+r4 (RW s3)");
    b.tfo_chain(&[e4s, e5s, e6s]);
    b.addr_gep(e4s, e5s).addr_gep(e5s, e6s);
    let obs_a = b.observe("A+r3");
    let obs = b.observe("B+r4");
    b.tfo_chain(&[e6s, obs_a, obs]);
    b.rfx(e5s, obs_a);
    b.rfx(e6s, obs);
    (
        b.build(),
        SpectreV4 {
            e2,
            e3,
            e4s,
            e5s,
            e6s,
            obs,
        },
    )
}

/// Named events of the Spectre-PSF execution (Fig. 4b).
#[derive(Debug, Clone, Copy)]
pub struct SpectrePsf {
    /// `2: W C+0` — the store the predictor wrongly forwards from.
    pub e2: EventId,
    /// `3ₛ: Rₛ C+r1` — the alias-mispredicted load (different address!).
    pub e3s: EventId,
    /// `4ₛ` — transient access.
    pub e4s: EventId,
    /// `5ₛ` — transient universal transmitter.
    pub e5s: EventId,
    /// Observer.
    pub obs: EventId,
}

/// Builds the Fig. 4b Spectre-PSF execution: alias prediction forwards
/// `2: W C+0`'s data to a load of a *mismatching* address `C+r1` —
/// modelled by the load sharing `2`'s xstate element.
pub fn spectre_psf() -> (Execution, SpectrePsf) {
    let mut b = ExecutionBuilder::new();
    let e1 = b.read("y");
    b.set_label(e1, "1: R y (RW s0)");
    let e2 = b.write("C+0");
    b.set_label(e2, "2: W C+0 (RW s1)");
    b.po(e1, e2);
    let e3s = b.transient_read_hit("C+r1");
    b.set_label(e3s, "3s: Rs C+r1 (R s1)");
    let xs = b.xstate_of(e2).unwrap();
    b.set_xstate(e3s, xs);
    b.tfo(e2, e3s);
    b.rfx(e2, e3s); // forwarded across addresses
    let e4s = b.transient_read("A+r1*r2");
    b.set_label(e4s, "4s: Rs A (RW s2)");
    let e5s = b.transient_read("B+r4");
    b.set_label(e5s, "5s: Rs B (RW s3)");
    b.tfo_chain(&[e3s, e4s, e5s]);
    b.addr_gep(e3s, e4s).addr_gep(e4s, e5s);
    let obs = b.observe("B+r4");
    b.tfo(e5s, obs);
    b.rfx(e5s, obs);
    (
        b.build(),
        SpectrePsf {
            e2,
            e3s,
            e4s,
            e5s,
            obs,
        },
    )
}

/// Named events of the silent-store execution (Fig. 5a).
#[derive(Debug, Clone, Copy)]
pub struct SilentStores {
    /// `1: W x ← 1` — performs normally.
    pub w1: EventId,
    /// `2: W x ← 1` — silent: microarchitecturally only reads.
    pub w2: EventId,
    /// Observer of x's line.
    pub obs: EventId,
}

/// Builds the Fig. 5a silent-store execution: two same-data stores; the
/// second is silent, so `co(1, 2)` lacks `cox(1, 2)` — a co/cox
/// inconsistency whose transmitter conveys the **data** field (§4.2).
pub fn silent_stores() -> (Execution, SilentStores) {
    let mut b = ExecutionBuilder::new();
    let w1 = b.write("x");
    b.set_label(w1, "1: W x (RW s1) <- 1");
    let w2 = b.silent_write("x");
    b.set_label(w2, "2: W x (R s1) <- 1");
    b.po(w1, w2);
    b.co(w1, w2);
    b.rfx(w1, w2); // the silent store's comparison read
    let obs = b.observe("x");
    b.po(w2, obs);
    b.rfx(w1, obs); // probe hits 1's fill: 2 never wrote
    (b.build(), SilentStores { w1, w2, obs })
}

/// Named events of the indirect-memory-prefetcher execution (Fig. 5b).
#[derive(Debug, Clone, Copy)]
pub struct ImpPrefetch {
    /// `1ₚ: Rₚ Z` — prefetch of the index table.
    pub p1: EventId,
    /// `2ₚ: Rₚ Y` — dependent prefetch.
    pub p2: EventId,
    /// `3ₚ: Rₚ X` — the universal-data-transmitting prefetch.
    pub p3: EventId,
    /// Observer of X's line.
    pub obs: EventId,
}

/// Builds the Fig. 5b IMP execution: hardware prefetches
/// `X[Y[Z[i+Δ]]]`-style chains with no architectural events at all —
/// prefetches participate only in `comx` and dependency relations, yet
/// construct a universal data transmitter (the "universal read gadget").
pub fn imp_prefetch() -> (Execution, ImpPrefetch) {
    let mut b = ExecutionBuilder::new();
    let p1 = b.prefetch("Z");
    b.set_label(p1, "1p: Rp Z (RW s1)");
    let p2 = b.prefetch("Y");
    b.set_label(p2, "2p: Rp Y (RW s2)");
    let p3 = b.prefetch("X");
    b.set_label(p3, "3p: Rp X (RW s3)");
    b.tfo_chain(&[p1, p2, p3]);
    b.addr_gep(p1, p2).addr_gep(p2, p3);
    let obs = b.observe("X");
    b.tfo(p3, obs);
    b.rfx(p3, obs);
    (b.build(), ImpPrefetch { p1, p2, p3, obs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::confidentiality::{
        ConfidentialityModel, NaiveTsoLift, PsfLcm, SilentStoreLcm, X86Lcm,
    };
    use lcm_core::mcm::{ConsistencyModel, Tso};
    use lcm_core::taxonomy::{TransmittedField, TransmitterClass};
    use lcm_core::{detect_leakage, Transmitter};

    fn classes_of(ts: &[Transmitter], e: EventId) -> Vec<TransmitterClass> {
        let mut v: Vec<_> = ts
            .iter()
            .filter(|t| t.event == e)
            .map(|t| t.class)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn spectre_v1_matches_paper_classification() {
        let (x, ids) = spectre_v1();
        assert!(x.well_formed().is_ok(), "{:?}", x.well_formed());
        assert!(Tso.check(&x).is_ok(), "consistent under TSO");
        let report = detect_leakage(&x);
        assert!(!report.is_clean());
        // §4.2: 2 is an AT; 5/5s are DTs with access 2; 6/6s are candidate
        // UDTs with accesses 5/5s. 6s is the *true* universal transmitter.
        assert!(classes_of(&report.transmitters, ids.e2).contains(&TransmitterClass::Address));
        assert!(classes_of(&report.transmitters, ids.e5).contains(&TransmitterClass::Data));
        assert!(classes_of(&report.transmitters, ids.e6).contains(&TransmitterClass::UniversalData));
        assert!(
            classes_of(&report.transmitters, ids.e6s).contains(&TransmitterClass::UniversalData)
        );
        let t6s = report
            .transmitters
            .iter()
            .find(|t| t.event == ids.e6s && t.class == TransmitterClass::UniversalData)
            .unwrap();
        assert!(t6s.transient, "6s is a transient transmitter");
        assert_eq!(t6s.access, Some(ids.e5s));
        assert!(t6s.access_transient);
    }

    #[test]
    fn spectre_v1_var_has_committed_access() {
        let (x, ids) = spectre_v1_var();
        assert!(x.well_formed().is_ok());
        let report = detect_leakage(&x);
        let udt = report
            .transmitters
            .iter()
            .find(|t| t.event == ids.e6s && t.class == TransmitterClass::UniversalData)
            .expect("6s classified UDT");
        assert!(udt.transient);
        assert_eq!(udt.access, Some(ids.e5));
        assert!(
            !udt.access_transient,
            "Fig. 3: the access instruction commits"
        );
    }

    #[test]
    fn spectre_v4_needs_relaxed_confidentiality() {
        let (x, ids) = spectre_v4();
        assert!(x.well_formed().is_ok());
        assert!(Tso.check(&x).is_ok());
        // The frx ∪ tfo_loc cycle: naive lift forbids, x86 LCM permits.
        assert!(X86Lcm.check(&x).is_ok(), "x86 permits Spectre v4");
        assert_eq!(
            NaiveTsoLift.check(&x).unwrap_err().constraint,
            "sc_per_loc_x",
            "naive sc_per_loc_x would rule the execution out"
        );
        // frx(4s, 3) present: 4s reads s1 before 3 overwrites it.
        assert!(x.frx().contains(ids.e4s.0, ids.e3.0));
        let report = detect_leakage(&x);
        let udt = report
            .transmitters
            .iter()
            .find(|t| t.event == ids.e6s && t.class == TransmitterClass::UniversalData)
            .expect("6s is a true UDT");
        assert_eq!(udt.access, Some(ids.e5s));
        assert!(udt.access_transient, "v4's access is transient");
        // 5s is also a data transmitter with transient access 4s.
        let t5 = report
            .transmitters
            .iter()
            .find(|t| t.event == ids.e5s && t.class == TransmitterClass::Data)
            .unwrap();
        assert_eq!(t5.access, Some(ids.e4s));
    }

    #[test]
    fn spectre_psf_requires_alias_prediction() {
        let (x, ids) = spectre_psf();
        assert!(x.well_formed().is_ok());
        assert_eq!(
            X86Lcm.check(&x).unwrap_err().constraint,
            "no_alias_prediction",
            "cross-address rfx is impossible without alias prediction"
        );
        assert!(PsfLcm.check(&x).is_ok());
        let report = detect_leakage(&x);
        assert!(
            classes_of(&report.transmitters, ids.e5s).contains(&TransmitterClass::UniversalData)
        );
    }

    #[test]
    fn silent_stores_leak_data_field() {
        let (x, ids) = silent_stores();
        assert!(x.well_formed().is_ok());
        assert!(Tso.check(&x).is_ok());
        assert!(SilentStoreLcm.check(&x).is_ok());
        assert!(X86Lcm.check(&x).is_err(), "x86 has no silent stores");
        let report = detect_leakage(&x);
        let t = report
            .transmitters
            .iter()
            .find(|t| t.event == ids.w2)
            .expect("silent store is the transmitter");
        assert_eq!(
            t.field,
            TransmittedField::Data,
            "it transmits the data field"
        );
    }

    #[test]
    fn imp_prefetch_builds_universal_read_gadget() {
        let (x, ids) = imp_prefetch();
        assert!(x.well_formed().is_ok());
        let report = detect_leakage(&x);
        let classes = classes_of(&report.transmitters, ids.p3);
        assert!(
            classes.contains(&TransmitterClass::UniversalData),
            "{classes:?}"
        );
        // Prefetches never participate architecturally.
        assert!(x.rf().predecessors(ids.p3.0).next().is_none());
        assert!(x.po().successors(ids.p1.0).next().is_none());
    }
}
