//! The subrosa analogue (§3.4): design and formal analysis of LCM
//! specifications on litmus-sized programs.
//!
//! Two facilities:
//!
//! * [`programs`] — executable constructions of every worked attack in the
//!   paper (Fig. 2b Spectre v1, Fig. 3 the non-transient-access variant,
//!   Fig. 4a Spectre v4, Fig. 4b Spectre-PSF, Fig. 5a silent stores,
//!   Fig. 5b the indirect memory prefetcher), each returning a complete
//!   candidate execution ready for [`lcm_core::detect_leakage`];
//! * [`enumerate`] — exhaustive enumeration of candidate executions for
//!   small programs (the Alloy-style bounded analysis): all `rf` choices ×
//!   all per-location `co` orders, filtered by a consistency predicate;
//!   and all microarchitectural witnesses (`rfx`/`cox`) filtered by a
//!   confidentiality predicate.

pub mod enumerate;
pub mod programs;
