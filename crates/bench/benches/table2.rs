//! Criterion bench regenerating Table 2 rows: detection cost per workload
//! and tool.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_corpus::{all_litmus, crypto};
use lcm_detect::{Detector, DetectorConfig, EngineKind};
use lcm_haunted::{HauntedConfig, HauntedEngine};

fn bench_litmus_suites(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/litmus");
    g.sample_size(20);
    for (suite, benches) in all_litmus() {
        let modules: Vec<_> = benches.iter().map(|b| b.module()).collect();
        g.bench_function(format!("{suite}/clou-pht"), |bch| {
            let det = Detector::new(DetectorConfig::default());
            bch.iter(|| {
                modules
                    .iter()
                    .map(|m| {
                        det.analyze_module(m, EngineKind::Pht)
                            .count(lcm_core::taxonomy::TransmitterClass::UniversalData)
                    })
                    .sum::<usize>()
            });
        });
        g.bench_function(format!("{suite}/clou-stl"), |bch| {
            let det = Detector::new(DetectorConfig::default());
            bch.iter(|| {
                modules
                    .iter()
                    .map(|m| det.analyze_module(m, EngineKind::Stl).functions.len())
                    .sum::<usize>()
            });
        });
        g.bench_function(format!("{suite}/bh-pht"), |bch| {
            bch.iter(|| {
                modules
                    .iter()
                    .map(|m| {
                        lcm_haunted::analyze_module(m, HauntedEngine::Pht, HauntedConfig::default())
                            .total_leaks()
                    })
                    .sum::<usize>()
            });
        });
        g.bench_function(format!("{suite}/bh-stl"), |bch| {
            bch.iter(|| {
                modules
                    .iter()
                    .map(|m| {
                        lcm_haunted::analyze_module(m, HauntedEngine::Stl, HauntedConfig::default())
                            .total_leaks()
                    })
                    .sum::<usize>()
            });
        });
    }
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/crypto");
    g.sample_size(10);
    for bench in crypto::all_crypto() {
        // donna dominates wall time: it runs in the table2 binary; keep the
        // criterion suite responsive with the other five.
        if bench.name == "donna" {
            continue;
        }
        let m = bench.module();
        g.bench_function(format!("{}/clou-pht", bench.name), |bch| {
            let det = Detector::new(DetectorConfig::default());
            bch.iter(|| det.analyze_module(&m, EngineKind::Pht).functions.len());
        });
        g.bench_function(format!("{}/clou-stl", bench.name), |bch| {
            let det = Detector::new(DetectorConfig::default());
            bch.iter(|| det.analyze_module(&m, EngineKind::Stl).functions.len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_litmus_suites, bench_crypto);
criterion_main!(benches);
