//! Criterion bench regenerating Fig. 8: analysis runtime as a function of
//! S-AEG size, by size bucket over the synthetic library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcm_corpus::synth::{synthetic_library, SynthConfig};
use lcm_detect::{Detector, DetectorConfig, EngineKind};

fn bench_scaling(c: &mut Criterion) {
    let cfg = SynthConfig {
        seed: 0x50d1,
        functions: 24,
        max_stmts: 120,
        pht_gadget_pct: 10,
        stl_gadget_pct: 10,
    };
    let (src, _) = synthetic_library(cfg);
    let m = lcm_minic::compile(&src).expect("synthetic library compiles");
    let det = Detector::new(DetectorConfig::default());

    // Pick one representative function per size bucket.
    let mut sized: Vec<(String, usize)> = m
        .public_functions()
        .map(|f| (f.name.clone(), f.scheduled_len()))
        .collect();
    sized.sort_by_key(|(_, s)| *s);
    let picks: Vec<&(String, usize)> = sized
        .iter()
        .enumerate()
        .filter(|(i, _)| i % (sized.len() / 6).max(1) == 0)
        .map(|(_, x)| x)
        .collect();

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for (name, size) in picks {
        g.bench_with_input(BenchmarkId::new("clou-pht", size), name, |b, name| {
            b.iter(|| {
                det.analyze_function(&m, name, EngineKind::Pht)
                    .transmitters
                    .len()
            });
        });
        g.bench_with_input(BenchmarkId::new("clou-stl", size), name, |b, name| {
            b.iter(|| {
                det.analyze_function(&m, name, EngineKind::Stl)
                    .transmitters
                    .len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
