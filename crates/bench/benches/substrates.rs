//! Criterion micro-benches for the substrates: the relational algebra,
//! the SAT solver, the front end, and litmus enumeration. These are
//! ablation-style measurements backing DESIGN.md's substitution arguments
//! (e.g. "solver time dominates" as in §6.2.4).

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_litmus::enumerate::{Litmus, Op};
use lcm_relalg::Relation;
use lcm_sat::{Lit, Solver};

fn bench_relalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates/relalg");
    for n in [64usize, 256] {
        // A layered DAG with n nodes.
        let rel = Relation::from_pairs(
            n,
            (0..n - 1)
                .flat_map(|i| [(i, i + 1), (i, (i + 7) % n)])
                .filter(|&(a, b)| a < b),
        );
        g.bench_function(format!("closure/{n}"), |b| {
            b.iter(|| rel.transitive_closure().len());
        });
        g.bench_function(format!("acyclic/{n}"), |b| {
            b.iter(|| lcm_relalg::acyclic(&rel));
        });
    }
    g.finish();
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates/sat");
    // Pigeonhole 7-into-6: a small hard UNSAT instance.
    g.bench_function("php7", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let n = 7;
            let m = 6;
            let vars: Vec<Vec<_>> = (0..n)
                .map(|_| (0..m).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                s.add_clause(row.iter().map(|&v| Lit::pos(v)));
            }
            #[allow(clippy::needless_range_loop)]
            for j in 0..m {
                for i1 in 0..n {
                    for i2 in (i1 + 1)..n {
                        s.add_clause([Lit::neg(vars[i1][j]), Lit::neg(vars[i2][j])]);
                    }
                }
            }
            assert!(!s.solve().is_sat());
            s.stats().0
        });
    });
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let src = lcm_corpus::crypto::tea().source;
    c.bench_function("substrates/minic/tea", |b| {
        b.iter(|| lcm_minic::compile(&src).unwrap().functions.len());
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let sb = Litmus::new(vec![
        vec![Op::w("x"), Op::r("y")],
        vec![Op::w("y"), Op::r("x")],
    ]);
    c.bench_function("substrates/litmus/sb-tso", |b| {
        b.iter(|| sb.consistent_executions(&lcm_core::mcm::Tso).len());
    });
}

criterion_group!(
    benches,
    bench_relalg,
    bench_sat,
    bench_frontend,
    bench_enumeration
);
criterion_main!(benches);
