//! Validates a Chrome-trace JSON file's shape (balanced begin/end
//! events, per-lane monotone timestamps, proper nesting, metadata
//! records) — the CI gate behind the `--trace-out` artifact.
//!
//! Usage: `cargo run --release -p lcm-bench --bin tracecheck -- FILE
//! [--min-processes N]`
//!
//! `--min-processes N` additionally requires the trace to contain
//! spans from at least `N` distinct pids — the CI fleet step uses it
//! to prove the merged trace really carries supervisor *and* worker
//! lanes, not just a single-process export.
//!
//! Exits 0 and prints a one-line summary when the file is a valid
//! trace; exits 1 with the first violated invariant otherwise.

use lcm_bench::trace;

fn main() {
    let mut path: Option<String> = None;
    let mut min_processes = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-processes" => {
                min_processes = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("tracecheck: --min-processes needs a number");
                    std::process::exit(2);
                });
            }
            _ if path.is_none() => path = Some(arg),
            other => {
                eprintln!("tracecheck: unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: tracecheck FILE [--min-processes N]");
        std::process::exit(2);
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match trace::validate(&doc) {
        Ok(s) => {
            if s.processes < min_processes {
                eprintln!(
                    "{path}: INVALID trace: {} process(es), expected at least {min_processes}",
                    s.processes
                );
                std::process::exit(1);
            }
            println!(
                "{path}: ok — {} events, {} spans, {} threads, {} processes, max depth {}",
                s.events, s.spans, s.threads, s.processes, s.max_depth
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            std::process::exit(1);
        }
    }
}
