//! Validates a Chrome-trace JSON file's shape (balanced begin/end
//! events, per-thread monotone timestamps, proper nesting) — the CI
//! gate behind the `--trace-out` artifact.
//!
//! Usage: `cargo run --release -p lcm-bench --bin tracecheck -- FILE`
//!
//! Exits 0 and prints a one-line summary when the file is a valid
//! trace; exits 1 with the first violated invariant otherwise.

use lcm_bench::trace;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck FILE");
        std::process::exit(2);
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match trace::validate(&doc) {
        Ok(s) => {
            println!(
                "{path}: ok — {} events, {} spans, {} threads, max depth {}",
                s.events, s.spans, s.threads, s.max_depth
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            std::process::exit(1);
        }
    }
}
