//! Detection-vs-ground-truth agreement on the synthetic library: since
//! every generated gadget is known, we can report per-engine recall and
//! function-level precision — the quantitative backing for the §6.2
//! "finds new Spectre gadgets" claims that the paper could only support
//! by manual inspection.
//!
//! Usage: `cargo run --release -p lcm-bench --bin synth_truth -- [--jobs N]`

use lcm_bench::cli;
use lcm_core::taxonomy::TransmitterClass;
use lcm_corpus::synth::{synthetic_library, SynthConfig};
use lcm_detect::{Detector, DetectorConfig, EngineKind};

fn main() {
    let args = cli::parse(std::env::args().skip(1));
    let cfg = SynthConfig::libsodium_scale();
    let (src, truth) = synthetic_library(cfg);
    let m = lcm_minic::compile(&src).expect("synthetic library compiles");
    let det = Detector::new(DetectorConfig::default());

    // Fan out per truth entry (one public function each); the tallies
    // below fold the results back in truth order, so they are identical
    // for every --jobs setting.
    let hits = lcm_core::par::map_indexed(&truth, args.jobs, |_, t| {
        let pht = det.analyze_function(&m, &t.function, EngineKind::Pht);
        let stl = det.analyze_function(&m, &t.function, EngineKind::Stl);
        (
            pht.count(TransmitterClass::UniversalData) > 0,
            !stl.is_clean(),
        )
    });

    let mut rows = Vec::new();
    let mut pht_tp = 0;
    let mut pht_fn = 0;
    let mut pht_extra = 0;
    let mut stl_tp = 0;
    let mut stl_fn = 0;
    let mut stl_extra = 0;
    for (t, &(pht_hit, stl_hit)) in truth.iter().zip(&hits) {
        match (t.pht_gadget, pht_hit) {
            (true, true) => pht_tp += 1,
            (true, false) => pht_fn += 1,
            (false, true) => pht_extra += 1,
            _ => {}
        }
        match (t.stl_gadget, stl_hit) {
            (true, true) => stl_tp += 1,
            (true, false) => stl_fn += 1,
            (false, true) => stl_extra += 1,
            _ => {}
        }
        rows.push((
            t.function.clone(),
            t.stmts,
            t.pht_gadget,
            pht_hit,
            t.stl_gadget,
            stl_hit,
        ));
    }

    println!(
        "Synthetic-library ground truth agreement ({} functions)\n",
        truth.len()
    );
    println!(
        "{:<16} {:>6}  {:>9} {:>9}  {:>9} {:>9}",
        "function", "stmts", "pht-seed", "pht-hit", "stl-seed", "stl-hit"
    );
    println!("{}", "-".repeat(66));
    for (f, stmts, ps, ph, ss, sh) in rows.iter().filter(|r| r.2 || r.3 || r.4 || r.5) {
        println!(
            "{f:<16} {stmts:>6}  {:>9} {:>9}  {:>9} {:>9}",
            tick(*ps),
            tick(*ph),
            tick(*ss),
            tick(*sh)
        );
    }
    println!();
    println!(
        "PHT (UDT search): {pht_tp} seeded found, {pht_fn} missed, {pht_extra} functions flagged beyond seeds"
    );
    println!(
        "STL (any leak):   {stl_tp} seeded found, {stl_fn} missed, {stl_extra} functions flagged beyond seeds"
    );
    println!(
        "\nNotes: 'beyond seeds' is expected for STL — clang -O0 spills make\n\
         many generated functions genuinely bypassable (§6.1's observation\n\
         that Clou finds more STL transmitters than benchmark authors intend)."
    );
    assert_eq!(pht_fn, 0, "no seeded PHT gadget may be missed");
    assert_eq!(stl_fn, 0, "no seeded STL gadget may be missed");
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}
