//! Regenerates the Fig. 8 analogue: serial CPU runtime vs S-AEG function
//! size for both Clou engines over the synthetic library, printed as CSV
//! plus a log-log summary by size bucket.
//!
//! Usage: `cargo run --release -p lcm-bench --bin fig8 -- [--big]
//! [--jobs N] [--json PATH] [--timeout-ms N] [--max-conflicts N]
//! [--cache-dir DIR] [--no-cache] [--trace-out PATH]
//! [--metrics-out PATH]`
//!
//! `--timeout-ms` / `--max-conflicts` set per-function analysis budgets;
//! points whose analysis degrades are listed at the end and the exit
//! status is 1. `--cache-dir DIR` serves unchanged functions from the
//! content-addressed result store (both engines must hit for a point to
//! skip its S-AEG build); `--no-cache` runs cold.

use std::time::Instant;

use lcm_bench::{cli, fig8_series, json};
use lcm_corpus::synth::SynthConfig;

fn main() {
    let args = cli::parse(std::env::args().skip(1));
    let big = args.has("--big");
    let cfg = if big {
        SynthConfig::openssl_scale()
    } else {
        SynthConfig::libsodium_scale()
    };
    println!("Fig. 8 analogue — runtime vs S-AEG node count (config: {cfg:?})");
    println!(
        "(jobs: {} => {} worker threads)\n",
        args.jobs,
        lcm_core::par::effective_jobs(args.jobs)
    );
    println!("function,size,pht_us,stl_us");
    let store = args.open_store();
    args.start_tracing();
    let t0 = Instant::now();
    let points = fig8_series(cfg, args.jobs, args.budgets(), store.as_ref());
    let wall = t0.elapsed();
    for p in &points {
        println!(
            "{},{},{},{}",
            p.function,
            p.size,
            p.pht_time.as_micros(),
            p.stl_time.as_micros()
        );
    }

    // Bucketed geometric-mean summary (the scatter's trend line).
    println!("\nsize-bucket summary (geometric mean runtime):");
    println!(
        "{:>16} {:>8} {:>12} {:>12}",
        "bucket", "count", "pht", "stl"
    );
    let mut lo = 1usize;
    while lo <= points.last().map_or(0, |p| p.size) {
        let hi = lo * 4;
        let in_bucket: Vec<_> = points
            .iter()
            .filter(|p| p.size >= lo && p.size < hi)
            .collect();
        if !in_bucket.is_empty() {
            let gm = |f: &dyn Fn(&lcm_bench::Fig8Point) -> f64| -> f64 {
                let s: f64 = in_bucket.iter().map(|p| f(p).max(1.0).ln()).sum();
                (s / in_bucket.len() as f64).exp()
            };
            let pht = gm(&|p| p.pht_time.as_micros() as f64);
            let stl = gm(&|p| p.stl_time.as_micros() as f64);
            println!(
                "{:>7}..{:<7} {:>8} {:>10.0}us {:>10.0}us",
                lo,
                hi,
                in_bucket.len(),
                pht,
                stl
            );
        }
        lo = hi;
    }
    let mut summary = json::RunSummary {
        wall,
        degraded_noun: "points",
        ..json::RunSummary::default()
    };
    if store.is_some() {
        let mut cache = lcm_store::CacheCounts::default();
        for p in &points {
            match p.cache {
                lcm_detect::CacheStatus::Hit => cache.hits += 1,
                lcm_detect::CacheStatus::Miss => cache.misses += 1,
                lcm_detect::CacheStatus::Bypass => cache.bypassed += 1,
            }
        }
        summary.cache = Some(cache);
    }
    for p in &points {
        if let Some(reason) = &p.degraded {
            summary.degraded.push((p.function.clone(), reason.clone()));
        }
    }
    println!("\n{}", summary.render());

    if let Some(path) = &args.json {
        std::fs::write(path, json::fig8_json(&points, args.jobs, wall))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("json written to {path}");
    }

    args.finish_tracing();
    args.finish_metrics();
    let degraded = points.iter().filter(|p| p.degraded.is_some()).count();
    if degraded > 0 {
        eprintln!("error: {degraded} analyses degraded");
        std::process::exit(1);
    }
}
