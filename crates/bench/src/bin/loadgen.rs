//! `loadgen` — RPS / latency harness for the `lcm-serve` daemon.
//!
//! Replays a request mix against a daemon at a target rate and reports
//! achieved RPS plus latency percentiles (read from an `lcm-obs`
//! histogram, the same estimator `histogram_quantile()` applies to the
//! daemon's own Prometheus exposition). Three modes exercise the three
//! protocol shapes:
//!
//! * `oneshot`  — protocol v1: one connection per request (the
//!   pre-multiplexing baseline);
//! * `pipeline` — protocol v2: one persistent connection, `--depth`
//!   requests in flight, replies matched by id;
//! * `batch`    — protocol v2: `--batch` programs per frame, one
//!   aggregated reply;
//! * `suite`    — all three back to back against the same daemon, with
//!   pipelined/batched speedup over oneshot (the default; this is what
//!   `BENCH_serve_load.json` records).
//!
//! With no `--socket` / `--tcp`, the harness spawns an in-process
//! server on a temp socket (workers from `--jobs`, cache from
//! `--cache-dir` or a temp dir, worker *processes* from `--fleet N`)
//! and shuts it down at exit — the normal way to run it, and what CI's
//! smoke step does. In fleet mode the report ends with fleet-wide
//! solver-latency percentiles, aggregated from the metric deltas every
//! worker shipped back to the supervisor; `--metrics-out PATH` dumps
//! the merged registry as JSON:
//!
//! ```text
//! loadgen --mode pipeline --requests 64 --depth 8 --mix warm \
//!         --rps 50 --assert-rps 50
//! loadgen --json BENCH_serve_load.json          # full suite
//! ```
//!
//! The `--mix` flag picks cache behavior: `warm` replays one program
//! (every request after warmup is a cache hit — protocol overhead
//! dominates), `cold` makes every program distinct (engine runs
//! dominate), `mixed` alternates.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lcm_bench::cli;
use lcm_core::jsonw::Json;
use lcm_detect::EngineKind;
use lcm_obs::metrics::{latency_buckets, names, Histogram, MetricsRegistry};
use lcm_serve::{Client, ServeConfig, Server};

/// Which protocol shape a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Oneshot,
    Pipeline,
    Batch,
    Suite,
}

/// Which cache behavior the request mix provokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mix {
    Warm,
    Cold,
    Mixed,
}

impl Mix {
    fn label(self) -> &'static str {
        match self {
            Mix::Warm => "warm",
            Mix::Cold => "cold",
            Mix::Mixed => "mixed",
        }
    }
}

struct Opts {
    mode: Mode,
    requests: u64,
    depth: usize,
    batch: usize,
    rps: f64,
    mix: Mix,
    engine: EngineKind,
    assert_rps: Option<f64>,
    assert_speedup: Option<f64>,
    socket: Option<String>,
    tcp: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Pulls `--flag VALUE` / `--flag=VALUE` out of the leftover args.
fn take_value(rest: &mut Vec<String>, flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    let i = rest.iter().position(|a| a == flag || a.starts_with(&eq))?;
    let a = rest.remove(i);
    if let Some(v) = a.strip_prefix(&eq) {
        return Some(v.to_string());
    }
    if i < rest.len() {
        return Some(rest.remove(i));
    }
    die(&format!("{flag} needs a value"))
}

fn parse_opts(rest: &mut Vec<String>) -> Opts {
    let num = |v: Option<String>, flag: &str, default: u64| -> u64 {
        v.map_or(default, |s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("{flag} expects a number, got {s:?}")))
        })
    };
    let float = |v: Option<String>, flag: &str| -> Option<f64> {
        v.map(|s| {
            s.parse()
                .unwrap_or_else(|_| die(&format!("{flag} expects a number, got {s:?}")))
        })
    };
    let mode = match take_value(rest, "--mode").as_deref() {
        None | Some("suite") => Mode::Suite,
        Some("oneshot") => Mode::Oneshot,
        Some("pipeline") => Mode::Pipeline,
        Some("batch") => Mode::Batch,
        Some(m) => die(&format!(
            "--mode expects oneshot|pipeline|batch|suite, got {m:?}"
        )),
    };
    let mix = match take_value(rest, "--mix").as_deref() {
        None | Some("warm") => Mix::Warm,
        Some("cold") => Mix::Cold,
        Some("mixed") => Mix::Mixed,
        Some(m) => die(&format!("--mix expects warm|cold|mixed, got {m:?}")),
    };
    let engine = match take_value(rest, "--engine").as_deref() {
        None | Some("pht") => EngineKind::Pht,
        Some("stl") => EngineKind::Stl,
        Some("psf") => EngineKind::Psf,
        Some(e) => die(&format!("--engine expects pht|stl|psf, got {e:?}")),
    };
    Opts {
        mode,
        requests: num(take_value(rest, "--requests"), "--requests", 64).max(1),
        depth: num(take_value(rest, "--depth"), "--depth", 8).max(1) as usize,
        batch: num(take_value(rest, "--batch"), "--batch", 16).max(1) as usize,
        rps: float(take_value(rest, "--rps"), "--rps").unwrap_or(0.0),
        mix,
        engine,
        assert_rps: float(take_value(rest, "--assert-rps"), "--assert-rps"),
        assert_speedup: float(take_value(rest, "--assert-speedup"), "--assert-speedup"),
        socket: take_value(rest, "--socket"),
        tcp: take_value(rest, "--tcp"),
    }
}

/// The replayed program: the classic bounds-check victim, distinct per
/// request when the mix asks for cold cache (`tag` keeps the cold
/// namespaces of the suite's three runs from warming each other).
fn source(mix: Mix, tag: &str, i: u64) -> String {
    let name = match mix {
        Mix::Warm => "victim_w".to_string(),
        Mix::Cold => format!("victim_{tag}_{i}"),
        Mix::Mixed if i % 2 == 0 => "victim_w".to_string(),
        Mix::Mixed => format!("victim_{tag}_{i}"),
    };
    format!(
        "int A[16]; int B[4096]; int size; int tmp;
         void {name}(int y) {{ if (y < size) tmp &= B[A[y] * 512]; }}"
    )
}

/// Sleeps until request `i`'s scheduled send time under open-loop
/// pacing (`rps == 0` disables pacing).
fn pace(start: Instant, i: u64, rps: f64) {
    if rps <= 0.0 {
        return;
    }
    let due = start + Duration::from_secs_f64(i as f64 / rps);
    let now = Instant::now();
    if due > now {
        std::thread::sleep(due - now);
    }
}

/// One mode's measured outcome.
struct ModeResult {
    mode: &'static str,
    requests: u64,
    errors: u64,
    elapsed: Duration,
    achieved_rps: f64,
    p50: Option<f64>,
    p90: Option<f64>,
    p99: Option<f64>,
    mean: Option<f64>,
}

impl ModeResult {
    fn from_hist(
        mode: &'static str,
        requests: u64,
        errors: u64,
        elapsed: Duration,
        hist: &Histogram,
    ) -> ModeResult {
        let snap = hist.snapshot();
        let mean = (snap.count > 0).then(|| snap.sum_secs / snap.count as f64);
        ModeResult {
            mode,
            requests,
            errors,
            elapsed,
            achieved_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50: snap.quantile(0.50),
            p90: snap.quantile(0.90),
            p99: snap.quantile(0.99),
            mean,
        }
    }

    fn render_row(&self) -> String {
        let ms = |v: Option<f64>| v.map_or("-".to_string(), |s| format!("{:.3}", s * 1e3));
        format!(
            "{:<9} {:>8} {:>7} {:>12.1} {:>10} {:>10} {:>10} {:>10}",
            self.mode,
            self.requests,
            self.errors,
            self.achieved_rps,
            ms(self.mean),
            ms(self.p50),
            ms(self.p90),
            ms(self.p99),
        )
    }

    fn json_obj(&self) -> String {
        let f = |v: Option<f64>| v.map_or("null".to_string(), |s| format!("{s:.9}"));
        format!(
            "{{\"mode\": \"{}\", \"requests\": {}, \"errors\": {}, \"elapsed_secs\": {:.6}, \"achieved_rps\": {:.3}, \"mean_secs\": {}, \"p50_secs\": {}, \"p90_secs\": {}, \"p99_secs\": {}}}",
            self.mode,
            self.requests,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.achieved_rps,
            f(self.mean),
            f(self.p50),
            f(self.p90),
            f(self.p99),
        )
    }
}

/// A fresh client-side latency histogram. Each mode gets its own (the
/// registry handles are get-or-create by name, so a *shared* registry
/// would accumulate across modes and smear the percentiles).
fn fresh_hist() -> Histogram {
    MetricsRegistry::new().histogram(
        names::LOADGEN_LATENCY,
        "Client-observed request latency recorded by the loadgen bench",
        latency_buckets(),
    )
}

/// A rendered v1 analyze request line.
fn analyze_frame(source: &str, engine: EngineKind) -> String {
    Json::Obj(vec![
        ("cmd".to_string(), Json::Str("analyze".into())),
        ("source".to_string(), Json::Str(source.into())),
        (
            "engine".to_string(),
            Json::Str(lcm_serve::wire::engine_name(engine).into()),
        ),
    ])
    .render()
}

/// Cheap field scans over raw reply lines. The measured path
/// deliberately skips a full JSON parse: a warm reply is ~3 KB and
/// parsing it costs several times the daemon's entire warm-path
/// service time, so a parsing client would be measuring its own
/// parser, not the protocol. The scanned shapes (the leading
/// `{"id":N,`, the `"ok":true` member, the trailing `"failed":N}`)
/// are pinned by the wire-format tests.
fn scan_u64(line: &str, at: usize) -> Option<u64> {
    let digits = line[at..].bytes().take_while(u8::is_ascii_digit).count();
    line[at..at + digits].parse().ok()
}

fn reply_id(line: &str) -> Option<u64> {
    let key = "{\"id\":";
    line.starts_with(key).then(|| scan_u64(line, key.len()))?
}

fn reply_ok(line: &str) -> bool {
    line.contains("\"ok\":true")
}

fn batch_failed(line: &str) -> Option<u64> {
    let key = "\"failed\":";
    scan_u64(line, line.rfind(key)? + key.len())
}

/// Protocol v1 baseline: connect, one request, read reply, close.
fn run_oneshot(client: &Client, opts: &Opts, tag: &str) -> ModeResult {
    let hist = fresh_hist();
    let mut errors = 0u64;
    let start = Instant::now();
    for i in 0..opts.requests {
        pace(start, i, opts.rps);
        let frame = analyze_frame(&source(opts.mix, tag, i), opts.engine);
        let t0 = Instant::now();
        match client.request_line(&frame) {
            Ok(line) if reply_ok(&line) => {}
            _ => errors += 1,
        }
        hist.observe(t0.elapsed());
    }
    ModeResult::from_hist("oneshot", opts.requests, errors, start.elapsed(), &hist)
}

/// Protocol v2 pipelining: keep `--depth` requests in flight on one
/// persistent connection, match replies by id.
fn run_pipeline(client: &Client, opts: &Opts, tag: &str) -> ModeResult {
    let mut conn = client.connect().unwrap_or_else(|e| die(&e.to_string()));
    let hist = fresh_hist();
    let mut inflight: HashMap<u64, Instant> = HashMap::new();
    let (mut sent, mut done, mut errors) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    while done < opts.requests {
        // Send everything currently allowed by the window and the pace.
        while sent < opts.requests && inflight.len() < opts.depth {
            if opts.rps > 0.0 {
                let due = start + Duration::from_secs_f64(sent as f64 / opts.rps);
                if Instant::now() < due {
                    break;
                }
            }
            let src = source(opts.mix, tag, sent);
            let id = conn
                .send_analyze(&src, opts.engine)
                .unwrap_or_else(|e| die(&e.to_string()));
            inflight.insert(id, Instant::now());
            sent += 1;
        }
        if inflight.is_empty() {
            pace(start, sent, opts.rps);
            continue;
        }
        let line = conn.recv_raw_line().unwrap_or_else(|e| die(&e.to_string()));
        let id = reply_id(&line).unwrap_or_else(|| die(&format!("reply without id: {line}")));
        if let Some(t0) = inflight.remove(&id) {
            hist.observe(t0.elapsed());
            if !reply_ok(&line) {
                errors += 1;
            }
            done += 1;
        }
    }
    ModeResult::from_hist("pipeline", opts.requests, errors, start.elapsed(), &hist)
}

/// Protocol v2 batching: `--batch` programs per frame, one aggregated
/// reply; every program in a frame shares the frame's latency.
fn run_batch(client: &Client, opts: &Opts, tag: &str) -> ModeResult {
    let mut conn = client.connect().unwrap_or_else(|e| die(&e.to_string()));
    let hist = fresh_hist();
    let mut errors = 0u64;
    let mut submitted = 0u64;
    let start = Instant::now();
    while submitted < opts.requests {
        pace(start, submitted, opts.rps);
        let n = (opts.requests - submitted).min(opts.batch as u64);
        let sources: Vec<String> = (0..n)
            .map(|k| source(opts.mix, tag, submitted + k))
            .collect();
        let items: Vec<(&str, EngineKind)> =
            sources.iter().map(|s| (s.as_str(), opts.engine)).collect();
        let t0 = Instant::now();
        let id = conn
            .send_batch(&items)
            .unwrap_or_else(|e| die(&e.to_string()));
        let line = conn.recv_raw_line().unwrap_or_else(|e| die(&e.to_string()));
        let dt = t0.elapsed();
        let rid = reply_id(&line).unwrap_or_else(|| die(&format!("reply without id: {line}")));
        if rid != id {
            die(&format!("batch reply id {rid} does not match request {id}"));
        }
        for _ in 0..n {
            hist.observe(dt);
        }
        errors += batch_failed(&line).unwrap_or(n);
        submitted += n;
    }
    ModeResult::from_hist("batch", opts.requests, errors, start.elapsed(), &hist)
}

fn header() -> String {
    format!(
        "{:<9} {:>8} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "mode", "requests", "errors", "rps", "mean_ms", "p50_ms", "p90_ms", "p99_ms"
    )
}

fn suite_json(opts: &Opts, results: &[ModeResult], speedups: &[(String, f64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"serve_load\",\n");
    s.push_str(&format!("  \"mix\": \"{}\",\n", opts.mix.label()));
    s.push_str(&format!("  \"engine\": \"{}\",\n", opts.engine.label()));
    s.push_str(&format!("  \"requests\": {},\n", opts.requests));
    s.push_str(&format!("  \"depth\": {},\n", opts.depth));
    s.push_str(&format!("  \"batch\": {},\n", opts.batch));
    s.push_str(&format!("  \"target_rps\": {},\n", opts.rps));
    s.push_str("  \"modes\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {}{}\n",
            r.json_obj(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]");
    for (name, x) in speedups {
        s.push_str(&format!(",\n  \"speedup_{name}\": {x:.3}"));
    }
    s.push_str("\n}\n");
    s
}

fn main() {
    // The self-spawned in-process server's fleet (`--fleet N`) re-execs
    // *this* binary as its workers: divert before any parsing.
    lcm_fleet::maybe_run_worker();
    let mut args = cli::parse(std::env::args().skip(1));
    let opts = parse_opts(&mut args.rest);
    if let Some(unknown) = args.rest.first() {
        die(&format!("unknown flag {unknown:?}"));
    }

    // Target: an existing daemon, or a self-spawned in-process server.
    let mut spawned = None;
    let mut temp_cache = None;
    let client = match (&opts.socket, &opts.tcp) {
        (Some(path), _) => Client::new(path),
        (None, Some(addr)) => Client::tcp(addr.clone()),
        (None, None) => {
            let socket =
                std::env::temp_dir().join(format!("lcm-loadgen-{}.sock", std::process::id()));
            let mut config = ServeConfig::new(&socket);
            config.workers = args.jobs;
            config.fleet = args.fleet;
            config.events_out = args.events_out.clone().map(Into::into);
            config.cache_dir = match (&args.cache_dir, args.no_cache) {
                (_, true) => None,
                (Some(dir), _) => Some(dir.into()),
                (None, _) => {
                    let dir = std::env::temp_dir()
                        .join(format!("lcm-loadgen-cache-{}", std::process::id()));
                    temp_cache = Some(dir.clone());
                    Some(dir)
                }
            };
            let handle = Server::spawn(config).unwrap_or_else(|e| die(&e.to_string()));
            spawned = Some((handle, socket.clone()));
            Client::new(&socket)
        }
    };

    // Warmup: prime the warm program's cache entry so the timed run
    // measures steady state, not the first-touch engine run.
    if matches!(opts.mix, Mix::Warm | Mix::Mixed) {
        client
            .analyze_source(&source(Mix::Warm, "warmup", 0), opts.engine)
            .unwrap_or_else(|e| die(&format!("warmup failed: {e}")));
    }

    let results: Vec<ModeResult> = match opts.mode {
        Mode::Oneshot => vec![run_oneshot(&client, &opts, "os")],
        Mode::Pipeline => vec![run_pipeline(&client, &opts, "pl")],
        Mode::Batch => vec![run_batch(&client, &opts, "bt")],
        Mode::Suite => vec![
            run_oneshot(&client, &opts, "os"),
            run_pipeline(&client, &opts, "pl"),
            run_batch(&client, &opts, "bt"),
        ],
    };

    println!("{}", header());
    for r in &results {
        println!("{}", r.render_row());
    }

    let mut speedups = Vec::new();
    if opts.mode == Mode::Suite {
        let base = results[0].achieved_rps;
        for r in &results[1..] {
            speedups.push((r.mode.to_string(), r.achieved_rps / base.max(1e-9)));
        }
        for (name, x) in &speedups {
            println!("speedup {name} vs oneshot: {x:.2}x");
        }
    }

    if let Some(path) = &args.json {
        let json = suite_json(&opts, &results, &speedups);
        match std::fs::write(path, &json) {
            Ok(()) => println!("json written to {path}"),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }

    // Tear down the self-spawned server before judging assertions.
    let self_spawned = spawned.is_some();
    if let Some((handle, socket)) = spawned {
        let _ = Client::new(&socket).shutdown();
        let _ = handle.join();
    }
    if let Some(dir) = temp_cache {
        let _ = std::fs::remove_dir_all(dir);
    }

    // Fleet-wide daemon-side percentiles: with `--fleet N`, solver
    // calls ran inside worker *processes*; their metric deltas rode
    // each result frame and the supervisor folded them into this
    // process's global registry, so these quantiles aggregate every
    // worker. Only meaningful for the self-spawned server (a remote
    // daemon's registry is not ours to read).
    if self_spawned && args.fleet > 0 {
        let hist = lcm_obs::metrics::global().histogram(
            lcm_obs::metrics::names::SOLVE_LATENCY,
            "Wall-clock latency of SAT solver calls (screened and memoized queries never reach here)",
            latency_buckets(),
        );
        let snap = hist.snapshot();
        let ms = |v: Option<f64>| v.map_or("-".to_string(), |s| format!("{:.3}", s * 1e3));
        println!(
            "fleet-wide solver latency ({} workers, {} observations): p50 {} ms, p90 {} ms, p99 {} ms",
            args.fleet,
            snap.count,
            ms(snap.quantile(0.50)),
            ms(snap.quantile(0.90)),
            ms(snap.quantile(0.99)),
        );
    }
    args.finish_metrics();

    let mut failed = false;
    let total_errors: u64 = results.iter().map(|r| r.errors).sum();
    if total_errors > 0 {
        eprintln!("FAIL: {total_errors} requests errored");
        failed = true;
    }
    if let Some(min) = opts.assert_rps {
        for r in &results {
            if r.achieved_rps < min {
                eprintln!(
                    "FAIL: {} achieved {:.1} rps < required {min}",
                    r.mode, r.achieved_rps
                );
                failed = true;
            }
        }
    }
    if let Some(min) = opts.assert_speedup {
        let best = speedups.iter().map(|(_, x)| *x).fold(0.0f64, f64::max);
        if speedups.is_empty() {
            eprintln!("FAIL: --assert-speedup needs --mode suite");
            failed = true;
        } else if best < min {
            eprintln!("FAIL: best speedup {best:.2}x < required {min}x");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
