//! Regenerates the Table 2 analogue: per workload × tool, serial runtime
//! and transmitter counts.
//!
//! Usage: `cargo run --release -p lcm-bench --bin table2 [-- --quick] [-- --repair]`
//!
//! `--quick` skips the synthetic-library workloads; `--repair` additionally
//! runs fence-insertion repair on every vulnerable litmus program and
//! reports fence counts and re-analysis results (the §6.1 claim: all
//! initially-detected leakage is mitigated).

use lcm_bench::{render_table2, table2_rows};
use lcm_corpus::all_litmus;
use lcm_detect::{repair, Detector, DetectorConfig, EngineKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_repair = args.iter().any(|a| a == "--repair");

    println!("Table 2 analogue — leakage detection across workloads and tools");
    println!("(paper baseline: Intel Xeon Gold 6226R; shapes, not absolute times, transfer)\n");
    let rows = table2_rows(quick);
    println!("{}", render_table2(&rows));

    if do_repair {
        println!("\nFence-insertion repair (§6.1)");
        println!("{:<12} {:>8} {:>9} {:>12}", "bench", "engine", "fences", "re-analysis");
        println!("{}", "-".repeat(46));
        let det = Detector::new(DetectorConfig::default());
        for (suite, benches) in all_litmus() {
            let engine = if suite == "litmus-stl" { EngineKind::Stl } else { EngineKind::Pht };
            for b in benches {
                let m = b.module();
                let report = det.analyze_module(&m, engine);
                if report.is_clean() {
                    continue;
                }
                let (fixed, fences) = repair(&m, &det, engine);
                let re = det.analyze_module(&fixed, engine);
                println!(
                    "{:<12} {:>8} {:>9} {:>12}",
                    b.name,
                    if engine == EngineKind::Stl { "stl" } else { "pht" },
                    fences,
                    if re.is_clean() { "clean" } else { "STILL LEAKS" }
                );
            }
        }
    }
}
