//! Regenerates the Table 2 analogue: per workload × tool, serial runtime
//! and transmitter counts.
//!
//! Usage: `cargo run --release -p lcm-bench --bin table2 -- [--quick]
//! [--repair] [--jobs N] [--json PATH] [--timeout-ms N] [--max-conflicts N]
//! [--cache-dir DIR] [--no-cache] [--trace-out PATH] [--fleet N]
//! [--metrics-out PATH] [--events-out PATH]`
//!
//! `--quick` skips the synthetic-library workloads; `--repair` additionally
//! runs fence-insertion repair on every vulnerable litmus program and
//! reports fence counts and re-analysis results (the §6.1 claim: all
//! initially-detected leakage is mitigated). `--jobs N` sets the worker
//! thread count (0/omitted = all cores, 1 = serial; the table is
//! identical either way) and `--json PATH` writes the machine-readable
//! run record. `--timeout-ms` / `--max-conflicts` set per-function
//! analysis budgets; functions that trip one are reported as degraded
//! (their counts become a lower bound) and the exit status is 1.
//! `--cache-dir DIR` routes every analysis through the content-addressed
//! result store at `DIR/results.lcmstore`: a warm re-run on an unchanged
//! corpus performs zero engine analyses and serves every row from the
//! cache. `--no-cache` ignores the directory and runs cold.

use std::time::Instant;

use lcm_bench::{cli, findings_digest, json, render_table2, table2_rows};
use lcm_corpus::all_litmus;
use lcm_detect::{repair, Detector, DetectorConfig, EngineKind};

fn main() {
    // Fleet workers re-execute this binary (default `worker_cmd` is the
    // current executable): divert to the worker loop before any parsing.
    lcm_fleet::maybe_run_worker();
    let args = cli::parse(std::env::args().skip(1));
    let quick = args.has("--quick");
    let do_repair = args.has("--repair");

    println!("Table 2 analogue — leakage detection across workloads and tools");
    println!("(paper baseline: Intel Xeon Gold 6226R; shapes, not absolute times, transfer)");
    println!(
        "(jobs: {} => {} worker threads)\n",
        args.jobs,
        lcm_core::par::effective_jobs(args.jobs)
    );
    let fleet = (args.fleet > 0).then(|| {
        let mut cfg = lcm_fleet::FleetConfig::new(args.fleet);
        cfg.events_out = args.events_out.clone().map(std::path::PathBuf::from);
        lcm_fleet::Fleet::new(cfg)
    });
    if let Some(fleet) = &fleet {
        println!("(fleet: {} worker processes)\n", fleet.workers());
    }
    let store = args.open_store();
    args.start_tracing();
    let t0 = Instant::now();
    let rows = table2_rows(
        quick,
        args.jobs,
        args.budgets(),
        store.as_ref(),
        fleet.as_ref(),
    );
    let wall = t0.elapsed();
    if let Some(fleet) = &fleet {
        fleet.shutdown();
    }
    if let Some(path) = &args.findings_out {
        std::fs::write(path, findings_digest(&rows))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("findings digest written to {path}");
    }
    println!("{}", render_table2(&rows));
    let mut phases = lcm_detect::PhaseTimings::default();
    for r in &rows {
        phases.merge(&r.timings);
    }
    phases.fill_other(wall);
    let mut summary = json::RunSummary {
        wall,
        phases: Some(phases),
        degraded_noun: "findings",
        ..json::RunSummary::default()
    };
    if let Some(store) = &store {
        let mut cache = lcm_store::CacheCounts::default();
        for r in &rows {
            cache.merge(r.cache);
        }
        let s = store.stats();
        summary.cache = Some(cache);
        summary.store = Some((store.len(), s.loaded, s.recovered_drop));
    }
    for r in &rows {
        for (func, reason) in &r.degraded {
            summary.degraded.push((
                format!("{} [{}] {}", r.workload, r.tool.name(), func),
                reason.clone(),
            ));
        }
    }
    println!("{}", summary.render());

    if let Some(path) = &args.json {
        std::fs::write(path, json::table2_json(&rows, args.jobs, wall))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("json written to {path}");
    }

    if do_repair {
        println!("\nFence-insertion repair (§6.1)");
        println!(
            "{:<12} {:>8} {:>9} {:>12}",
            "bench", "engine", "fences", "re-analysis"
        );
        println!("{}", "-".repeat(46));
        let det = Detector::new(DetectorConfig {
            jobs: args.jobs,
            ..DetectorConfig::default()
        });
        for (suite, benches) in all_litmus() {
            let engine = if suite == "litmus-stl" {
                EngineKind::Stl
            } else {
                EngineKind::Pht
            };
            for b in benches {
                let m = b.module();
                let report = det.analyze_module(&m, engine);
                if report.is_clean() {
                    continue;
                }
                let (fixed, fences) = repair(&m, &det, engine);
                let re = det.analyze_module(&fixed, engine);
                println!(
                    "{:<12} {:>8} {:>9} {:>12}",
                    b.name,
                    if engine == EngineKind::Stl {
                        "stl"
                    } else {
                        "pht"
                    },
                    fences,
                    if re.is_clean() {
                        "clean"
                    } else {
                        "STILL LEAKS"
                    }
                );
            }
        }
    }

    args.finish_tracing();
    // After shutdown(), so the dump includes worker deltas drained at
    // fleet exit.
    args.finish_metrics();
    let n_degraded: usize = rows.iter().map(|r| r.degraded.len()).sum();
    if n_degraded > 0 {
        eprintln!("error: {n_degraded} analyses degraded; see summary above");
        std::process::exit(1);
    }
}
