//! Ablation study over the detector's design choices (DESIGN.md §5):
//! the `addr_gep` benign-leak filter (§5.2), the transient-access
//! restriction (§6.2.1), the sliding window `W_size`, and speculation
//! depth. Reports UDT/DT counts and runtime per configuration over the
//! litmus suites.
//!
//! Usage: `cargo run --release -p lcm-bench --bin ablation --
//! [--jobs N] [--trace-out PATH]`

use std::time::Instant;

use lcm_bench::{cli, json};
use lcm_core::speculation::SpeculationConfig;
use lcm_core::taxonomy::TransmitterClass;
use lcm_corpus::all_litmus;
use lcm_detect::{Detector, DetectorConfig, EngineKind};

fn run(cfg: DetectorConfig, engine: EngineKind) -> (usize, usize, usize, u128) {
    let det = Detector::new(cfg);
    let t0 = Instant::now();
    let (mut dt, mut ct, mut udt) = (0, 0, 0);
    for (_, benches) in all_litmus() {
        for b in benches {
            let m = b.module();
            let r = det.analyze_module(&m, engine);
            dt += r.count(TransmitterClass::Data);
            ct += r.count(TransmitterClass::Control);
            udt += r.count(TransmitterClass::UniversalData)
                + r.count(TransmitterClass::UniversalControl);
        }
    }
    (dt, ct, udt, t0.elapsed().as_micros())
}

fn main() {
    let args = cli::parse(std::env::args().skip(1));
    let jobs = args.jobs;
    args.start_tracing();
    let t0 = Instant::now();
    println!("Ablation study over the 36 litmus programs (both engines)\n");
    println!(
        "{:<44} {:<6} {:>6} {:>6} {:>10} {:>10}",
        "configuration", "engine", "DT", "CT", "UDT+UCT", "time(us)"
    );
    println!("{}", "-".repeat(88));

    let base = || DetectorConfig {
        jobs,
        ..DetectorConfig::default()
    };
    let configs: Vec<(&str, DetectorConfig)> = vec![
        ("default (gep filter, transient-access rule)", base()),
        (
            "no addr_gep filter (more univ. candidates)",
            DetectorConfig {
                gep_filter: false,
                ..base()
            },
        ),
        (
            "universal w/ committed access allowed",
            DetectorConfig {
                universal_needs_transient_access: false,
                ..base()
            },
        ),
        (
            "window W=8 (may misclassify univ., §6.2.1)",
            DetectorConfig {
                window: 8,
                ..base()
            },
        ),
        (
            "speculation depth 2 (Fig. 2b's setting)",
            DetectorConfig {
                spec: SpeculationConfig::default().with_depth(2),
                ..base()
            },
        ),
        (
            "interference variant on (§6.1 extension)",
            DetectorConfig {
                detect_interference: true,
                ..base()
            },
        ),
    ];

    for (name, cfg) in configs {
        for engine in [EngineKind::Pht, EngineKind::Stl] {
            let (dt, ct, udt, us) = run(cfg.clone(), engine);
            println!(
                "{:<44} {:<6} {:>6} {:>6} {:>10} {:>10}",
                name,
                if engine == EngineKind::Pht {
                    "pht"
                } else {
                    "stl"
                },
                dt,
                ct,
                udt,
                us
            );
        }
    }

    println!(
        "\nReading guide: on the litmus suites, dropping the addr_gep filter\n\
         and allowing committed accesses change nothing — every intended\n\
         chain is gep-shaped with a transient access, i.e. the filters'\n\
         precision costs no true positives here (their effect shows on\n\
         pointer-heavy code such as the sigalgs gadget). Shrinking the\n\
         window or the speculation depth loses transmitters whose chains\n\
         span more instructions (depth 2 wipes out every PHT universal);\n\
         the interference variant adds the §6.1 'new DT' findings."
    );

    let summary = json::RunSummary {
        wall: t0.elapsed(),
        ..json::RunSummary::default()
    };
    println!("\n{}", summary.render());
    args.finish_tracing();
}
