//! `fuzz` — enumeration-bound and differential-sweep benchmark
//! (EXPERIMENTS.md "Differential fuzzing", `BENCH_fuzz.json`).
//!
//! Two measurements:
//!
//! 1. **Enumeration bound at fixed wall clock.** A ladder of litmus
//!    programs of growing candidate-space size is walked under four
//!    enumeration strategies — the pre-PR `materialize` baseline
//!    (`candidate_executions()` into a `Vec`, then filter), `stream`
//!    (odometer-driven `count_consistent`, no materialization),
//!    `symmetric` (canonical-orbit counting), and `parallel`
//!    (`count_consistent_par` over contiguous index ranges). Each
//!    strategy climbs until a rung exceeds the per-rung budget; its
//!    *bound* is the largest candidate count it finished in budget.
//! 2. **Differential sweep.** `lcm_fuzz::run_sweep` over `--count`
//!    seed-keyed programs; the report's totals are recorded so CI can
//!    compare mismatch/repair/minimality figures across revisions.
//!
//! ```text
//! fuzz [--jobs N] [--json PATH] [--quick] [--count N] [--seed N]
//!      [--budget-ms N]
//! ```

use std::time::{Duration, Instant};

use lcm_bench::cli;
use lcm_core::jsonw::Json;
use lcm_core::mcm::{ConsistencyModel, Sc};
use lcm_core::par::effective_jobs;
use lcm_litmus::enumerate::Litmus;

/// One ladder rung: a named litmus program.
struct Rung {
    name: String,
    litmus: Litmus,
    candidates: u128,
}

fn rung(name: String, threads: Vec<Vec<lcm_litmus::enumerate::Op>>) -> Rung {
    let litmus = Litmus::new(threads);
    let candidates = litmus.candidate_count();
    Rung {
        name,
        litmus,
        candidates,
    }
}

/// Three ladder families, each a list of rungs of growing candidate
/// space, walked independently (a strategy that times out on one
/// family still gets to climb the others):
///
/// * `sb-n` — generalized store buffering, thread `i` is
///   `W x_i; R x_{i+1 mod n}`: candidate space `2^n`. Past `n = 5`
///   the cyclic renaming group is beyond the automorphism search cap,
///   so this family measures raw streaming throughput.
/// * `chain-n` — two writes per location (`co` permutations multiply
///   in, space ~`6^n`) with an in-cap cyclic group: symmetry pays.
/// * `clique-n` — `n` *identical* threads over two shared locations:
///   the full thread-symmetric group `S_n`, the strongest pruning.
fn ladders(quick: bool) -> Vec<(&'static str, Vec<Rung>)> {
    use lcm_litmus::enumerate::Op;
    let sb_max = if quick { 12 } else { 15 };
    let sb = (2..=sb_max)
        .map(|n| {
            rung(
                format!("sb-{n}"),
                (0..n)
                    .map(|i| vec![Op::w(&format!("x{i}")), Op::r(&format!("x{}", (i + 1) % n))])
                    .collect(),
            )
        })
        .collect();
    let chain_max = if quick { 4 } else { 5 };
    let chain = (2..=chain_max)
        .map(|n| {
            rung(
                format!("chain-{n}"),
                (0..n)
                    .map(|i| {
                        vec![
                            Op::w(&format!("x{i}")),
                            Op::w(&format!("x{}", (i + 1) % n)),
                            Op::r(&format!("x{}", (i + 2) % n)),
                        ]
                    })
                    .collect(),
            )
        })
        .collect();
    let clique_max = if quick { 3 } else { 4 };
    let clique = (2..=clique_max)
        .map(|n| {
            rung(
                format!("clique-{n}"),
                (0..n)
                    .map(|_| vec![Op::w("x"), Op::w("y"), Op::r("y")])
                    .collect(),
            )
        })
        .collect();
    vec![("sb", sb), ("chain", chain), ("clique", clique)]
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Materialize,
    Stream,
    Symmetric,
    Parallel,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Materialize => "materialize",
            Mode::Stream => "stream",
            Mode::Symmetric => "symmetric",
            Mode::Parallel => "parallel",
        }
    }
}

/// Runs one rung under one strategy; returns (consistent count, secs).
fn run_rung(rung: &Rung, mode: Mode, jobs: usize) -> (u64, f64) {
    let start = Instant::now();
    let n = match mode {
        Mode::Materialize => {
            // The pre-streaming baseline: build every candidate into a
            // Vec, then filter.
            let all = rung.litmus.candidate_executions();
            all.iter().filter(|e| Sc.check(e).is_ok()).count() as u64
        }
        Mode::Stream => rung.litmus.count_consistent(&Sc),
        Mode::Symmetric => rung.litmus.count_consistent_symmetric(&Sc).total,
        Mode::Parallel => rung.litmus.count_consistent_par(&Sc, jobs),
    };
    (n, start.elapsed().as_secs_f64())
}

fn main() {
    let args = cli::parse(std::env::args().skip(1));
    let quick = args.has("--quick");
    let jobs = effective_jobs(args.jobs);
    let mut seed = 9u64;
    let mut count = if quick { 128 } else { 512 };
    let mut budget_ms = if quick { 250 } else { 2000 };
    let mut rest = args.rest.clone();
    rest.retain(|a| a != "--quick");
    let i = 0;
    while i < rest.len() {
        let take = |rest: &mut Vec<String>, i: usize, flag: &str| -> u64 {
            if i + 1 >= rest.len() {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            }
            let v = rest.remove(i + 1);
            rest.remove(i);
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} expects a number, got {v:?}");
                std::process::exit(2);
            })
        };
        match rest[i].as_str() {
            "--seed" => seed = take(&mut rest, i, "--seed"),
            "--count" => count = take(&mut rest, i, "--count") as usize,
            "--budget-ms" => budget_ms = take(&mut rest, i, "--budget-ms"),
            other => {
                eprintln!("error: unknown fuzz bench argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let budget = Duration::from_millis(budget_ms);
    let wall = Instant::now();

    // ---- Part 1: enumeration bound --------------------------------
    println!("enumeration bound (per-rung budget {budget_ms} ms, jobs {jobs}):");
    println!(
        "{:<12} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "rung", "candidates", "materialize", "stream", "symmetric", "parallel"
    );
    let modes = [
        Mode::Materialize,
        Mode::Stream,
        Mode::Symmetric,
        Mode::Parallel,
    ];
    let mut bound = [0u128; 4];
    let mut mode_rows: Vec<Vec<Json>> = vec![Vec::new(); 4];
    for (_family, ladder) in ladders(quick) {
        let mut alive = [true; 4];
        for rung in &ladder {
            let mut cells: Vec<String> = Vec::new();
            let mut counts: Vec<Option<u64>> = vec![None; 4];
            for (mi, mode) in modes.iter().enumerate() {
                if !alive[mi] {
                    cells.push("--".into());
                    continue;
                }
                let (n, secs) = run_rung(rung, *mode, jobs);
                counts[mi] = Some(n);
                mode_rows[mi].push(Json::Obj(vec![
                    ("rung".into(), Json::Str(rung.name.clone())),
                    ("candidates".into(), Json::Num(rung.candidates as f64)),
                    ("consistent".into(), Json::Num(n as f64)),
                    ("secs".into(), Json::Num(secs)),
                ]));
                cells.push(format!("{secs:.3}s"));
                if secs <= budget.as_secs_f64() {
                    bound[mi] = bound[mi].max(rung.candidates);
                } else {
                    alive[mi] = false;
                }
            }
            // All live strategies must agree on the consistent count —
            // the bench doubles as a cross-strategy differential check.
            let agreed: Vec<u64> = counts.iter().flatten().copied().collect();
            assert!(
                agreed.windows(2).all(|w| w[0] == w[1]),
                "{}: strategies disagree: {agreed:?}",
                rung.name
            );
            println!(
                "{:<12} {:>16} {:>12} {:>12} {:>12} {:>12}",
                rung.name, rung.candidates, cells[0], cells[1], cells[2], cells[3]
            );
            if !alive.iter().any(|&a| a) {
                break;
            }
        }
    }
    println!("\nbound within budget (candidate executions):");
    for (mi, mode) in modes.iter().enumerate() {
        println!("  {:<12} {}", mode.label(), bound[mi]);
    }

    // ---- Part 2: differential sweep -------------------------------
    let cfg = lcm_fuzz::FuzzConfig {
        seed,
        count,
        jobs: args.jobs,
        quick,
        ..Default::default()
    };
    let sweep_start = Instant::now();
    let report = lcm_fuzz::run_sweep(&cfg);
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    println!(
        "\nsweep: {} programs in {sweep_secs:.2}s — {} spec-leaky, {} secure, {} mismatches, \
         {}/{} repairs clean, {}/{} minimality certified",
        report.programs,
        report.spec_leaky,
        report.secure,
        report.mismatches.len(),
        report.repairs_clean,
        report.repairs_checked,
        report.minimality_certified,
        report.minimality_checked,
    );
    assert!(
        report.ok(),
        "differential sweep failed: {} mismatches, {} repair failures, {} compile failures",
        report.mismatches.len(),
        report.repair_failures.len(),
        report.compile_failures
    );

    if let Some(path) = &args.json {
        let num = |n: usize| Json::Num(n as f64);
        let enumeration = Json::Obj(
            modes
                .iter()
                .enumerate()
                .map(|(mi, mode)| {
                    (
                        mode.label().to_string(),
                        Json::Obj(vec![
                            ("bound".into(), Json::Num(bound[mi] as f64)),
                            ("rungs".into(), Json::Arr(mode_rows[mi].clone())),
                        ]),
                    )
                })
                .collect(),
        );
        let sweep = Json::Obj(vec![
            ("seed".into(), Json::Num(seed as f64)),
            ("programs".into(), num(report.programs)),
            ("secs".into(), Json::Num(sweep_secs)),
            ("arch_leaky".into(), num(report.arch_leaky)),
            ("spec_leaky".into(), num(report.spec_leaky)),
            ("secure".into(), num(report.secure)),
            (
                "engine_flagged".into(),
                Json::Arr(report.engine_flagged.iter().map(|&n| num(n)).collect()),
            ),
            ("overapprox".into(), Json::Num(report.overapprox as f64)),
            ("mismatches".into(), num(report.mismatches.len())),
            ("repairs_checked".into(), num(report.repairs_checked)),
            ("repairs_clean".into(), num(report.repairs_clean)),
            (
                "repairs_oracle_clean".into(),
                num(report.repairs_oracle_clean),
            ),
            ("minimality_checked".into(), num(report.minimality_checked)),
            (
                "minimality_certified".into(),
                num(report.minimality_certified),
            ),
        ]);
        let doc = Json::Obj(vec![
            ("bench".into(), Json::Str("fuzz".into())),
            ("jobs".into(), Json::Num(jobs as f64)),
            ("budget_ms".into(), Json::Num(budget_ms as f64)),
            (
                "wall_clock_secs".into(),
                Json::Num(wall.elapsed().as_secs_f64()),
            ),
            ("enumeration".into(), enumeration),
            ("sweep".into(), sweep),
        ]);
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("json written to {path}");
    }
}
