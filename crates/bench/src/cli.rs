//! Minimal flag parsing shared by the bench binaries (no clap).
//!
//! Every binary accepts `--jobs N` (worker threads; `0` or omitted =
//! all cores, `1` = exact serial) and most accept `--json PATH`
//! (machine-readable output next to the printed table) and
//! `--trace-out PATH` (span recording to a Chrome-trace JSON). Flags
//! the harness does not know end up in [`BenchArgs::rest`] for the
//! binary's own switches (`--quick`, `--repair`, `--big`, …).

use lcm_core::govern::Budgets;
use std::time::Duration;

/// Parsed common flags plus whatever was left over.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--jobs N`: worker threads (0 = all available cores).
    pub jobs: usize,
    /// `--json PATH`: where to write the JSON report, if requested.
    pub json: Option<String>,
    /// `--timeout-ms N`: per-function wall-clock budget (0 or omitted =
    /// unlimited).
    pub timeout_ms: u64,
    /// `--max-conflicts N`: per-function solver-conflict budget (0 or
    /// omitted = unlimited).
    pub max_conflicts: u64,
    /// `--cache-dir PATH`: directory holding the incremental result
    /// store (`results.lcmstore`); created if missing.
    pub cache_dir: Option<String>,
    /// `--no-cache`: ignore `--cache-dir` and run every analysis cold.
    pub no_cache: bool,
    /// `--trace-out PATH`: record spans and write a Chrome-trace JSON
    /// (`chrome://tracing` / Perfetto loadable) at exit.
    pub trace_out: Option<String>,
    /// `--fleet N`: run Clou analyses in N supervised worker *processes*
    /// (crash isolation; 0 or omitted = in-process).
    pub fleet: usize,
    /// `--findings-out PATH`: write a timing-free findings digest
    /// (workload/tool/counts/degradations, no durations) for byte-level
    /// comparison across runs.
    pub findings_out: Option<String>,
    /// `--metrics-out PATH`: dump the final metrics registry — fleet
    /// totals included when `--fleet` ran — as JSON at exit.
    pub metrics_out: Option<String>,
    /// `--events-out PATH`: append-only JSONL supervision event log
    /// (kills, restarts, steals, redeliveries, crash forensics); only
    /// meaningful together with `--fleet`.
    pub events_out: Option<String>,
    /// Unrecognized arguments, in order.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// `true` if a leftover flag like `--quick` is present.
    pub fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// The per-function resource budgets these flags request
    /// (unlimited when neither flag was given).
    pub fn budgets(&self) -> Budgets {
        Budgets {
            timeout: (self.timeout_ms > 0).then(|| Duration::from_millis(self.timeout_ms)),
            max_conflicts: (self.max_conflicts > 0).then_some(self.max_conflicts),
            ..Budgets::default()
        }
    }

    /// Turns span recording on when `--trace-out` was given. Call once
    /// at binary start, before the timed work.
    pub fn start_tracing(&self) {
        if self.trace_out.is_some() {
            lcm_obs::trace::enable();
        }
    }

    /// Writes the recorded trace to the `--trace-out` path, if any.
    /// Call once after the timed work; prints the destination.
    pub fn finish_tracing(&self) {
        let Some(path) = &self.trace_out else { return };
        lcm_obs::trace::disable();
        match lcm_obs::trace::export_to_file(std::path::Path::new(path)) {
            Ok(()) => println!("trace written to {path}"),
            Err(e) => eprintln!("warning: cannot write trace to {path}: {e}"),
        }
    }

    /// Writes the final state of the global metrics registry to the
    /// `--metrics-out` path, if any. Call once after the timed work —
    /// and after the fleet (if any) shut down, so worker deltas folded
    /// in by the supervisor are part of the dump.
    pub fn finish_metrics(&self) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        match std::fs::write(path, lcm_obs::metrics::global().render_json()) {
            Ok(()) => println!("metrics written to {path}"),
            Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
        }
    }

    /// Opens the result store these flags request: `--cache-dir` unless
    /// `--no-cache`. An unopenable store *warns and runs uncached* —
    /// a broken cache disk must never fail a benchmark run (the same
    /// degrade-don't-abort discipline the store itself applies to
    /// damaged records).
    pub fn open_store(&self) -> Option<lcm_store::Store> {
        if self.no_cache {
            return None;
        }
        let dir = self.cache_dir.as_deref()?;
        let path = std::path::Path::new(dir);
        let open = std::fs::create_dir_all(path)
            .and_then(|()| lcm_store::Store::open(&path.join("results.lcmstore")));
        match open {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("warning: cache at {dir} unavailable ({e}); running uncached");
                None
            }
        }
    }
}

/// Parses `--jobs N` / `--jobs=N` and `--json PATH` / `--json=PATH`
/// out of `args` (program name already stripped).
///
/// # Panics
///
/// Exits the process with a message on a malformed value — these are
/// command-line tools, not a library API.
pub fn parse(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            out.jobs = parse_jobs(v);
        } else if a == "--jobs" {
            let v = args.next().unwrap_or_else(|| die("--jobs needs a value"));
            out.jobs = parse_jobs(&v);
        } else if let Some(v) = a.strip_prefix("--json=") {
            out.json = Some(v.to_string());
        } else if a == "--json" {
            let v = args.next().unwrap_or_else(|| die("--json needs a path"));
            out.json = Some(v);
        } else if let Some(v) = a.strip_prefix("--timeout-ms=") {
            out.timeout_ms = parse_num(v, "--timeout-ms");
        } else if a == "--timeout-ms" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--timeout-ms needs a value"));
            out.timeout_ms = parse_num(&v, "--timeout-ms");
        } else if let Some(v) = a.strip_prefix("--max-conflicts=") {
            out.max_conflicts = parse_num(v, "--max-conflicts");
        } else if a == "--max-conflicts" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--max-conflicts needs a value"));
            out.max_conflicts = parse_num(&v, "--max-conflicts");
        } else if let Some(v) = a.strip_prefix("--cache-dir=") {
            out.cache_dir = Some(v.to_string());
        } else if a == "--cache-dir" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--cache-dir needs a path"));
            out.cache_dir = Some(v);
        } else if a == "--no-cache" {
            out.no_cache = true;
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            out.trace_out = Some(v.to_string());
        } else if a == "--trace-out" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--trace-out needs a path"));
            out.trace_out = Some(v);
        } else if let Some(v) = a.strip_prefix("--fleet=") {
            out.fleet = parse_fleet(v);
        } else if a == "--fleet" {
            let v = args.next().unwrap_or_else(|| die("--fleet needs a value"));
            out.fleet = parse_fleet(&v);
        } else if let Some(v) = a.strip_prefix("--findings-out=") {
            out.findings_out = Some(v.to_string());
        } else if a == "--findings-out" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--findings-out needs a path"));
            out.findings_out = Some(v);
        } else if let Some(v) = a.strip_prefix("--metrics-out=") {
            out.metrics_out = Some(v.to_string());
        } else if a == "--metrics-out" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--metrics-out needs a path"));
            out.metrics_out = Some(v);
        } else if let Some(v) = a.strip_prefix("--events-out=") {
            out.events_out = Some(v.to_string());
        } else if a == "--events-out" {
            let v = args
                .next()
                .unwrap_or_else(|| die("--events-out needs a path"));
            out.events_out = Some(v);
        } else {
            out.rest.push(a);
        }
    }
    out
}

fn parse_jobs(v: &str) -> usize {
    v.parse()
        .unwrap_or_else(|_| die(&format!("--jobs expects a number, got {v:?}")))
}

fn parse_fleet(v: &str) -> usize {
    v.parse()
        .unwrap_or_else(|_| die(&format!("--fleet expects a number, got {v:?}")))
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse()
        .unwrap_or_else(|_| die(&format!("{flag} expects a number, got {v:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> BenchArgs {
        parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_all_cores_and_no_json() {
        let a = args(&[]);
        assert_eq!(a.jobs, 0);
        assert!(a.json.is_none());
        assert!(a.rest.is_empty());
    }

    #[test]
    fn parses_both_flag_styles() {
        let a = args(&["--jobs", "4", "--json", "out.json"]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        let b = args(&["--jobs=2", "--json=x.json"]);
        assert_eq!(b.jobs, 2);
        assert_eq!(b.json.as_deref(), Some("x.json"));
    }

    #[test]
    fn budget_flags_parse_and_build_budgets() {
        let a = args(&["--timeout-ms", "500", "--max-conflicts=10000"]);
        assert_eq!(a.timeout_ms, 500);
        assert_eq!(a.max_conflicts, 10000);
        let b = a.budgets();
        assert_eq!(b.timeout, Some(Duration::from_millis(500)));
        assert_eq!(b.max_conflicts, Some(10000));
        assert_eq!(b.max_saeg_nodes, None);
        // Omitted flags mean unlimited.
        assert!(args(&[]).budgets().is_unlimited());
    }

    #[test]
    fn cache_flags_parse() {
        let a = args(&["--cache-dir", "/tmp/c", "--quick"]);
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/c"));
        assert!(!a.no_cache);
        let b = args(&["--cache-dir=/tmp/c", "--no-cache"]);
        assert_eq!(b.cache_dir.as_deref(), Some("/tmp/c"));
        assert!(b.no_cache);
        // `--no-cache` wins: no store is opened even with a dir given.
        assert!(b.open_store().is_none());
        // No flags at all: no store.
        assert!(args(&[]).open_store().is_none());
    }

    #[test]
    fn trace_out_parses_both_styles() {
        assert_eq!(
            args(&["--trace-out", "t.json"]).trace_out.as_deref(),
            Some("t.json")
        );
        assert_eq!(
            args(&["--trace-out=t.json"]).trace_out.as_deref(),
            Some("t.json")
        );
        assert!(args(&[]).trace_out.is_none());
    }

    #[test]
    fn fleet_and_findings_out_parse_both_styles() {
        let a = args(&["--fleet", "4", "--findings-out", "f.txt"]);
        assert_eq!(a.fleet, 4);
        assert_eq!(a.findings_out.as_deref(), Some("f.txt"));
        let b = args(&["--fleet=2", "--findings-out=g.txt"]);
        assert_eq!(b.fleet, 2);
        assert_eq!(b.findings_out.as_deref(), Some("g.txt"));
        // Defaults: in-process, no digest.
        assert_eq!(args(&[]).fleet, 0);
        assert!(args(&[]).findings_out.is_none());
    }

    #[test]
    fn metrics_and_events_out_parse_both_styles() {
        let a = args(&["--metrics-out", "m.json", "--events-out", "e.jsonl"]);
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(a.events_out.as_deref(), Some("e.jsonl"));
        let b = args(&["--metrics-out=m.json", "--events-out=e.jsonl"]);
        assert_eq!(b.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(b.events_out.as_deref(), Some("e.jsonl"));
        assert!(args(&[]).metrics_out.is_none());
        assert!(args(&[]).events_out.is_none());
        // No `--metrics-out`: finish_metrics is a no-op.
        args(&[]).finish_metrics();
    }

    #[test]
    fn unknown_flags_pass_through_in_order() {
        let a = args(&["--quick", "--jobs", "1", "--repair"]);
        assert_eq!(a.jobs, 1);
        assert_eq!(a.rest, vec!["--quick", "--repair"]);
        assert!(a.has("--quick"));
        assert!(!a.has("--big"));
    }
}
