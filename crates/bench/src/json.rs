//! Hand-rolled JSON for the `BENCH_*.json` trajectory files (no serde,
//! per the DESIGN.md §6 dependency policy). String escaping is the
//! workspace-wide [`lcm_core::jsonw::esc`] — one implementation shared
//! with the store metadata and the serve wire protocol.
//!
//! The schema is deliberately flat: a top-level object with run
//! metadata (`bench`, `jobs`, `wall_clock_secs`), the row/point arrays,
//! and the module-wide phase breakdown, so successive PRs can diff
//! runtimes without a JSON library on either side.

use std::time::Duration;

use lcm_core::jsonw::esc;
use lcm_detect::PhaseTimings;
use lcm_store::CacheCounts;

use crate::{Fig8Point, Table2Row};

fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// The human-readable summary block every bench binary prints after its
/// table: wall clock, phase breakdown, cache traffic, the process
/// metrics registry as one JSON line, and the degraded list. One
/// renderer (backed by `lcm-obs`) instead of a hand-rolled block per
/// binary, so the lines grep the same everywhere.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// End-to-end wall clock of the run.
    pub wall: Duration,
    /// Module-wide phase breakdown (table2); `None` skips the line.
    pub phases: Option<PhaseTimings>,
    /// Cache traffic; `None` (no store) skips the line.
    pub cache: Option<CacheCounts>,
    /// Store detail for the cache line: `(entries, loaded, recovered_drop)`.
    pub store: Option<(usize, u64, u64)>,
    /// Degraded analyses as `(label, reason)`; empty prints nothing.
    pub degraded: Vec<(String, String)>,
    /// What a degraded entry bounds (e.g. `"findings"`, `"points"`).
    pub degraded_noun: &'static str,
}

impl RunSummary {
    /// Renders the block (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = format!("wall clock: {:.3?}", self.wall);
        if let Some(p) = &self.phases {
            out.push_str(&format!("\nphase breakdown: {}", p.render()));
        }
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "\ncache: hits={} misses={} bypassed={}",
                c.hits, c.misses, c.bypassed
            ));
            if let Some((entries, loaded, recovered)) = self.store {
                out.push_str(&format!(
                    " (store: {entries} entries, {loaded} loaded, {recovered} dropped by recovery)"
                ));
            }
        }
        out.push_str(&format!(
            "\nmetrics: {}",
            lcm_obs::metrics::global().render_json()
        ));
        if !self.degraded.is_empty() {
            let noun = if self.degraded_noun.is_empty() {
                "findings"
            } else {
                self.degraded_noun
            };
            out.push_str(&format!(
                "\n\nDEGRADED analyses ({noun} are a lower bound):"
            ));
            for (label, reason) in &self.degraded {
                out.push_str(&format!("\n  {label}: {reason}"));
            }
        }
        out
    }
}

fn timings_obj(t: &PhaseTimings) -> String {
    format!(
        "{{\"acfg_build_secs\": {}, \"saeg_build_secs\": {}, \"encode_secs\": {}, \"solve_secs\": {}, \"classify_secs\": {}, \"baseline_secs\": {}, \"bh_enumerate_secs\": {}, \"bh_execute_secs\": {}, \"bh_witness_secs\": {}, \"cache_secs\": {}, \"other_secs\": {}, \"sat_queries\": {}, \"memo_hits\": {}, \"queries_avoided\": {}, \"prefilter_hits\": {}, \"solver_reuses\": {}, \"clauses_retained\": {}, \"cache_hits\": {}}}",
        secs(t.acfg_build),
        secs(t.saeg_build),
        secs(t.encode),
        secs(t.solve),
        secs(t.classify),
        secs(t.baseline),
        secs(t.bh_enumerate),
        secs(t.bh_execute),
        secs(t.bh_witness),
        secs(t.cache),
        secs(t.other),
        t.sat_queries,
        t.memo_hits,
        t.queries_avoided,
        t.prefilter_hits,
        t.solver_reuses,
        t.clauses_retained,
        t.cache_hits,
    )
}

/// The per-row / top-level cache-traffic object.
fn cache_obj(c: &CacheCounts) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"bypassed\": {}}}",
        c.hits, c.misses, c.bypassed
    )
}

/// The per-row `degraded` array: `{"function", "reason"}` objects.
fn degraded_list(entries: &[(String, String)]) -> String {
    entries
        .iter()
        .map(|(f, r)| {
            format!(
                "{{\"function\": \"{}\", \"reason\": \"{}\"}}",
                esc(f),
                esc(r)
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Serializes a `table2` run. `wall_clock` is the end-to-end time of
/// computing the rows (the parallel-speedup measure; the per-row `time`
/// fields sum *per-function* runtimes and so stay roughly constant
/// across `jobs` settings).
pub fn table2_json(rows: &[Table2Row], jobs: usize, wall_clock: Duration) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"table2\",\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"wall_clock_secs\": {},\n", secs(wall_clock)));
    let mut total = PhaseTimings::default();
    for r in rows {
        total.merge(&r.timings);
    }
    // The breakdown sums to wall clock: whatever the phase clocks did
    // not attribute lands in `other_secs`.
    total.fill_other(wall_clock);
    s.push_str(&format!("  \"phase_timings\": {},\n", timings_obj(&total)));
    let mut cache = CacheCounts::default();
    for r in rows {
        cache.merge(r.cache);
    }
    s.push_str(&format!("  \"cache\": {},\n", cache_obj(&cache)));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"tool\": \"{}\", \"pfun\": {}, \"loc\": {}, \"time_secs\": {}, \"dt\": {}, \"ct\": {}, \"udt\": {}, \"uct\": {}, \"status\": \"{}\", \"cache\": {}, \"degraded\": [{}]}}{}\n",
            esc(&r.workload),
            esc(r.tool.name()),
            r.pfun,
            r.loc,
            secs(r.time),
            r.counts.0,
            r.counts.1,
            r.counts.2,
            r.counts.3,
            if r.degraded.is_empty() {
                "completed"
            } else {
                "degraded"
            },
            cache_obj(&r.cache),
            degraded_list(&r.degraded),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Serializes a `fig8` run.
pub fn fig8_json(points: &[Fig8Point], jobs: usize, wall_clock: Duration) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig8\",\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"wall_clock_secs\": {},\n", secs(wall_clock)));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"function\": \"{}\", \"size\": {}, \"pht_secs\": {}, \"stl_secs\": {}, \"status\": \"{}\", \"cache\": \"{}\", \"degraded\": {}}}{}\n",
            esc(&p.function),
            p.size,
            secs(p.pht_time),
            secs(p.stl_time),
            if p.degraded.is_none() {
                "completed"
            } else {
                "degraded"
            },
            p.cache.label(),
            p.degraded
                .as_deref()
                .map_or_else(|| "null".to_string(), |d| format!("\"{}\"", esc(d))),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tool;

    fn row(workload: &str) -> Table2Row {
        Table2Row {
            workload: workload.to_string(),
            pfun: 2,
            loc: 40,
            tool: Tool::ClouPht,
            time: Duration::from_millis(12),
            counts: (1, 2, 3, 4),
            timings: PhaseTimings::default(),
            degraded: Vec::new(),
            cache: CacheCounts::default(),
        }
    }

    #[test]
    fn table2_json_is_well_formed() {
        let s = table2_json(
            &[row("litmus-pht"), row("cr\"ypto")],
            4,
            Duration::from_secs(1),
        );
        assert!(s.contains("\"bench\": \"table2\""));
        assert!(s.contains("\"jobs\": 4"));
        assert!(s.contains("\"wall_clock_secs\": 1.000000"));
        assert!(s.contains("cr\\\"ypto"), "quotes escaped: {s}");
        // Line-ending `},` occurrences: the phase_timings line, the
        // top-level cache line, and the comma between the two rows —
        // none after the last row.
        assert_eq!(s.matches("}},\n").count() + s.matches("},\n").count(), 3);
        assert!(balanced(&s), "balanced braces/brackets: {s}");
    }

    #[test]
    fn fig8_json_is_well_formed() {
        let p = Fig8Point {
            function: "synth_fn_000".into(),
            size: 7,
            pht_time: Duration::from_millis(3),
            stl_time: Duration::from_millis(5),
            degraded: None,
            cache: lcm_detect::CacheStatus::Bypass,
        };
        let s = fig8_json(&[p], 1, Duration::from_millis(8));
        assert!(s.contains("\"bench\": \"fig8\""));
        assert!(s.contains("\"size\": 7"));
        assert!(s.contains("\"pht_secs\": 0.003000"));
        assert!(s.contains("\"status\": \"completed\""));
        assert!(s.contains("\"degraded\": null"));
        assert!(balanced(&s));
    }

    #[test]
    fn degraded_entries_serialize() {
        let mut r = row("litmus-pht");
        r.degraded
            .push(("victim_1".to_string(), "timeout (budget 5 ms)".to_string()));
        let s = table2_json(&[r], 1, Duration::from_secs(1));
        assert!(s.contains("\"status\": \"degraded\""));
        assert!(s.contains("\"function\": \"victim_1\""));
        assert!(s.contains("\"reason\": \"timeout (budget 5 ms)\""));
        assert!(balanced(&s), "balanced: {s}");

        let p = Fig8Point {
            function: "f".into(),
            size: 0,
            pht_time: Duration::ZERO,
            stl_time: Duration::ZERO,
            degraded: Some("worker panic: boom".into()),
            cache: lcm_detect::CacheStatus::Bypass,
        };
        let s = fig8_json(&[p], 1, Duration::from_millis(1));
        assert!(s.contains("\"degraded\": \"worker panic: boom\""));
        assert!(balanced(&s), "balanced: {s}");
    }

    /// Brace/bracket balance outside string literals — a cheap
    /// well-formedness check with no JSON parser in the tree.
    fn balanced(s: &str) -> bool {
        let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }
}
