//! Shared harness for regenerating the paper's tables and figures.
//!
//! * [`table2_rows`] computes the Table 2 analogue: per workload × tool,
//!   serial runtime and transmitter counts (DT/CT/UDT/UCT for Clou, a
//!   flat count for the Binsec/Haunted-style baseline);
//! * [`fig8_series`] computes the Fig. 8 analogue: per public function of
//!   the synthetic library, S-AEG node count vs serial runtime for both
//!   Clou engines.
//!
//! The binaries `table2` and `fig8` print these; the criterion benches
//! measure the same computations.
//!
//! Every entry point takes a `jobs` knob (0 = all cores, 1 = exact
//! serial) threaded down to [`lcm_core::par::map_indexed`]; results are
//! independent of the thread count. [`cli`] parses the shared `--jobs` /
//! `--json` flags and [`json`] hand-rolls the `BENCH_*.json` output.

pub mod cli;
pub mod json;

use std::time::Duration;

use lcm_aeg::Saeg;
use lcm_core::govern::Budgets;
use lcm_core::taxonomy::TransmitterClass;
use lcm_corpus::synth::{synthetic_library, SynthConfig};
use lcm_corpus::{all_litmus, crypto, Bench};
use lcm_detect::{Detector, DetectorConfig, EngineKind, FunctionStatus, PhaseTimings};
use lcm_haunted::{HauntedConfig, HauntedEngine};
use lcm_ir::Module;

/// Which tool produced a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// This repository's LCM-based detector, PHT engine.
    ClouPht,
    /// LCM-based detector, STL engine.
    ClouStl,
    /// Baseline, PHT mode.
    BhPht,
    /// Baseline, STL mode.
    BhStl,
}

impl Tool {
    /// Display name matching the paper's Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Tool::ClouPht => "Clou-pht",
            Tool::ClouStl => "Clou-stl",
            Tool::BhPht => "bh-pht",
            Tool::BhStl => "bh-stl",
        }
    }
}

/// One row of the Table 2 analogue.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name (e.g. `"litmus-pht"`).
    pub workload: String,
    /// Number of public functions analyzed.
    pub pfun: usize,
    /// Total scheduled-instruction count (LoC proxy).
    pub loc: usize,
    /// Tool.
    pub tool: Tool,
    /// Serial runtime.
    pub time: Duration,
    /// `(DT, CT, UDT, UCT)` for Clou tools; `(bugs, 0, 0, 0)` for BH.
    pub counts: (usize, usize, usize, usize),
    /// Phase breakdown (Clou tools only; zero for BH rows).
    pub timings: PhaseTimings,
    /// Functions whose analysis was cut short, as `(function, reason)`.
    /// Their findings still count toward `counts` as a lower bound.
    pub degraded: Vec<(String, String)>,
}

impl Table2Row {
    /// Total findings.
    pub fn total(&self) -> usize {
        self.counts.0 + self.counts.1 + self.counts.2 + self.counts.3
    }
}

fn run_clou(
    workload: &str,
    module: &Module,
    engine: EngineKind,
    jobs: usize,
    budgets: Budgets,
) -> Table2Row {
    let det = Detector::new(DetectorConfig {
        jobs,
        budgets,
        ..DetectorConfig::default()
    });
    let report = det.analyze_module(module, engine);
    let degraded = report
        .degraded()
        .map(|f| {
            let reason = f
                .status
                .error()
                .map_or_else(String::new, ToString::to_string);
            (f.name.clone(), reason)
        })
        .collect();
    Table2Row {
        workload: workload.to_string(),
        pfun: module.public_functions().count(),
        loc: module.total_scheduled(),
        tool: if engine == EngineKind::Pht {
            Tool::ClouPht
        } else {
            Tool::ClouStl
        },
        time: report.total_runtime(),
        counts: (
            report.count(TransmitterClass::Data),
            report.count(TransmitterClass::Control),
            report.count(TransmitterClass::UniversalData),
            report.count(TransmitterClass::UniversalControl),
        ),
        timings: report.timings(),
        degraded,
    }
}

fn run_bh(workload: &str, module: &Module, engine: HauntedEngine, jobs: usize) -> Table2Row {
    let report = lcm_haunted::analyze_module(
        module,
        engine,
        HauntedConfig {
            jobs,
            ..HauntedConfig::default()
        },
    );
    Table2Row {
        workload: workload.to_string(),
        pfun: module.public_functions().count(),
        loc: module.total_scheduled(),
        tool: if engine == HauntedEngine::Pht {
            Tool::BhPht
        } else {
            Tool::BhStl
        },
        time: report.total_runtime(),
        counts: (report.total_leaks(), 0, 0, 0),
        timings: PhaseTimings {
            baseline: report.total_runtime(),
            ..PhaseTimings::default()
        },
        degraded: report
            .functions
            .iter()
            .filter_map(|f| f.degraded.as_ref().map(|d| (f.name.clone(), d.clone())))
            .collect(),
    }
}

/// Merges a suite of single-program benches into one module per bench and
/// aggregates rows (litmus suites are analyzed per program, like the
/// paper's per-file runs). With `jobs > 1` the benches of a suite run on
/// worker threads; aggregation order (and thus every aggregate) is
/// unchanged.
pub fn suite_rows(
    workload: &str,
    benches: &[Bench],
    jobs: usize,
    budgets: Budgets,
) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = Vec::new();
    for tool in [Tool::ClouPht, Tool::ClouStl, Tool::BhPht, Tool::BhStl] {
        let mut acc = Table2Row {
            workload: workload.to_string(),
            pfun: 0,
            loc: 0,
            tool,
            time: Duration::ZERO,
            counts: (0, 0, 0, 0),
            timings: PhaseTimings::default(),
            degraded: Vec::new(),
        };
        // Suites are many small single-function programs: parallelize
        // across benches (inner analysis stays serial per module).
        let per_bench = lcm_core::par::map_indexed(benches, jobs, |_, bench| {
            let m = bench.module();
            match tool {
                Tool::ClouPht => run_clou(workload, &m, EngineKind::Pht, 1, budgets),
                Tool::ClouStl => run_clou(workload, &m, EngineKind::Stl, 1, budgets),
                Tool::BhPht => run_bh(workload, &m, HauntedEngine::Pht, 1),
                Tool::BhStl => run_bh(workload, &m, HauntedEngine::Stl, 1),
            }
        });
        for row in per_bench {
            acc.pfun += row.pfun;
            acc.loc += row.loc;
            acc.time += row.time;
            acc.counts.0 += row.counts.0;
            acc.counts.1 += row.counts.1;
            acc.counts.2 += row.counts.2;
            acc.counts.3 += row.counts.3;
            acc.timings.merge(&row.timings);
            acc.degraded.extend(row.degraded);
        }
        rows.push(acc);
    }
    rows
}

/// Computes every row of the Table 2 analogue.
///
/// `quick` skips the two synthetic-library workloads (used by the
/// criterion bench to keep iterations short). `jobs` is the worker
/// thread count (0 = all cores, 1 = serial); rows are identical either
/// way.
pub fn table2_rows(quick: bool, jobs: usize, budgets: Budgets) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for (suite, benches) in all_litmus() {
        rows.extend(suite_rows(suite, &benches, jobs, budgets));
    }
    for bench in crypto::all_crypto() {
        rows.extend(suite_rows(
            bench.name,
            std::slice::from_ref(&bench),
            jobs,
            budgets,
        ));
    }
    if !quick {
        for (name, cfg) in [
            ("libsodium(synth)", SynthConfig::libsodium_scale()),
            ("openssl(synth)", SynthConfig::openssl_scale()),
        ] {
            let (src, _) = synthetic_library(cfg);
            let m = lcm_minic::compile(&src).expect("synthetic library compiles");
            rows.push(run_clou(name, &m, EngineKind::Pht, jobs, budgets));
            rows.push(run_clou(name, &m, EngineKind::Stl, jobs, budgets));
            rows.push(run_bh(name, &m, HauntedEngine::Pht, jobs));
            rows.push(run_bh(name, &m, HauntedEngine::Stl, jobs));
        }
    }
    rows
}

/// Renders rows as the paper-style text table.
pub fn render_table2(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<20} {:>5} {:>7}  {:<10} {:>10}  {:>6} {:>6} {:>6} {:>6}",
        "App (PFun/LoC)", "PFun", "LoC", "Tool", "Time", "DT", "CT", "UDT", "UCT"
    );
    let _ = writeln!(s, "{}", "-".repeat(92));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:>5} {:>7}  {:<10} {:>9.3?}  {:>6} {:>6} {:>6} {:>6}",
            r.workload,
            r.pfun,
            r.loc,
            r.tool.name(),
            r.time,
            r.counts.0,
            r.counts.1,
            r.counts.2,
            r.counts.3
        );
    }
    s
}

/// One point of the Fig. 8 analogue.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Function name.
    pub function: String,
    /// S-AEG node count.
    pub size: usize,
    /// PHT-engine serial runtime.
    pub pht_time: Duration,
    /// STL-engine serial runtime.
    pub stl_time: Duration,
    /// `Some(reason)` when either engine's analysis was cut short (the
    /// point's times/counts are then a lower bound).
    pub degraded: Option<String>,
}

/// Reason string for a degraded point, labelled by engine.
fn fig8_degraded(pht: &FunctionStatus, stl: &FunctionStatus) -> Option<String> {
    let mut parts = Vec::new();
    if let Some(e) = pht.error() {
        parts.push(format!("pht: {e}"));
    }
    if let Some(e) = stl.error() {
        parts.push(format!("stl: {e}"));
    }
    (!parts.is_empty()).then(|| parts.join("; "))
}

/// Computes the Fig. 8 scatter over the synthetic library.
///
/// Each function's S-AEG is built **once** and both engines run over it
/// (the engines only differ in the speculation primitive they consider,
/// so the graph is shared). Functions fan out over `jobs` workers; a
/// worker that panics or trips a budget degrades only its own point.
pub fn fig8_series(cfg: SynthConfig, jobs: usize, budgets: Budgets) -> Vec<Fig8Point> {
    let (src, _) = synthetic_library(cfg);
    let m = lcm_minic::compile(&src).expect("synthetic library compiles");
    let det = Detector::new(DetectorConfig {
        budgets,
        ..DetectorConfig::default()
    });
    let names: Vec<String> = m.public_functions().map(|f| f.name.clone()).collect();
    let faults = det.config().faults.merged_with_env();
    let per_fn = lcm_core::par::map_indexed_catch(&names, jobs, |i, name| {
        if faults.fires(lcm_core::fault::site::WORKER_PANIC, i) {
            panic!("injected fault: worker_panic in function {i} (`{name}`)");
        }
        let acfg = match lcm_ir::acfg::build_acfg(&m, name) {
            Ok(a) => a,
            Err(e) => {
                return Fig8Point {
                    function: name.clone(),
                    size: 0,
                    pht_time: Duration::ZERO,
                    stl_time: Duration::ZERO,
                    degraded: Some(format!("malformed IR: {e}")),
                }
            }
        };
        let saeg = Saeg::from_acfg(name, acfg, det.config().spec);
        let pht = det.analyze_saeg_report_at(&m, &saeg, EngineKind::Pht, i);
        let stl = det.analyze_saeg_report_at(&m, &saeg, EngineKind::Stl, i);
        Fig8Point {
            function: name.clone(),
            size: saeg.events.len(),
            pht_time: pht.runtime,
            stl_time: stl.runtime,
            degraded: fig8_degraded(&pht.status, &stl.status),
        }
    });
    let mut out: Vec<Fig8Point> = per_fn
        .into_iter()
        .zip(&names)
        .map(|(r, name)| match r {
            Ok(p) => p,
            Err(message) => Fig8Point {
                function: name.clone(),
                size: 0,
                pht_time: Duration::ZERO,
                stl_time: Duration::ZERO,
                degraded: Some(format!("worker panic: {message}")),
            },
        })
        .collect();
    out.sort_by_key(|p| p.size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litmus_rows_have_all_tools() {
        // Restricted to the litmus suites: fast enough under the debug
        // profile. The crypto + synthetic workloads run in the binaries
        // and criterion benches (release profile).
        let mut rows = Vec::new();
        for (suite, benches) in all_litmus() {
            rows.extend(suite_rows(suite, &benches, 1, Budgets::default()));
        }
        assert_eq!(rows.len(), 4 * 4);
        assert!(
            rows.iter().all(|r| r.degraded.is_empty()),
            "unlimited budgets must not degrade anything"
        );
        let pht_row = rows
            .iter()
            .find(|r| r.workload == "litmus-pht" && r.tool == Tool::ClouPht)
            .unwrap();
        assert!(
            pht_row.counts.2 >= 14,
            "one UDT per PHT program at least: {:?}",
            pht_row.counts
        );
        let rendered = render_table2(&rows);
        assert!(rendered.contains("Clou-pht"));
        assert!(rendered.contains("bh-stl"));
        assert!(rendered.contains("litmus-fwd"));
    }
}
