//! Shared harness for regenerating the paper's tables and figures.
//!
//! * [`table2_rows`] computes the Table 2 analogue: per workload × tool,
//!   serial runtime and transmitter counts (DT/CT/UDT/UCT for Clou, a
//!   flat count for the Binsec/Haunted-style baseline);
//! * [`fig8_series`] computes the Fig. 8 analogue: per public function of
//!   the synthetic library, S-AEG node count vs serial runtime for both
//!   Clou engines.
//!
//! The binaries `table2` and `fig8` print these; the criterion benches
//! measure the same computations.
//!
//! Every entry point takes a `jobs` knob (0 = all cores, 1 = exact
//! serial) threaded down to [`lcm_core::par::map_indexed`]; results are
//! independent of the thread count. [`cli`] parses the shared `--jobs` /
//! `--json` flags and [`json`] renders the `BENCH_*.json` output through
//! `lcm_core::jsonw`.
//!
//! Every entry point also takes an optional [`Store`] (`--cache-dir` on
//! the binaries): with one, per-function results are served from the
//! content-addressed cache when the function, engine, and
//! findings-affecting config are unchanged, and engines only run on
//! misses. A warm re-run over an unchanged corpus performs zero engine
//! analyses; rows carry per-row [`CacheCounts`] so both the table and
//! the JSON make the short-circuit visible.

pub mod cli;
pub mod json;
pub mod trace;

use std::time::Duration;

use lcm_aeg::Saeg;
use lcm_core::govern::Budgets;
use lcm_core::taxonomy::TransmitterClass;
use lcm_corpus::synth::{synthetic_library, SynthConfig};
use lcm_corpus::{all_litmus, crypto, Bench};
use lcm_detect::{CacheStatus, Detector, DetectorConfig, EngineKind, FunctionStatus, PhaseTimings};
use lcm_fleet::Fleet;
use lcm_haunted::{HauntedConfig, HauntedEngine};
use lcm_ir::Module;
use lcm_store::{CacheCounts, Store};

/// Which tool produced a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// This repository's LCM-based detector, PHT engine.
    ClouPht,
    /// LCM-based detector, STL engine.
    ClouStl,
    /// Baseline, PHT mode.
    BhPht,
    /// Baseline, STL mode.
    BhStl,
}

impl Tool {
    /// Display name matching the paper's Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Tool::ClouPht => "Clou-pht",
            Tool::ClouStl => "Clou-stl",
            Tool::BhPht => "bh-pht",
            Tool::BhStl => "bh-stl",
        }
    }
}

/// One row of the Table 2 analogue.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name (e.g. `"litmus-pht"`).
    pub workload: String,
    /// Number of public functions analyzed.
    pub pfun: usize,
    /// Total scheduled-instruction count (LoC proxy).
    pub loc: usize,
    /// Tool.
    pub tool: Tool,
    /// Serial runtime.
    pub time: Duration,
    /// `(DT, CT, UDT, UCT)` for Clou tools; `(bugs, 0, 0, 0)` for BH.
    pub counts: (usize, usize, usize, usize),
    /// Phase breakdown (Clou tools only; zero for BH rows).
    pub timings: PhaseTimings,
    /// Functions whose analysis was cut short, as `(function, reason)`.
    /// Their findings still count toward `counts` as a lower bound.
    pub degraded: Vec<(String, String)>,
    /// How this row's functions interacted with the result cache
    /// (all-bypass when no store was configured).
    pub cache: CacheCounts,
}

impl Table2Row {
    /// Total findings.
    pub fn total(&self) -> usize {
        self.counts.0 + self.counts.1 + self.counts.2 + self.counts.3
    }
}

fn run_clou(
    workload: &str,
    source: &str,
    module: &Module,
    engine: EngineKind,
    jobs: usize,
    budgets: Budgets,
    store: Option<&Store>,
    fleet: Option<&Fleet>,
) -> Table2Row {
    let det = Detector::new(DetectorConfig {
        jobs,
        budgets,
        ..DetectorConfig::default()
    });
    let report = match (fleet, store) {
        // Process-level parallelism: the fleet ships `source` to its
        // workers and applies the identical cache discipline itself.
        (Some(fleet), store) => fleet.analyze_module(source, module, engine, det.config(), store),
        (None, Some(store)) => lcm_store::analyze_module_cached(&det, module, engine, store),
        (None, None) => det.analyze_module(module, engine),
    };
    let cache = CacheCounts::of(&report);
    let degraded = report
        .degraded()
        .map(|f| {
            let reason = f
                .status
                .error()
                .map_or_else(String::new, ToString::to_string);
            (f.name.clone(), reason)
        })
        .collect();
    Table2Row {
        workload: workload.to_string(),
        pfun: module.public_functions().count(),
        loc: module.total_scheduled(),
        tool: if engine == EngineKind::Pht {
            Tool::ClouPht
        } else {
            Tool::ClouStl
        },
        time: report.total_runtime(),
        counts: (
            report.count(TransmitterClass::Data),
            report.count(TransmitterClass::Control),
            report.count(TransmitterClass::UniversalData),
            report.count(TransmitterClass::UniversalControl),
        ),
        timings: report.timings(),
        degraded,
        cache,
    }
}

fn run_bh(
    workload: &str,
    module: &Module,
    engine: HauntedEngine,
    jobs: usize,
    store: Option<&Store>,
) -> Table2Row {
    let config = HauntedConfig {
        jobs,
        ..HauntedConfig::default()
    };
    let (report, cache) = match store {
        Some(store) => lcm_store::analyze_module_bh_cached(module, engine, config, store),
        None => {
            let report = lcm_haunted::analyze_module(module, engine, config);
            let cache = CacheCounts {
                bypassed: report.functions.len() as u64,
                ..CacheCounts::default()
            };
            (report, cache)
        }
    };
    Table2Row {
        workload: workload.to_string(),
        pfun: module.public_functions().count(),
        loc: module.total_scheduled(),
        tool: if engine == HauntedEngine::Pht {
            Tool::BhPht
        } else {
            Tool::BhStl
        },
        time: report.total_runtime(),
        counts: (report.total_leaks(), 0, 0, 0),
        timings: {
            let sum = |f: fn(&lcm_haunted::HauntedReport) -> std::time::Duration| {
                report.functions.iter().map(f).sum::<std::time::Duration>()
            };
            let (enu, exe, wit) = (
                sum(|r| r.t_enumerate),
                sum(|r| r.t_execute),
                sum(|r| r.t_witness),
            );
            PhaseTimings {
                // `baseline` keeps only the remainder the three
                // sub-phases don't account for (setup, merge).
                baseline: report.total_runtime().saturating_sub(enu + exe + wit),
                bh_enumerate: enu,
                bh_execute: exe,
                bh_witness: wit,
                ..PhaseTimings::default()
            }
        },
        degraded: report
            .functions
            .iter()
            .filter_map(|f| f.degraded.as_ref().map(|d| (f.name.clone(), d.clone())))
            .collect(),
        cache,
    }
}

/// Merges a suite of single-program benches into one module per bench and
/// aggregates rows (litmus suites are analyzed per program, like the
/// paper's per-file runs). With `jobs > 1` the benches of a suite run on
/// worker threads; aggregation order (and thus every aggregate) is
/// unchanged.
pub fn suite_rows(
    workload: &str,
    benches: &[Bench],
    jobs: usize,
    budgets: Budgets,
    store: Option<&Store>,
    fleet: Option<&Fleet>,
) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = Vec::new();
    for tool in [Tool::ClouPht, Tool::ClouStl, Tool::BhPht, Tool::BhStl] {
        let mut acc = Table2Row {
            workload: workload.to_string(),
            pfun: 0,
            loc: 0,
            tool,
            time: Duration::ZERO,
            counts: (0, 0, 0, 0),
            timings: PhaseTimings::default(),
            degraded: Vec::new(),
            cache: CacheCounts::default(),
        };
        // Suites are many small single-function programs: parallelize
        // across benches (inner analysis stays serial per module). With
        // a fleet the parallelism is process-level instead — the outer
        // loop goes serial so modules reach the supervisor in order.
        let outer_jobs = if fleet.is_some() { 1 } else { jobs };
        let per_bench = lcm_core::par::map_indexed(benches, outer_jobs, |_, bench| {
            let m = bench.module();
            let src = &bench.source;
            match tool {
                Tool::ClouPht => {
                    run_clou(workload, src, &m, EngineKind::Pht, 1, budgets, store, fleet)
                }
                Tool::ClouStl => {
                    run_clou(workload, src, &m, EngineKind::Stl, 1, budgets, store, fleet)
                }
                Tool::BhPht => run_bh(workload, &m, HauntedEngine::Pht, 1, store),
                Tool::BhStl => run_bh(workload, &m, HauntedEngine::Stl, 1, store),
            }
        });
        for row in per_bench {
            acc.pfun += row.pfun;
            acc.loc += row.loc;
            acc.time += row.time;
            acc.counts.0 += row.counts.0;
            acc.counts.1 += row.counts.1;
            acc.counts.2 += row.counts.2;
            acc.counts.3 += row.counts.3;
            acc.timings.merge(&row.timings);
            acc.degraded.extend(row.degraded);
            acc.cache.merge(row.cache);
        }
        rows.push(acc);
    }
    rows
}

/// Computes every row of the Table 2 analogue.
///
/// `quick` skips the two synthetic-library workloads (used by the
/// criterion bench to keep iterations short). `jobs` is the worker
/// thread count (0 = all cores, 1 = serial); rows are identical either
/// way.
pub fn table2_rows(
    quick: bool,
    jobs: usize,
    budgets: Budgets,
    store: Option<&Store>,
    fleet: Option<&Fleet>,
) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for (suite, benches) in all_litmus() {
        rows.extend(suite_rows(suite, &benches, jobs, budgets, store, fleet));
    }
    for bench in crypto::all_crypto() {
        rows.extend(suite_rows(
            bench.name,
            std::slice::from_ref(&bench),
            jobs,
            budgets,
            store,
            fleet,
        ));
    }
    if !quick {
        for (name, cfg) in [
            ("libsodium(synth)", SynthConfig::libsodium_scale()),
            ("openssl(synth)", SynthConfig::openssl_scale()),
        ] {
            let (src, _) = synthetic_library(cfg);
            let m = lcm_minic::compile(&src).expect("synthetic library compiles");
            let pht = run_clou(name, &src, &m, EngineKind::Pht, jobs, budgets, store, fleet);
            rows.push(pht);
            let stl = run_clou(name, &src, &m, EngineKind::Stl, jobs, budgets, store, fleet);
            rows.push(stl);
            rows.push(run_bh(name, &m, HauntedEngine::Pht, jobs, store));
            rows.push(run_bh(name, &m, HauntedEngine::Stl, jobs, store));
        }
    }
    rows
}

/// Renders `rows` as a timing-free findings digest: one line per row
/// with workload, tool, function/LoC counts, the four finding counts,
/// and every degradation (function + reason). Runtimes are the one
/// field that varies run to run, so this digest is byte-identical
/// between any two runs that found the same things — CI diffs it
/// across in-process vs `--fleet N` runs and across armed fault sites.
pub fn findings_digest(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in rows {
        let _ = write!(
            s,
            "{}|{}|pfun={}|loc={}|dt={}|ct={}|udt={}|uct={}",
            r.workload,
            r.tool.name(),
            r.pfun,
            r.loc,
            r.counts.0,
            r.counts.1,
            r.counts.2,
            r.counts.3
        );
        for (func, reason) in &r.degraded {
            let _ = write!(s, "|degraded:{func}={reason}");
        }
        s.push('\n');
    }
    s
}

/// Renders rows as the paper-style text table.
pub fn render_table2(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<20} {:>5} {:>7}  {:<10} {:>10}  {:>6} {:>6} {:>6} {:>6}",
        "App (PFun/LoC)", "PFun", "LoC", "Tool", "Time", "DT", "CT", "UDT", "UCT"
    );
    let _ = writeln!(s, "{}", "-".repeat(92));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:>5} {:>7}  {:<10} {:>9.3?}  {:>6} {:>6} {:>6} {:>6}",
            r.workload,
            r.pfun,
            r.loc,
            r.tool.name(),
            r.time,
            r.counts.0,
            r.counts.1,
            r.counts.2,
            r.counts.3
        );
    }
    s
}

/// One point of the Fig. 8 analogue.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Function name.
    pub function: String,
    /// S-AEG node count.
    pub size: usize,
    /// PHT-engine serial runtime.
    pub pht_time: Duration,
    /// STL-engine serial runtime.
    pub stl_time: Duration,
    /// `Some(reason)` when either engine's analysis was cut short (the
    /// point's times/counts are then a lower bound).
    pub degraded: Option<String>,
    /// `Hit` when *both* engines' results came from the store, `Miss`
    /// when they ran and were inserted, `Bypass` with no store.
    pub cache: CacheStatus,
}

/// Reason string for a degraded point, labelled by engine.
fn fig8_degraded(pht: &FunctionStatus, stl: &FunctionStatus) -> Option<String> {
    let mut parts = Vec::new();
    if let Some(e) = pht.error() {
        parts.push(format!("pht: {e}"));
    }
    if let Some(e) = stl.error() {
        parts.push(format!("stl: {e}"));
    }
    (!parts.is_empty()).then(|| parts.join("; "))
}

/// Computes the Fig. 8 scatter over the synthetic library.
///
/// Each function's S-AEG is built **once** and both engines run over it
/// (the engines only differ in the speculation primitive they consider,
/// so the graph is shared). Functions fan out over `jobs` workers; a
/// worker that panics or trips a budget degrades only its own point.
pub fn fig8_series(
    cfg: SynthConfig,
    jobs: usize,
    budgets: Budgets,
    store: Option<&Store>,
) -> Vec<Fig8Point> {
    let (src, _) = synthetic_library(cfg);
    let m = lcm_minic::compile(&src).expect("synthetic library compiles");
    let det = Detector::new(DetectorConfig {
        budgets,
        ..DetectorConfig::default()
    });
    let names: Vec<String> = m.public_functions().map(|f| f.name.clone()).collect();
    let faults = det.config().faults.merged_with_env();
    let per_fn = lcm_core::par::map_indexed_catch(&names, jobs, |i, name| {
        if faults.fires(lcm_core::fault::site::WORKER_PANIC, i) {
            panic!("injected fault: worker_panic in function {i} (`{name}`)");
        }
        // Both engines' fingerprints: a point is only a hit when the
        // store answers for *both* (they share one S-AEG build, so a
        // half-hit saves nothing — the graph gets built regardless).
        let fps = store.map(|_| {
            (
                lcm_store::clou_fingerprint(&m, name, det.config(), EngineKind::Pht),
                lcm_store::clou_fingerprint(&m, name, det.config(), EngineKind::Stl),
            )
        });
        if let (Some(store), Some((fp_pht, fp_stl))) = (store, fps) {
            let t0 = std::time::Instant::now();
            if let Some(pht) = store.lookup_clou(fp_pht) {
                let pht_time = t0.elapsed();
                let t1 = std::time::Instant::now();
                if store.lookup_clou(fp_stl).is_some() {
                    return Fig8Point {
                        function: name.clone(),
                        size: pht.saeg_size,
                        pht_time,
                        stl_time: t1.elapsed(),
                        degraded: None,
                        cache: CacheStatus::Hit,
                    };
                }
            }
        }
        let acfg = match lcm_ir::acfg::build_acfg(&m, name) {
            Ok(a) => a,
            Err(e) => {
                return Fig8Point {
                    function: name.clone(),
                    size: 0,
                    pht_time: Duration::ZERO,
                    stl_time: Duration::ZERO,
                    degraded: Some(format!("malformed IR: {e}")),
                    cache: CacheStatus::Bypass,
                }
            }
        };
        let saeg = Saeg::from_acfg(name, acfg, det.config().spec);
        let mut pht = det.analyze_saeg_report_at(&m, &saeg, EngineKind::Pht, i);
        let mut stl = det.analyze_saeg_report_at(&m, &saeg, EngineKind::Stl, i);
        let cache = match (store, fps) {
            (Some(store), Some((fp_pht, fp_stl))) => {
                // Degraded results are never stored (their findings are
                // a lower bound, not the answer).
                if pht.status.is_completed() {
                    pht.cache = CacheStatus::Miss;
                    store.insert_clou(fp_pht, &pht);
                }
                if stl.status.is_completed() {
                    stl.cache = CacheStatus::Miss;
                    store.insert_clou(fp_stl, &stl);
                }
                CacheStatus::Miss
            }
            _ => CacheStatus::Bypass,
        };
        Fig8Point {
            function: name.clone(),
            size: saeg.events.len(),
            pht_time: pht.runtime,
            stl_time: stl.runtime,
            degraded: fig8_degraded(&pht.status, &stl.status),
            cache,
        }
    });
    let mut out: Vec<Fig8Point> = per_fn
        .into_iter()
        .zip(&names)
        .map(|(r, name)| match r {
            Ok(p) => p,
            Err(message) => Fig8Point {
                function: name.clone(),
                size: 0,
                pht_time: Duration::ZERO,
                stl_time: Duration::ZERO,
                degraded: Some(format!("worker panic: {message}")),
                cache: CacheStatus::Bypass,
            },
        })
        .collect();
    out.sort_by_key(|p| p.size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litmus_rows_have_all_tools() {
        // Restricted to the litmus suites: fast enough under the debug
        // profile. The crypto + synthetic workloads run in the binaries
        // and criterion benches (release profile).
        let mut rows = Vec::new();
        for (suite, benches) in all_litmus() {
            rows.extend(suite_rows(
                suite,
                &benches,
                1,
                Budgets::default(),
                None,
                None,
            ));
        }
        assert_eq!(rows.len(), 4 * 4);
        assert!(
            rows.iter().all(|r| r.degraded.is_empty()),
            "unlimited budgets must not degrade anything"
        );
        let pht_row = rows
            .iter()
            .find(|r| r.workload == "litmus-pht" && r.tool == Tool::ClouPht)
            .unwrap();
        assert!(
            pht_row.counts.2 >= 14,
            "one UDT per PHT program at least: {:?}",
            pht_row.counts
        );
        let rendered = render_table2(&rows);
        assert!(rendered.contains("Clou-pht"));
        assert!(rendered.contains("bh-stl"));
        assert!(rendered.contains("litmus-fwd"));
    }

    #[test]
    fn warm_suite_rows_are_all_hits_with_identical_counts() {
        let path = std::env::temp_dir().join(format!(
            "lcm-bench-warm-{}-{:?}.lcmstore",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();
        let store = Store::open(&path).unwrap();
        // One suite keeps the debug-profile cost down; the full-corpus
        // differential runs in CI against the release binaries.
        let (suite, benches) = &all_litmus()[0];
        let cold = suite_rows(suite, benches, 1, Budgets::default(), Some(&store), None);
        let warm = suite_rows(suite, benches, 1, Budgets::default(), Some(&store), None);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.cache.hits, 0, "{}: cold run cannot hit", c.workload);
            assert_eq!(c.cache.bypassed, 0, "{}: everything cacheable", c.workload);
            assert_eq!(
                w.cache,
                CacheCounts {
                    hits: c.cache.misses,
                    misses: 0,
                    bypassed: 0
                },
                "{} [{}]: warm run must be all hits",
                w.workload,
                w.tool.name()
            );
            // Findings identical across the hit/miss boundary.
            assert_eq!(c.counts, w.counts);
            assert_eq!(c.pfun, w.pfun);
        }
        // Warm Clou rows never ran an engine: zero SAT queries, zero
        // graph builds — the cache bucket is the only phase with time.
        let warm_clou = &warm[0];
        assert_eq!(warm_clou.timings.sat_queries, 0);
        assert_eq!(warm_clou.timings.cache_hits as usize, warm_clou.pfun);
        std::fs::remove_file(&path).ok();
    }
}
