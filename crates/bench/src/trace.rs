//! Shape validation for Chrome `trace_event` JSON.
//!
//! `lcm-obs` writes traces but (deliberately) carries no JSON parser;
//! this module closes the loop using [`lcm_core::jsonw`]. CI runs the
//! `tracecheck` binary over the artifact `table2 --quick --trace-out`
//! produced; the tier-1 `obs` test validates an in-process export the
//! same way.
//!
//! Checks enforced — the invariants Perfetto / `chrome://tracing`
//! need to reconstruct span nesting:
//!
//! * top level is an object with a `traceEvents` array;
//! * every event has `ph` (`"B"`, `"E"`, or metadata `"M"`), numeric
//!   `ts`/`pid`/`tid`, and string `name`/`cat`;
//! * per `(pid, tid)` lane, timestamps are monotone non-decreasing in
//!   array order — in a merged multi-process trace this is what proves
//!   worker timestamps were re-based onto the supervisor's clock
//!   consistently (a bad offset shows up as time running backwards or
//!   an end preceding its begin);
//! * per `(pid, tid)` lane, `B`/`E` events balance like a well-nested
//!   call stack, each `E` matching the name of the innermost open `B`
//!   and never predating it (no overlapping re-based spans).
//!
//! `"M"` metadata records (process names in multi-process traces) are
//! shape-checked but exempt from the stack and clock invariants.

use std::collections::{HashMap, HashSet};

use lcm_core::jsonw::{self, Json};

/// What a valid trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events.
    pub events: usize,
    /// Begin events (== end events, or validation failed).
    pub spans: usize,
    /// Distinct `(pid, tid)` threads.
    pub threads: usize,
    /// Distinct processes. `> 1` means a merged fleet trace.
    pub processes: usize,
    /// Deepest nesting observed on any thread.
    pub max_depth: usize,
}

/// Validates one Chrome-trace document. Returns the stats on success,
/// or a message naming the first violated invariant.
///
/// # Errors
///
/// Any parse failure or shape violation, as a human-readable string.
pub fn validate(doc: &str) -> Result<TraceStats, String> {
    let v = jsonw::parse(doc.trim()).map_err(|e| format!("not JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;

    // Per-thread open-span stack of (name, begin ts) and last timestamp.
    let mut stacks: HashMap<(u64, u64), Vec<(String, f64)>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut pids: HashSet<u64> = HashSet::new();
    let mut spans = 0usize;
    let mut max_depth = 0usize;

    for (i, e) in events.iter().enumerate() {
        let field_str = |k: &str| {
            e.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("event {i}: missing string `{k}`"))
        };
        let field_num = |k: &str| {
            e.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("event {i}: missing numeric `{k}`"))
        };
        let ph = field_str("ph")?;
        let name = field_str("name")?;
        field_str("cat")?;
        let ts = field_num("ts")?;
        let pid = field_num("pid")? as u64;
        let key = (pid, field_num("tid")? as u64);
        pids.insert(pid);

        if ph == "M" {
            // Metadata (process names in merged fleet traces): shape
            // already checked above; exempt from clock/stack rules —
            // `ts` is fixed at 0 regardless of where it sits in the
            // array, and it opens no span.
            continue;
        }

        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): timestamp {ts} < {prev} on thread {key:?}"
                ));
            }
        }
        last_ts.insert(key, ts);

        let stack = stacks.entry(key).or_default();
        match ph.as_str() {
            "B" => {
                spans += 1;
                stack.push((name, ts));
                max_depth = max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some((open, begin)) if open == name => {
                    if ts < begin {
                        return Err(format!(
                            "event {i}: span `{name}` ends at {ts}, before its begin at \
                             {begin} — overlapping or badly re-based span"
                        ));
                    }
                }
                Some((open, _)) => {
                    return Err(format!(
                        "event {i}: end `{name}` does not match open span `{open}`"
                    ));
                }
                None => return Err(format!("event {i}: end `{name}` with no open span")),
            },
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }

    for (key, stack) in &stacks {
        if let Some((open, _)) = stack.last() {
            return Err(format!("thread {key:?}: span `{open}` never ended"));
        }
    }

    Ok(TraceStats {
        events: events.len(),
        spans,
        threads: stacks.len(),
        processes: pids.len(),
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pev(ph: &str, ts: u64, pid: u64, tid: u64, name: &str) -> String {
        format!(
            "{{\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"cat\":\"t\"}}"
        )
    }

    fn ev(ph: &str, ts: u64, tid: u64, name: &str) -> String {
        pev(ph, ts, 1, tid, name)
    }

    fn doc(events: &[String]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn accepts_balanced_nested_multithreaded() {
        let d = doc(&[
            ev("B", 1, 1, "outer"),
            ev("B", 2, 1, "inner"),
            ev("B", 2, 2, "worker"),
            ev("E", 3, 1, "inner"),
            ev("E", 4, 2, "worker"),
            ev("E", 5, 1, "outer"),
        ]);
        let s = validate(&d).unwrap();
        assert_eq!(s.events, 6);
        assert_eq!(s.spans, 3);
        assert_eq!(s.threads, 2);
        assert_eq!(s.processes, 1);
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn accepts_merged_multi_process_trace_with_metadata() {
        // A merged fleet trace: supervisor (pid 1) plus two worker
        // lanes, with "M" process-name records at ts 0 sitting *after*
        // later-timestamped events — exactly how the exporter emits
        // them — which must not trip the monotone-clock check.
        let meta = |pid: u64, name: &str| {
            format!(
                "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"cat\":\"__metadata\",\"args\":{{\"name\":\"{name}\"}}}}"
            )
        };
        let d = doc(&[
            pev("B", 10, 1, 1, "fleet_module"),
            pev("E", 90, 1, 1, "fleet_module"),
            meta(1, "lcm-supervisor"),
            meta(7, "lcm-worker-7"),
            meta(8, "lcm-worker-8"),
            pev("B", 20, 7, 1, "task"),
            pev("E", 40, 7, 1, "task"),
            pev("B", 25, 8, 1, "task"),
            pev("E", 45, 8, 1, "task"),
        ]);
        let s = validate(&d).unwrap();
        assert_eq!(s.events, 9);
        assert_eq!(s.spans, 3);
        assert_eq!(s.processes, 3);
        assert_eq!(s.threads, 3);

        // Same tid on different pids is two independent lanes: their
        // interleaved clocks must not be compared against each other.
        let d = doc(&[
            pev("B", 100, 7, 1, "task"),
            pev("B", 5, 8, 1, "task"),
            pev("E", 110, 7, 1, "task"),
            pev("E", 6, 8, 1, "task"),
        ]);
        assert!(validate(&d).is_ok());

        // A span whose end precedes its begin (a bad re-base offset)
        // is rejected even when array order hides it from the simple
        // monotonicity check on its own.
        let d = doc(&[pev("B", 50, 7, 1, "task"), pev("E", 30, 7, 1, "task")]);
        assert!(validate(&d).unwrap_err().contains("timestamp"));
    }

    #[test]
    fn rejects_shape_violations() {
        // Unbalanced: begin without end.
        let d = doc(&[ev("B", 1, 1, "a")]);
        assert!(validate(&d).unwrap_err().contains("never ended"));
        // End without begin.
        let d = doc(&[ev("E", 1, 1, "a")]);
        assert!(validate(&d).unwrap_err().contains("no open span"));
        // Misnested.
        let d = doc(&[
            ev("B", 1, 1, "a"),
            ev("B", 2, 1, "b"),
            ev("E", 3, 1, "a"),
            ev("E", 4, 1, "b"),
        ]);
        assert!(validate(&d).unwrap_err().contains("does not match"));
        // Time going backwards on one thread.
        let d = doc(&[ev("B", 5, 1, "a"), ev("E", 4, 1, "a")]);
        assert!(validate(&d).unwrap_err().contains("timestamp"));
        // Interleaved threads may each be monotone independently.
        let d = doc(&[
            ev("B", 9, 1, "a"),
            ev("B", 1, 2, "b"),
            ev("E", 10, 1, "a"),
            ev("E", 2, 2, "b"),
        ]);
        assert!(validate(&d).is_ok());
        // Not JSON at all.
        assert!(validate("nope").is_err());
        assert!(validate("{}").unwrap_err().contains("traceEvents"));
    }

    #[test]
    fn validates_a_real_lcm_obs_export() {
        lcm_obs::trace::enable();
        {
            let mut s = lcm_obs::span("outer", "test");
            s.arg_str("fn", "f");
            let _inner = lcm_obs::span("inner", "test");
        }
        lcm_obs::trace::disable();
        let doc = lcm_obs::trace::export_chrome_trace();
        let stats = validate(&doc).unwrap();
        assert!(stats.spans >= 2);
        assert!(stats.max_depth >= 2);
    }
}
