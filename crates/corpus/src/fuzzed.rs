//! Regression programs folded in from the differential fuzz harness
//! (`lcm-fuzz`, DESIGN.md §6i).
//!
//! Each entry is a shrunk representative of one gadget family from the
//! fuzz generator's grammar, with its ground truth confirmed by the
//! speculative reference oracle (two-run non-interference) *and* the
//! matching engine. They are deliberately **not** part of
//! [`crate::all_litmus`]: the 56-row paper suite stays byte-identical;
//! these are a separate suite consumed by the fuzz regression tests and
//! CI's corpus-regression step.

use crate::{Bench, Intended};

/// The shared global environment of the fuzz generator (`lcm_fuzz::gen`).
const GLOBALS: &str =
    "int pub_a[16]; int pub_b[512]; int sec_key[8]; int scratch[8]; int guard; int temp;";

fn bench(name: &'static str, body: &str, intended: Intended) -> Bench {
    Bench {
        name,
        source: format!("{GLOBALS}\nvoid victim(int x, int y) {{\n{body}}}\n"),
        intended,
    }
}

/// Fuzz-derived regression suite.
pub fn fuzz_regressions() -> Vec<Bench> {
    vec![
        // Bounds-checked double load: the guard global is zero, so the
        // access is architecturally dead; misprediction leaks pub_a[x]
        // (which reaches sec_key for the right x) through the transmit
        // address.
        bench(
            "fz-pht",
            "    if (x < guard) {\n        temp &= pub_b[(pub_a[x]) * 64];\n    }\n",
            Intended::PhtUdt,
        ),
        // Same shape, fence at the head of the guarded side: the window
        // is squashed before the loads.
        bench(
            "fz-pht-fence",
            "    if (x < guard) {\n        lfence();\n        temp &= pub_b[(pub_a[x]) * 64];\n    }\n",
            Intended::Secure,
        ),
        // Same shape with a masked inner index: semantically secure; the
        // engines still flag it (documented masking false positive,
        // matching stl06/stl12 in the paper suite).
        bench(
            "fz-pht-mask",
            "    if (x < guard) {\n        temp &= pub_b[(pub_a[(x) & 15]) * 64];\n    }\n",
            Intended::Secure,
        ),
        // Overwrite a secret slot, then reload it: a bypassing load reads
        // the stale secret (Spectre v4).
        bench(
            "fz-stl",
            "    sec_key[(x) & 7] = 0;\n    temp &= pub_b[(sec_key[(x) & 7]) * 64];\n",
            Intended::StlLeak,
        ),
        // Fence between store and reload drains the store buffer first.
        bench(
            "fz-stl-fence",
            "    sec_key[(x) & 7] = 0;\n    lfence();\n    temp &= pub_b[(sec_key[(x) & 7]) * 64];\n",
            Intended::Secure,
        ),
        // The public twin of fz-stl: the stale value is public zero, so
        // the oracle proves it secure; engines over-approximate.
        bench(
            "fz-stl-pub",
            "    scratch[(x) & 7] = y;\n    temp &= pub_b[(scratch[(x) & 7]) * 64];\n",
            Intended::Secure,
        ),
        // Park a secret in scratch[0], transmit scratch[1]: predictive
        // store forwarding across the address mismatch leaks the secret.
        bench(
            "fz-psf",
            "    scratch[0] = sec_key[(x) & 7];\n    scratch[1] = 0;\n    temp &= pub_b[(scratch[1]) * 64];\n",
            Intended::PsfLeak,
        ),
        // Fenced variant: no store is forwardable across the fence.
        bench(
            "fz-psf-fence",
            "    scratch[0] = sec_key[(x) & 7];\n    scratch[1] = 0;\n    lfence();\n    temp &= pub_b[(scratch[1]) * 64];\n",
            Intended::Secure,
        ),
        // Architectural secret-indexed lookup: a classic non-transient
        // leak, outside the Spectre engines' threat model.
        bench(
            "fz-arch",
            "    temp &= pub_b[(sec_key[(x) & 7]) * 64];\n",
            Intended::NonTransientLeak,
        ),
        // Public-only control: stores and loads over public state.
        bench(
            "fz-secure",
            "    scratch[(y) & 7] = x;\n    temp &= pub_b[(pub_a[(y) & 15]) * 8];\n",
            Intended::Secure,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressions_compile_and_have_unique_names() {
        let benches = fuzz_regressions();
        let mut names: Vec<&str> = benches.iter().map(|b| b.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        for b in &benches {
            let m = b.module();
            assert!(m.function("victim").is_some(), "{}", b.name);
            let (_, sec) = m.global("sec_key").expect("secret global");
            assert!(sec.secret, "{}: sec_key must be secret", b.name);
        }
    }

    #[test]
    fn regressions_stay_out_of_the_paper_suites() {
        let litmus: Vec<&str> = crate::all_litmus()
            .iter()
            .flat_map(|(_, bs)| bs.iter().map(|b| b.name).collect::<Vec<_>>())
            .collect();
        for b in fuzz_regressions() {
            assert!(
                !litmus.contains(&b.name),
                "{} leaked into the pinned 56-row suite",
                b.name
            );
        }
    }
}
