//! The evaluation corpus of §6: Spectre litmus suites, crypto-library
//! stand-ins, and a synthetic library generator.
//!
//! | paper workload | here |
//! |---|---|
//! | litmus-pht (15, Kocher) | [`litmus_pht`] |
//! | litmus-stl (14, Binsec/Haunted) | [`litmus_stl`] |
//! | litmus-fwd (5, Spectre v1.1) | [`litmus_fwd`] |
//! | litmus-new (2, the paper's own) | [`litmus_new`] |
//! | tea | [`crypto::tea`] |
//! | donna / secretbox / ssl3-digest / mee-cbc | [`crypto`] kernels |
//! | libsodium / OpenSSL | [`synth::synthetic_library`] |
//!
//! Every benchmark carries ground-truth annotations (`intended`) so the
//! harness can compute detection agreement, not just raw counts.

pub mod crypto;
pub mod fuzzed;
pub mod synth;

mod suites;

pub use fuzzed::fuzz_regressions;
pub use suites::{litmus_fwd, litmus_new, litmus_pht, litmus_stl};

use lcm_ir::Module;

/// What kind of leak a benchmark is intended to contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intended {
    /// A universal data transmitter reachable via control-flow speculation.
    PhtUdt,
    /// Data/control leakage via control-flow speculation (non-universal).
    PhtDt,
    /// Leakage via store-to-load forwarding.
    StlLeak,
    /// Leakage via predictive store forwarding across an address
    /// mismatch (the PSF engine's primitive; used by the fuzz-derived
    /// regression suite).
    PsfLeak,
    /// Intended to be secure.
    Secure,
    /// No speculative leakage, but classic *non-transient* leakage
    /// (secret-indexed table lookups): invisible to the Spectre engines,
    /// caught by dynamic trace-level LCM analysis (`lcm_aeg::trace`).
    NonTransientLeak,
    /// Labelled secure by the original benchmark authors but actually
    /// vulnerable (the STL13 case of §6.1).
    MislabelledSecure,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Benchmark id, e.g. `"pht01"`.
    pub name: &'static str,
    /// Mini-C source.
    pub source: String,
    /// Ground truth.
    pub intended: Intended,
}

impl Bench {
    /// Compiles the benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to compile (a corpus bug).
    pub fn module(&self) -> Module {
        lcm_minic::compile(&self.source)
            .unwrap_or_else(|e| panic!("corpus bench {} failed to compile: {e}", self.name))
    }
}

/// All four litmus suites, in paper order.
pub fn all_litmus() -> Vec<(&'static str, Vec<Bench>)> {
    vec![
        ("litmus-pht", litmus_pht()),
        ("litmus-stl", litmus_stl()),
        ("litmus-fwd", litmus_fwd()),
        ("litmus-new", litmus_new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bench_compiles() {
        for (suite, benches) in all_litmus() {
            for b in benches {
                let m = b.module();
                assert!(
                    m.public_functions().count() >= 1,
                    "{suite}/{} has no public function",
                    b.name
                );
            }
        }
    }

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(litmus_pht().len(), 15);
        assert_eq!(litmus_stl().len(), 14);
        assert_eq!(litmus_fwd().len(), 5);
        assert_eq!(litmus_new().len(), 2);
    }

    #[test]
    fn every_bench_executes_under_the_interpreter() {
        use lcm_ir::interp::Machine;
        // Each program must run for in-bounds inputs without errors —
        // they are real programs, not just analysis fodder.
        for (suite, benches) in all_litmus() {
            for b in benches {
                let m = b.module();
                let public: Vec<String> = m.public_functions().map(|f| f.name.clone()).collect();
                for fname in public {
                    let arity = m.function(&fname).unwrap().params.len();
                    // Pointer parameters need real addresses; give them a
                    // global's base. Others get a small in-bounds index.
                    let args: Vec<i64> = m
                        .function(&fname)
                        .unwrap()
                        .params
                        .iter()
                        .map(|(_, ty)| match ty {
                            lcm_ir::Ty::Ptr => 1i64 << 32, // first global
                            lcm_ir::Ty::Int => 1,
                        })
                        .collect();
                    assert_eq!(args.len(), arity);
                    let mut mach = Machine::new(&m);
                    mach.call(&fname, &args, 1_000_000).unwrap_or_else(|e| {
                        panic!("{suite}/{}::{fname} failed to run: {e}", b.name)
                    });
                }
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_litmus()
            .iter()
            .flat_map(|(_, bs)| bs.iter().map(|b| b.name).collect::<Vec<_>>())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
