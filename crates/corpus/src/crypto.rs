//! Crypto-library stand-ins (§6.2).
//!
//! The paper analyzes tea, curve25519-donna, libsodium's secretbox, and
//! OpenSSL's ssl3-digest / mee-cbc. tea is small enough to carry verbatim;
//! for the others we provide representative kernels with the same leakage-
//! relevant structure (constant-time arithmetic ladders, table lookups,
//! length-dependent branches, and the `SSL_get_shared_sigalgs` gadget of
//! Listing 1). See DESIGN.md for the substitution argument.

use crate::{Bench, Intended};

/// TEA encryption (Wheeler & Needham), one 32-round block. Constant-time:
/// no secret-dependent branches or indices — intended clean under both
/// engines (Table 2: Clou reports 0/0; BH's 4 stl hits were stack-
/// protector artifacts absent at IR level).
pub fn tea() -> Bench {
    Bench {
        name: "tea",
        intended: Intended::Secure,
        source: r#"
        uint32_t tea_v[2]; uint32_t tea_k[4];
        void tea_encrypt(void) {
            uint32_t v0 = tea_v[0];
            uint32_t v1 = tea_v[1];
            uint32_t sum = 0;
            uint32_t delta = 2654435769;
            int i;
            for (i = 0; i < 32; i += 1) {
                sum += delta;
                v0 += ((v1 << 4) + tea_k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + tea_k[1]);
                v1 += ((v0 << 4) + tea_k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + tea_k[3]);
            }
            tea_v[0] = v0;
            tea_v[1] = v1;
        }
        void tea_decrypt(void) {
            uint32_t v0 = tea_v[0];
            uint32_t v1 = tea_v[1];
            uint32_t delta = 2654435769;
            uint32_t sum = delta << 5;
            int i;
            for (i = 0; i < 32; i += 1) {
                v1 -= ((v0 << 4) + tea_k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + tea_k[3]);
                v0 -= ((v1 << 4) + tea_k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + tea_k[1]);
                sum -= delta;
            }
            tea_v[0] = v0;
            tea_v[1] = v1;
        }
        "#
        .to_string(),
    }
}

/// A curve25519-donna-style kernel: a wide constant-time multiply-reduce
/// ladder over field element limbs. Large, loop-heavy, branch-free.
pub fn donna_like() -> Bench {
    Bench {
        name: "donna",
        intended: Intended::Secure,
        source: r#"
        uint64_t fe_in1[10]; uint64_t fe_in2[10]; uint64_t fe_out[19]; uint64_t fe_red[10];
        void fe_mul(void) {
            int i; int j;
            for (i = 0; i < 19; i += 1)
                fe_out[i] = 0;
            for (i = 0; i < 10; i += 1) {
                for (j = 0; j < 10; j += 1) {
                    fe_out[i + j] += fe_in1[i] * fe_in2[j];
                }
            }
            for (i = 0; i < 9; i += 1)
                fe_out[i] += 19 * fe_out[i + 10];
            for (i = 0; i < 10; i += 1)
                fe_red[i] = fe_out[i] & 67108863;
        }
        void fe_square(void) {
            int i;
            for (i = 0; i < 10; i += 1)
                fe_in2[i] = fe_in1[i];
            fe_mul();
        }
        void fe_cswap(uint64_t swap) {
            int i;
            uint64_t mask = 0 - swap;
            for (i = 0; i < 10; i += 1) {
                uint64_t x = mask & (fe_in1[i] ^ fe_in2[i]);
                fe_in1[i] ^= x;
                fe_in2[i] ^= x;
            }
        }
        "#
        .to_string(),
    }
}

/// A secretbox-style kernel: xor keystream application plus a poly-style
/// accumulation — branch-free, index-safe.
pub fn secretbox_like() -> Bench {
    Bench {
        name: "secretbox",
        intended: Intended::Secure,
        source: r#"
        uint8_t sb_msg[64]; uint8_t sb_stream[64]; uint8_t sb_ct[64];
        uint64_t sb_acc[4]; uint64_t sb_r[4];
        void secretbox_seal(int mlen) {
            int i;
            for (i = 0; i < 64; i += 1) {
                if (i < mlen)
                    sb_ct[i] = sb_msg[i] ^ sb_stream[i];
            }
            for (i = 0; i < 4; i += 1)
                sb_acc[i] = (sb_acc[i] + sb_ct[i]) * sb_r[i];
        }
        "#
        .to_string(),
    }
}

/// An ssl3-digest-style kernel: table-driven digest with a
/// length-dependent tail — contains an attacker-length-indexed table
/// lookup under a bounds check (a PHT-reachable pattern).
pub fn ssl3_digest_like() -> Bench {
    Bench {
        name: "ssl3-digest",
        intended: Intended::PhtDt,
        source: r#"
        uint32_t dg_state[8]; uint8_t dg_buf[128]; uint32_t dg_table[256]; int dg_len;
        void digest_update(int n) {
            int i;
            if (n < dg_len) {
                for (i = 0; i < n; i += 1) {
                    dg_state[i & 7] += dg_table[dg_buf[i]];
                    dg_state[i & 7] = (dg_state[i & 7] << 7) ^ (dg_state[i & 7] >> 3);
                }
            }
        }
        void digest_final(int pad) {
            int i;
            if (pad < 128) {
                dg_buf[pad] = 128;
                for (i = pad + 1; i < 128; i += 1)
                    dg_buf[i] = 0;
            }
            digest_update(128);
        }
        "#
        .to_string(),
    }
}

/// A mee-cbc-style kernel: CBC decrypt plus MAC-then-encode padding
/// checks — branches on decrypted (secret-adjacent) data.
pub fn mee_cbc_like() -> Bench {
    Bench {
        name: "mee-cbc",
        intended: Intended::PhtDt,
        source: r#"
        uint8_t cb_ct[64]; uint8_t cb_pt[64]; uint8_t cb_iv[16];
        uint8_t cb_mac[16]; uint32_t cb_tbl[256]; int cb_good;
        void mee_decrypt(int len) {
            int i;
            for (i = 0; i < 16; i += 1)
                cb_pt[i] = cb_tbl[cb_ct[i]] ^ cb_iv[i];
            for (i = 16; i < 64; i += 1) {
                if (i < len)
                    cb_pt[i] = cb_tbl[cb_ct[i]] ^ cb_ct[i - 16];
            }
        }
        void mee_check_pad(int len) {
            int pad = cb_pt[len - 1];
            if (pad < 16) {
                int i;
                cb_good = 1;
                for (i = 0; i < pad; i += 1) {
                    if (cb_pt[len - 1 - i] != pad)
                        cb_good = 0;
                }
            } else {
                cb_good = 0;
            }
        }
        "#
        .to_string(),
    }
}

/// The `SSL_get_shared_sigalgs` gadget of Listing 1: a bounds check on an
/// attacker-controlled index guards a load of a pointer which is then
/// dereferenced — the speculative dereference leaks the loaded secret
/// (the most severe vulnerability Clou found).
pub fn sigalgs_gadget() -> Bench {
    Bench {
        name: "sigalgs",
        intended: Intended::PhtUdt,
        source: r#"
        int *shared_sigalgs[32];
        int shared_sigalgs_len;
        int out_hash; int out_sig;
        int get_shared_sigalgs(int idx) {
            int *shsigalgs;
            if (idx < 0 || idx >= shared_sigalgs_len)
                return 0;
            shsigalgs = shared_sigalgs[idx];
            out_hash = shsigalgs[0];
            out_sig = shsigalgs[1];
            return shared_sigalgs_len;
        }
        "#
        .to_string(),
    }
}

/// An AES-style T-table round: straight-line (no speculation primitive),
/// but the table index mixes in the secret key — the canonical
/// *non-transient* cache leak. The Spectre engines report no universal
/// leakage here; dynamic trace-level analysis flags the data
/// transmitters (§7's remark that LCMs are not limited to transient
/// execution).
pub fn aes_ttable_like() -> Bench {
    Bench {
        name: "aes-ttable",
        intended: Intended::NonTransientLeak,
        source: r#"
        uint32_t te0[256]; uint32_t te1[256]; uint32_t te2[256]; uint32_t te3[256];
        uint32_t sec_rk[4]; uint32_t st[4]; uint32_t ot[4];
        void aes_round(void) {
            ot[0] = te0[(st[0] ^ sec_rk[0]) & 255]
                  ^ te1[((st[1] ^ sec_rk[1]) >> 8) & 255];
            ot[1] = te2[(st[2] ^ sec_rk[2]) & 255]
                  ^ te3[((st[3] ^ sec_rk[3]) >> 8) & 255];
        }
        "#
        .to_string(),
    }
}

/// A chacha20-style quarter-round kernel: add-rotate-xor only, fully
/// constant-time. The index parameters are `register`-qualified: at
/// `-O0`, spilled index parameters would otherwise make every state
/// access a (public-data) DT at trace level — the taxonomy classifies by
/// dataflow shape, not secrecy.
pub fn chacha_like() -> Bench {
    Bench {
        name: "chacha",
        intended: Intended::Secure,
        source: r#"
        uint32_t cc_state[16];
        void quarter(register int ai, register int bi, register int ci, register int di) {
            uint32_t a = cc_state[ai & 15];
            uint32_t b = cc_state[bi & 15];
            uint32_t c = cc_state[ci & 15];
            uint32_t d = cc_state[di & 15];
            a += b; d ^= a; d = (d << 16) | (d >> 16);
            c += d; b ^= c; b = (b << 12) | (b >> 20);
            a += b; d ^= a; d = (d << 8) | (d >> 24);
            c += d; b ^= c; b = (b << 7) | (b >> 25);
            cc_state[ai & 15] = a;
            cc_state[bi & 15] = b;
            cc_state[ci & 15] = c;
            cc_state[di & 15] = d;
        }
        void double_round(void) {
            quarter(0, 4, 8, 12);
            quarter(1, 5, 9, 13);
            quarter(2, 6, 10, 14);
            quarter(3, 7, 11, 15);
            quarter(0, 5, 10, 15);
            quarter(1, 6, 11, 12);
            quarter(2, 7, 8, 13);
            quarter(3, 4, 9, 14);
        }
        "#
        .to_string(),
    }
}

/// All crypto stand-ins.
pub fn all_crypto() -> Vec<Bench> {
    vec![
        tea(),
        donna_like(),
        secretbox_like(),
        ssl3_digest_like(),
        mee_cbc_like(),
        sigalgs_gadget(),
        aes_ttable_like(),
        chacha_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::interp::{InterpOutcome, Machine};

    #[test]
    fn all_crypto_compiles() {
        for b in all_crypto() {
            let m = b.module();
            assert!(m.public_functions().count() >= 1, "{}", b.name);
        }
    }

    #[test]
    fn tea_roundtrip_encrypt_decrypt() {
        let bench = tea();
        let m = bench.module();
        let mut mach = Machine::new(&m);
        mach.set_global("tea_v", 0, 0x0123_4567);
        mach.set_global("tea_v", 1, 0x89ab_cdef);
        for (i, k) in [1u32, 2, 3, 4].iter().enumerate() {
            mach.set_global("tea_k", i as u32, i64::from(*k));
        }
        let r = mach.call("tea_encrypt", &[], 1_000_000).unwrap();
        assert_eq!(r, InterpOutcome::Returned(None));
        let c0 = mach.get_global("tea_v", 0);
        assert_ne!(c0, 0x0123_4567, "ciphertext differs from plaintext");
        let r = mach.call("tea_decrypt", &[], 1_000_000).unwrap();
        assert_eq!(r, InterpOutcome::Returned(None));
        // Note: mini-C words are i64 while TEA is defined over u32; the
        // encrypt/decrypt pair still inverts exactly because all ops are
        // ring operations (add/sub/xor/shift) applied symmetrically.
        assert_eq!(
            mach.get_global("tea_v", 0) & 0xffff_ffff,
            0x0123_4567_i64 & 0xffff_ffff
        );
        assert_eq!(
            mach.get_global("tea_v", 1) & 0xffff_ffff,
            0x89ab_cdef_u32 as i64 & 0xffff_ffff
        );
    }

    #[test]
    fn sigalgs_has_pointer_table() {
        let b = sigalgs_gadget();
        let m = b.module();
        let (_, g) = m.global("shared_sigalgs").unwrap();
        assert!(g.is_ptr);
        assert_eq!(g.size, 32);
    }
}
