//! Deterministic synthetic library generator (the libsodium/OpenSSL
//! stand-in, §6.2).
//!
//! The paper's large-codebase claims are about (a) runtime scaling with
//! function size (Fig. 8) and (b) finding seeded-in gadget classes among
//! hundreds of public functions (Table 2). A generated library with a
//! controlled size distribution and *known* embedded gadgets reproduces
//! both while keeping ground truth machine-checkable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// RNG seed (fixed ⇒ byte-identical library).
    pub seed: u64,
    /// Number of public functions.
    pub functions: usize,
    /// Rough statement count of the largest function; sizes are spread
    /// geometrically below this.
    pub max_stmts: usize,
    /// Out of 100: how many functions receive a PHT gadget.
    pub pht_gadget_pct: u32,
    /// Out of 100: how many functions receive an STL gadget.
    pub stl_gadget_pct: u32,
}

impl SynthConfig {
    /// A libsodium-scale configuration (many small public functions).
    pub fn libsodium_scale() -> Self {
        SynthConfig {
            seed: 0x50d1,
            functions: 64,
            max_stmts: 120,
            pht_gadget_pct: 10,
            stl_gadget_pct: 10,
        }
    }

    /// An OpenSSL-scale configuration (more and larger functions).
    pub fn openssl_scale() -> Self {
        SynthConfig {
            seed: 0x055e,
            functions: 96,
            max_stmts: 220,
            pht_gadget_pct: 8,
            stl_gadget_pct: 8,
        }
    }
}

/// Ground truth for one generated function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// Function name.
    pub function: String,
    /// Whether a PHT gadget was embedded.
    pub pht_gadget: bool,
    /// Whether an STL gadget was embedded.
    pub stl_gadget: bool,
    /// Approximate statement count (size axis of Fig. 8).
    pub stmts: usize,
}

/// Generates a synthetic library: mini-C source plus ground truth.
pub fn synthetic_library(cfg: SynthConfig) -> (String, Vec<GroundTruth>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut src = String::new();
    let mut truth = Vec::new();

    src.push_str("int gl_tab[4096]; int gl_buf[256]; int gl_state[64]; int gl_size; int gl_tmp;\n");

    for fi in 0..cfg.functions {
        // Geometric-ish size spread: many small, few large.
        let frac = (fi as f64 + 1.0) / cfg.functions as f64;
        let stmts = ((cfg.max_stmts as f64) * frac * frac).max(3.0) as usize;
        let name = format!("synth_fn_{fi:03}");
        let pht = rng.gen_range(0u32..100) < cfg.pht_gadget_pct;
        let stl = !pht && rng.gen_range(0u32..100) < cfg.stl_gadget_pct;

        src.push_str(&format!("void {name}(int a0, int a1, int a2) {{\n"));
        src.push_str("    int acc = a0;\n    int i;\n");
        let mut emitted = 0usize;
        while emitted < stmts {
            match rng.gen_range(0..6) {
                0 => {
                    let k = rng.gen_range(0..64);
                    src.push_str(&format!("    acc = acc + gl_state[{k}];\n"));
                }
                1 => {
                    let k = rng.gen_range(0..64);
                    src.push_str(&format!("    gl_state[{k}] = acc ^ a1;\n"));
                }
                2 => {
                    let s = rng.gen_range(1..8);
                    src.push_str(&format!("    acc = (acc << {s}) ^ (acc >> {s});\n"));
                }
                3 => {
                    src.push_str("    if (acc > a2) { acc = acc - a2; } else { acc = acc + 1; }\n");
                    emitted += 2;
                }
                4 => {
                    let n = rng.gen_range(2..6);
                    src.push_str(&format!(
                        "    for (i = 0; i < {n}; i += 1) {{ acc = acc + gl_buf[i & 255]; }}\n"
                    ));
                    emitted += 2;
                }
                _ => {
                    src.push_str("    gl_tmp = gl_tmp ^ acc;\n");
                }
            }
            emitted += 1;
        }
        if pht {
            src.push_str(
                "    if (a0 < gl_size) {\n        gl_tmp &= gl_tab[gl_buf[a0] * 16];\n    }\n",
            );
        }
        if stl {
            src.push_str("    gl_state[a0 & 63] = 0;\n    gl_tmp &= gl_tab[gl_state[a0 & 63]];\n");
        }
        src.push_str("}\n\n");
        truth.push(GroundTruth {
            function: name,
            pht_gadget: pht,
            stl_gadget: stl,
            stmts,
        });
    }
    (src, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            seed: 7,
            functions: 12,
            max_stmts: 40,
            pht_gadget_pct: 30,
            stl_gadget_pct: 30,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, ta) = synthetic_library(small());
        let (b, tb) = synthetic_library(small());
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn generated_library_compiles() {
        let (src, truth) = synthetic_library(small());
        let m = lcm_minic::compile(&src).unwrap();
        assert_eq!(m.functions.len(), truth.len());
    }

    #[test]
    fn gadgets_seeded_at_roughly_requested_rate() {
        let cfg = SynthConfig {
            seed: 3,
            functions: 100,
            max_stmts: 30,
            pht_gadget_pct: 25,
            stl_gadget_pct: 25,
        };
        let (_, truth) = synthetic_library(cfg);
        let pht = truth.iter().filter(|t| t.pht_gadget).count();
        let stl = truth.iter().filter(|t| t.stl_gadget).count();
        assert!((10..=45).contains(&pht), "pht={pht}");
        assert!((5..=45).contains(&stl), "stl={stl}");
    }

    #[test]
    fn sizes_spread_geometrically() {
        let (_, truth) = synthetic_library(small());
        let min = truth.iter().map(|t| t.stmts).min().unwrap();
        let max = truth.iter().map(|t| t.stmts).max().unwrap();
        assert!(max >= min * 4, "size spread: {min}..{max}");
    }
}
