//! The Spectre litmus suites (§6.1).
//!
//! * `litmus-pht`: the fifteen Spectre v1 variants of Kocher's MSVC
//!   mitigation study, adapted to mini-C;
//! * `litmus-stl`: fourteen Spectre v4 cases after the Binsec/Haunted
//!   benchmark suite, including intended-secure variants (masking,
//!   `register`) and a mislabelled-secure case (STL13, §6.1);
//! * `litmus-fwd`: five Spectre v1.1 cases (speculative stores);
//! * `litmus-new`: the paper's own NEW01/NEW02 (§6.1).

use crate::{Bench, Intended};

fn b(name: &'static str, intended: Intended, source: &str) -> Bench {
    Bench {
        name,
        source: source.to_string(),
        intended,
    }
}

/// The fifteen Kocher-style Spectre v1 (PHT) variants.
#[allow(clippy::vec_init_then_push)] // one commented push per benchmark reads best
pub fn litmus_pht() -> Vec<Bench> {
    let mut v = Vec::new();
    // 01: the classic bounds-checked double load.
    v.push(b(
        "pht01",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v01(int x) {
            if (x < array1_size)
                temp &= array2[array1[x] * 512];
        }"#,
    ));
    // 02: bitwise-masked comparison in the guard.
    v.push(b(
        "pht02",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v02(int x) {
            if ((x & 65535) < array1_size)
                temp &= array2[array1[x & 65535] * 512];
        }"#,
    ));
    // 03: the access sits in a separate (inlined) function.
    v.push(b(
        "pht03",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        int leak_helper(int x) { return array2[array1[x] * 512]; }
        void victim_function_v03(int x) {
            if (x < array1_size)
                temp &= leak_helper(x);
        }"#,
    ));
    // 04: <= comparison off-by-one style guard.
    v.push(b(
        "pht04",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v04(int x) {
            if (x <= array1_size - 1)
                temp &= array2[array1[x] * 512];
        }"#,
    ));
    // 05: access inside a loop over x.
    v.push(b(
        "pht05",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v05(int x) {
            int i;
            for (i = x - 1; i >= 0; i -= 1)
                temp &= array2[array1[i] * 512];
        }"#,
    ));
    // 06: guard on a global flag set elsewhere.
    v.push(b(
        "pht06",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp; int is_valid;
        void victim_function_v06(int x) {
            if (is_valid && x < array1_size)
                temp &= array2[array1[x] * 512];
        }"#,
    ));
    // 07: comparison against a constant bound.
    v.push(b(
        "pht07",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int temp;
        void victim_function_v07(int x) {
            if (x < 16)
                temp &= array2[array1[x] * 512];
        }"#,
    ));
    // 08: ternary select of the index.
    v.push(b(
        "pht08",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v08(int x) {
            temp &= array2[array1[x < array1_size ? x + 1 : 0] * 512];
        }"#,
    ));
    // 09: leak via a store address instead of a load.
    v.push(b(
        "pht09",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v09(int x, int k) {
            if (x < array1_size)
                array2[array1[x] * 512] = k;
        }"#,
    ));
    // 10: compare loaded value, leak through the branch (control leak).
    v.push(b(
        "pht10",
        Intended::PhtDt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp; int k;
        void victim_function_v10(int x) {
            if (x < array1_size) {
                if (array1[x] == k)
                    temp &= array2[0];
            }
        }"#,
    ));
    // 11: index arrives via memory (the attacker stored it earlier).
    v.push(b(
        "pht11",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp; int last_x;
        void victim_function_v11(int x) {
            last_x = x;
            if (last_x < array1_size)
                temp &= array2[array1[last_x] * 512];
        }"#,
    ));
    // 12: two sequential dependent accesses in the window.
    v.push(b(
        "pht12",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v12(int x, int y) {
            if (x + y < array1_size)
                temp &= array2[array1[x + y] * 512];
        }"#,
    ));
    // 13: the leaking index is scaled by shifting.
    v.push(b(
        "pht13",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v13(int x) {
            if (x < array1_size)
                temp &= array2[array1[x] << 9];
        }"#,
    ));
    // 14: leak of the secret via pointer arithmetic on the base.
    v.push(b(
        "pht14",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v14(int x) {
            if (x < array1_size)
                temp &= *(array2 + array1[x] * 512);
        }"#,
    ));
    // 15: attacker-controlled pointer to the index.
    v.push(b(
        "pht15",
        Intended::PhtUdt,
        r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_function_v15(int *x) {
            if (*x < array1_size)
                temp &= array2[array1[*x] * 512];
        }"#,
    ));
    v
}

/// The fourteen Spectre v4 (STL) cases.
#[allow(clippy::vec_init_then_push)]
pub fn litmus_stl() -> Vec<Bench> {
    let mut v = Vec::new();
    // 01: the paper's STL01 — overwrite then doubly-indexed read; the
    // stale read of sec_ary enables universal leakage (§6.1).
    v.push(b(
        "stl01",
        Intended::StlLeak,
        r#"
        int ary_size; int sec_ary[16]; int pub_ary[4096]; int tmp;
        void case_1(uint32_t idx) {
            uint32_t ridx = idx & (ary_size - 1);
            sec_ary[ridx] = 0;
            tmp &= pub_ary[sec_ary[ridx]];
        }"#,
    ));
    // 02: stale stack slot read (the spill of idx is bypassed).
    v.push(b(
        "stl02",
        Intended::StlLeak,
        r#"
        int sec_ary[16]; int pub_ary[4096]; int tmp;
        void case_2(uint32_t idx) {
            uint32_t ridx = idx & 15;
            tmp &= pub_ary[sec_ary[ridx]];
        }"#,
    ));
    // 03: pointer overwritten, then dereferenced.
    v.push(b(
        "stl03",
        Intended::StlLeak,
        r#"
        int pub0; int *p; int pub_ary[4096]; int tmp;
        void case_3(void) {
            p = &pub0;
            tmp &= pub_ary[*p];
        }"#,
    ));
    // 04: store to an array slot, reload of the same slot.
    v.push(b(
        "stl04",
        Intended::StlLeak,
        r#"
        int slots[8]; int pub_ary[4096]; int tmp;
        void case_4(uint32_t idx) {
            slots[idx & 7] = 0;
            tmp &= pub_ary[slots[idx & 7]];
        }"#,
    ));
    // 05: double overwrite before the read.
    v.push(b(
        "stl05",
        Intended::StlLeak,
        r#"
        int slot; int pub_ary[4096]; int tmp;
        void case_5(int v) {
            slot = v;
            slot = 0;
            tmp &= pub_ary[slot];
        }"#,
    ));
    // 06: intended-secure via index masking *after* the reload (Clou
    // cannot reason about masking semantics: expected false positive,
    // §6.1).
    v.push(b(
        "stl06",
        Intended::Secure,
        r#"
        int slot; int pub_ary[4096]; int tmp;
        void case_6(int v) {
            slot = v;
            tmp &= pub_ary[slot & 0];
        }"#,
    ));
    // 07: intended-secure via `register` (no spill to bypass).
    v.push(b(
        "stl07",
        Intended::Secure,
        r#"
        int pub_ary[4096]; int tmp;
        void case_7(register int idx) {
            register int ridx = idx & 15;
            tmp &= pub_ary[ridx];
        }"#,
    ));
    // 08: secure via lfence between store and load (`register` keeps the
    // parameter out of memory so the spill itself cannot be bypassed).
    v.push(b(
        "stl08",
        Intended::Secure,
        r#"
        int slot; int pub_ary[4096]; int tmp;
        void case_8(register int v) {
            slot = v;
            lfence();
            tmp &= pub_ary[slot];
        }"#,
    ));
    // 09: stale value used as a store address (speculative wild store).
    v.push(b(
        "stl09",
        Intended::StlLeak,
        r#"
        int idx_slot; int pub_ary[4096];
        void case_9(int v) {
            idx_slot = v & 15;
            pub_ary[idx_slot] = 1;
        }"#,
    ));
    // 10: bypass through a struct-like pointer chain.
    v.push(b(
        "stl10",
        Intended::StlLeak,
        r#"
        int *field; int pub_ary[4096]; int tmp;
        void case_10(int v) {
            *field = v & 15;
            tmp &= pub_ary[*field];
        }"#,
    ));
    // 11: two loads, only the second bypasses.
    v.push(b(
        "stl11",
        Intended::StlLeak,
        r#"
        int a_slot; int b_slot; int pub_ary[4096]; int tmp;
        void case_11(int v) {
            a_slot = v & 7;
            b_slot = a_slot;
            tmp &= pub_ary[b_slot];
        }"#,
    ));
    // 12: intended-secure via masking the reloaded index into bounds —
    // semantically safe, but Clou has no semantic analysis and flags it
    // (a documented false positive, §6.1).
    v.push(b(
        "stl12",
        Intended::Secure,
        r#"
        int a_slot; int pub_ary[4096]; int tmp;
        void case_12(register int v) {
            a_slot = v;
            tmp &= pub_ary[a_slot & 15];
        }"#,
    ));
    // 13: labelled secure by the benchmark authors, but the stale read of
    // the callee's spilled return slot leaks — the mislabelling Clou
    // exposed in §6.1.
    v.push(b(
        "stl13",
        Intended::MislabelledSecure,
        r#"
        int pub_ary[4096]; int tmp;
        int sanitize(int idx) { int r = idx & 15; return r; }
        void case_13(int idx) {
            tmp &= pub_ary[sanitize(idx)];
        }"#,
    ));
    // 14: bypass feeding a branch (control leakage).
    v.push(b(
        "stl14",
        Intended::StlLeak,
        r#"
        int flag_slot; int pub_ary[4096]; int tmp;
        void case_14(int v) {
            flag_slot = v & 1;
            if (flag_slot)
                tmp &= pub_ary[64];
        }"#,
    ));
    v
}

/// Five Spectre v1.1 (FWD) cases: speculative stores overwriting
/// pointers/indices that later transmit.
pub fn litmus_fwd() -> Vec<Bench> {
    vec![
        b(
            "fwd01",
            Intended::PhtUdt,
            r#"
        int array1[16]; int array2[4096]; int array1_size; int temp; int idx2;
        void victim_fwd_1(int x, int v) {
            if (x < array1_size) {
                array1[x] = v;
                temp &= array2[array1[0] * 512];
            }
        }"#,
        ),
        b(
            "fwd02",
            Intended::PhtUdt,
            r#"
        int array1[16]; int array2[4096]; int array1_size; int temp; int *ptr;
        void victim_fwd_2(int x, int v) {
            if (x < array1_size) {
                array1[x] = v;
                *ptr = temp;
            }
        }"#,
        ),
        b(
            "fwd03",
            Intended::PhtUdt,
            r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_fwd_3(int x, int v) {
            if (x < array1_size)
                array2[array1[x] * 512] = v;
        }"#,
        ),
        b(
            "fwd04",
            Intended::PhtUdt,
            r#"
        int array1[16]; int array2[4096]; int array1_size; int temp; int saved;
        void victim_fwd_4(int x, int v) {
            if (x < array1_size) {
                saved = array1[x];
                temp &= array2[saved * 512];
            }
        }"#,
        ),
        b(
            "fwd05",
            Intended::PhtUdt,
            r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim_fwd_5(int x, int v, int w) {
            if (x < array1_size) {
                array1[x] = v;
                array1[x + 1] = w;
                temp &= array2[array1[1] * 512];
            }
        }"#,
        ),
    ]
}

/// The paper's own two benchmarks (§6.1): a speculative write of a secret
/// over a pointer/index later used to access memory.
pub fn litmus_new() -> Vec<Bench> {
    vec![
        // NEW01 verbatim from §6.1 (adapted syntax): the speculative write
        // to sec_ary2[idx2] can overwrite *ptr's target with a secret
        // returned by the attacker-controlled access sec_ary1[idx1].
        b(
            "new01",
            Intended::PhtUdt,
            r#"
        int sec_ary1[16]; int sec_ary2[16];
        int sec_ary1_size; int sec_ary2_size;
        int *ptr;
        void new_1(size_t idx1, size_t idx2) {
            if (idx1 < sec_ary1_size && idx2 < sec_ary2_size)
                sec_ary2[idx2] += sec_ary1[idx1] * 512;
            *ptr = 0;
        }"#,
        ),
        // NEW02: the overwritten index itself is dereferenced afterwards.
        b(
            "new02",
            Intended::PhtUdt,
            r#"
        int sec_ary1[16]; int sec_ary1_size;
        int table[4096]; int out_idx; int temp;
        void new_2(size_t idx1, size_t idx2) {
            if (idx1 < sec_ary1_size)
                out_idx = sec_ary1[idx1] * 512;
            temp &= table[out_idx];
        }"#,
        ),
    ]
}
