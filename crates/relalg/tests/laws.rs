//! Property tests: algebraic laws of the relational vocabulary
//! (DESIGN.md §5).

use lcm_relalg::{acyclic, condensation, irreflexive, tarjan_scc, Relation};
use proptest::prelude::*;

fn relation_strategy(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..=n * 2)
        .prop_map(move |pairs| Relation::from_pairs(n, pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_is_involutive(r in relation_strategy(12)) {
        prop_assert_eq!(r.transpose().transpose(), r);
    }

    #[test]
    fn transpose_reverses_composition(
        a in relation_strategy(10),
        b in relation_strategy(10),
    ) {
        // (a ; b)˘ = b˘ ; a˘
        prop_assert_eq!(a.compose(&b).transpose(), b.transpose().compose(&a.transpose()));
    }

    #[test]
    fn composition_is_associative(
        a in relation_strategy(8),
        b in relation_strategy(8),
        c in relation_strategy(8),
    ) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn identity_is_neutral(r in relation_strategy(10)) {
        let id = Relation::identity(10);
        prop_assert_eq!(r.compose(&id), r.clone());
        prop_assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn closure_is_idempotent_and_contains_original(r in relation_strategy(10)) {
        let t = r.transitive_closure();
        prop_assert!(r.is_subset(&t));
        prop_assert_eq!(t.transitive_closure(), t.clone());
        // Transitivity: t;t ⊆ t.
        prop_assert!(t.compose(&t).is_subset(&t));
    }

    #[test]
    fn acyclic_iff_closure_irreflexive(r in relation_strategy(10)) {
        prop_assert_eq!(acyclic(&r), irreflexive(&r.transitive_closure()));
    }

    #[test]
    fn acyclic_iff_all_sccs_trivial(r in relation_strategy(10)) {
        let sccs = tarjan_scc(&r);
        let no_cyclic_scc = sccs.iter().all(|c| !c.is_cyclic(&r));
        prop_assert_eq!(acyclic(&r), no_cyclic_scc);
    }

    #[test]
    fn condensation_is_always_acyclic(r in relation_strategy(12)) {
        let (component_of, dag) = condensation(&r);
        prop_assert!(acyclic(&dag));
        // Every edge maps to equal or forward components.
        for (a, b) in r.pairs() {
            let (ca, cb) = (component_of[a], component_of[b]);
            if ca != cb {
                prop_assert!(dag.contains(ca, cb));
            }
        }
    }

    #[test]
    fn union_intersection_lattice_laws(
        a in relation_strategy(10),
        b in relation_strategy(10),
    ) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        // Absorption.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // Difference partitions.
        let d = a.difference(&b);
        prop_assert!(d.intersect(&b).is_empty());
        prop_assert_eq!(d.union(&a.intersect(&b)), a);
    }

    #[test]
    fn composition_distributes_over_union(
        a in relation_strategy(8),
        b in relation_strategy(8),
        c in relation_strategy(8),
    ) {
        prop_assert_eq!(
            a.union(&b).compose(&c),
            a.compose(&c).union(&b.compose(&c))
        );
    }

    #[test]
    fn topological_order_exists_iff_acyclic(r in relation_strategy(12)) {
        match r.topological_order() {
            Some(order) => {
                prop_assert!(acyclic(&r));
                let mut pos = vec![0usize; r.universe()];
                for (i, &v) in order.iter().enumerate() {
                    pos[v] = i;
                }
                for (a, b) in r.pairs() {
                    prop_assert!(pos[a] < pos[b]);
                }
            }
            None => prop_assert!(!acyclic(&r)),
        }
    }

    #[test]
    fn find_cycle_returns_real_cycles(r in relation_strategy(12)) {
        match r.find_cycle() {
            Some(cycle) => {
                prop_assert!(!cycle.is_empty());
                for w in cycle.windows(2) {
                    prop_assert!(r.contains(w[0], w[1]));
                }
                prop_assert!(r.contains(*cycle.last().unwrap(), cycle[0]));
            }
            None => prop_assert!(acyclic(&r)),
        }
    }
}
