//! Graphviz DOT export for labelled multi-relation graphs.
//!
//! The paper presents candidate executions as directed graphs whose edges
//! are labelled with the relation they belong to (`po`, `rf`, `rfx`, ...).
//! [`DotGraph`] renders that presentation.

use std::fmt::Write as _;

use crate::Relation;

/// Style applied to every edge of one relation in a [`DotGraph`].
#[derive(Debug, Clone)]
pub struct EdgeStyle {
    /// Label shown on the edge (typically the relation name).
    pub label: String,
    /// Graphviz color name.
    pub color: String,
    /// Render dashed (the paper uses dashes for com edges that lack a
    /// consistent comx edge, i.e. detected leakage).
    pub dashed: bool,
}

impl EdgeStyle {
    /// A solid edge with the given label and color.
    pub fn solid(label: &str, color: &str) -> Self {
        EdgeStyle {
            label: label.to_string(),
            color: color.to_string(),
            dashed: false,
        }
    }

    /// A dashed edge with the given label and color.
    pub fn dashed(label: &str, color: &str) -> Self {
        EdgeStyle {
            label: label.to_string(),
            color: color.to_string(),
            dashed: true,
        }
    }
}

/// A multi-relation graph for DOT rendering: one node set, many labelled
/// relations.
///
/// # Examples
///
/// ```
/// use lcm_relalg::dot::{DotGraph, EdgeStyle};
/// use lcm_relalg::Relation;
///
/// let mut g = DotGraph::new("mp", vec!["W x".into(), "R x".into()]);
/// g.add_relation(Relation::from_pairs(2, [(0, 1)]), EdgeStyle::solid("rf", "blue"));
/// assert!(g.render().contains("label=\"rf\""));
/// ```
#[derive(Debug, Clone)]
pub struct DotGraph {
    name: String,
    node_labels: Vec<String>,
    layers: Vec<(Relation, EdgeStyle)>,
}

impl DotGraph {
    /// Creates a graph with one node per label.
    pub fn new(name: &str, node_labels: Vec<String>) -> Self {
        DotGraph {
            name: name.to_string(),
            node_labels,
            layers: Vec::new(),
        }
    }

    /// Adds a relation layer rendered with `style`.
    ///
    /// # Panics
    ///
    /// Panics if the relation's universe does not match the node count.
    pub fn add_relation(&mut self, relation: Relation, style: EdgeStyle) -> &mut Self {
        assert_eq!(
            relation.universe(),
            self.node_labels.len(),
            "relation universe must match node count"
        );
        self.layers.push((relation, style));
        self
    }

    /// Renders to DOT syntax.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&self.name));
        let _ = writeln!(
            out,
            "  rankdir=TB; node [shape=box, fontname=\"monospace\"];"
        );
        for (i, label) in self.node_labels.iter().enumerate() {
            let _ = writeln!(out, "  n{i} [label=\"{}\"];", escape(label));
        }
        for (rel, style) in &self.layers {
            for (a, b) in rel.pairs() {
                let dash = if style.dashed { ", style=dashed" } else { "" };
                let _ = writeln!(
                    out,
                    "  n{a} -> n{b} [label=\"{}\", color=\"{}\"{}];",
                    escape(&style.label),
                    escape(&style.color),
                    dash
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = DotGraph::new("t", vec!["R y".into(), "W x".into()]);
        g.add_relation(
            Relation::from_pairs(2, [(0, 1)]),
            EdgeStyle::solid("po", "black"),
        );
        let dot = g.render();
        assert!(dot.contains("n0 [label=\"R y\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"po\""));
        assert!(!dot.contains("style=dashed"));
    }

    #[test]
    fn dashed_edges_marked() {
        let mut g = DotGraph::new("t", vec!["a".into(), "b".into()]);
        g.add_relation(
            Relation::from_pairs(2, [(1, 0)]),
            EdgeStyle::dashed("rf", "red"),
        );
        assert!(g.render().contains("style=dashed"));
    }

    #[test]
    fn escapes_quotes() {
        let g = DotGraph::new("a\"b", vec!["x\"y".into()]);
        let dot = g.render();
        assert!(dot.contains("a\\\"b"));
        assert!(dot.contains("x\\\"y"));
    }

    #[test]
    #[should_panic(expected = "must match node count")]
    fn mismatched_universe_panics() {
        let mut g = DotGraph::new("t", vec!["a".into()]);
        g.add_relation(Relation::empty(2), EdgeStyle::solid("po", "black"));
    }
}
