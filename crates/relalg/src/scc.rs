//! Strongly-connected components (Tarjan) and graph condensation.

use crate::Relation;

/// A strongly-connected component: the set of member node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scc {
    /// Member node ids, in discovery order.
    pub members: Vec<usize>,
}

impl Scc {
    /// Returns `true` if this component represents a cycle: it has more than
    /// one member, or its single member has a self-loop in `r`.
    pub fn is_cyclic(&self, r: &Relation) -> bool {
        self.members.len() > 1 || r.contains(self.members[0], self.members[0])
    }
}

/// Computes the strongly-connected components of the relation viewed as a
/// directed graph, in reverse topological order (Tarjan's invariant).
pub fn tarjan_scc(r: &Relation) -> Vec<Scc> {
    let n = r.universe();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Iterative Tarjan: frame = (node, successors, next successor index).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, Vec<usize>, usize)> =
            vec![(root, r.successors(root).collect(), 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = call.last_mut() {
            let (v, succs, i) = (frame.0, &frame.1, &mut frame.2);
            if *i < succs.len() {
                let w = succs[*i];
                *i += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let wsuccs = r.successors(w).collect();
                    call.push((w, wsuccs, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(Scc { members });
                }
                let done = v;
                call.pop();
                if let Some(parent) = call.last_mut() {
                    low[parent.0] = low[parent.0].min(low[done]);
                }
            }
        }
    }
    out
}

/// Condenses the graph to its component DAG.
///
/// Returns `(component_of, dag)` where `component_of[v]` is the index into
/// the SCC list produced by [`tarjan_scc`] and `dag` relates component ids
/// whenever some cross-component edge exists.
pub fn condensation(r: &Relation) -> (Vec<usize>, Relation) {
    let sccs = tarjan_scc(r);
    let mut component_of = vec![0usize; r.universe()];
    for (ci, scc) in sccs.iter().enumerate() {
        for &m in &scc.members {
            component_of[m] = ci;
        }
    }
    let mut dag = Relation::empty(sccs.len());
    for (a, b) in r.pairs() {
        let (ca, cb) = (component_of[a], component_of[b]);
        if ca != cb {
            dag.insert(ca, cb);
        }
    }
    (component_of, dag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycles_and_a_tail() {
        // 0 <-> 1, 2 <-> 3, 1 -> 2, 3 -> 4
        let r = Relation::from_pairs(5, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (3, 4)]);
        let sccs = tarjan_scc(&r);
        assert_eq!(sccs.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = sccs.iter().map(|c| c.members.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2, 2]);
        let cyclic = sccs.iter().filter(|c| c.is_cyclic(&r)).count();
        assert_eq!(cyclic, 2);
    }

    #[test]
    fn dag_has_singleton_components() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let sccs = tarjan_scc(&r);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| !c.is_cyclic(&r)));
    }

    #[test]
    fn self_loop_is_cyclic_component() {
        let r = Relation::from_pairs(2, [(0, 0)]);
        let sccs = tarjan_scc(&r);
        let c = sccs.iter().find(|c| c.members == vec![0]).unwrap();
        assert!(c.is_cyclic(&r));
    }

    #[test]
    fn condensation_is_acyclic() {
        let r = Relation::from_pairs(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)]);
        let (component_of, dag) = condensation(&r);
        assert!(crate::acyclic(&dag));
        assert_eq!(component_of[0], component_of[1]);
        assert_eq!(component_of[2], component_of[3]);
        assert_ne!(component_of[0], component_of[2]);
    }

    #[test]
    fn scc_reverse_topological_order() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let sccs = tarjan_scc(&r);
        // Tarjan emits sinks first: 3 before 0.
        let pos3 = sccs.iter().position(|c| c.members.contains(&3)).unwrap();
        let pos0 = sccs.iter().position(|c| c.members.contains(&0)).unwrap();
        assert!(pos3 < pos0);
    }
}
