//! Dense relational algebra over small integer universes.
//!
//! Axiomatic memory-consistency and leakage-containment models are written
//! in a relational vocabulary: binary relations over *events*, combined with
//! union, join (relational composition), transpose, and transitive closure,
//! and constrained by predicates such as `acyclic(..)` and `irreflexive(..)`
//! (see Alglave et al., "Herding Cats", TOPLAS'14). This crate provides that
//! vocabulary for universes of up to a few tens of thousands of events, which
//! covers every per-function analysis in this repository.
//!
//! The central type is [`Relation`], a bit-matrix backed binary relation.
//!
//! # Examples
//!
//! Deriving `fr` (from-reads) from `rf` and `co` exactly as §2.1.2 of the
//! paper does: `fr = rf˘ ; co`.
//!
//! ```
//! use lcm_relalg::Relation;
//!
//! let n = 4;
//! let rf = Relation::from_pairs(n, [(0, 2)]); // write 0 -> read 2
//! let co = Relation::from_pairs(n, [(0, 1)]); // write 0 -> write 1
//! let fr = rf.transpose().compose(&co);
//! assert!(fr.contains(2, 1)); // read 2 from-reads write 1
//! ```

mod relation;
mod scc;

pub mod dot;

pub use relation::Relation;
pub use scc::{condensation, tarjan_scc, Scc};

/// Returns `true` if the relation contains no cycle (including self-loops).
///
/// This is the `acyclic(..)` predicate of axiomatic memory-model
/// specifications: `acyclic(r)` holds iff the transitive closure of `r` is
/// irreflexive.
///
/// # Examples
///
/// ```
/// use lcm_relalg::{acyclic, Relation};
/// assert!(acyclic(&Relation::from_pairs(3, [(0, 1), (1, 2)])));
/// assert!(!acyclic(&Relation::from_pairs(3, [(0, 1), (1, 0)])));
/// ```
pub fn acyclic(r: &Relation) -> bool {
    r.find_cycle().is_none()
}

/// Returns `true` if no element is related to itself.
///
/// # Examples
///
/// ```
/// use lcm_relalg::{irreflexive, Relation};
/// assert!(irreflexive(&Relation::from_pairs(2, [(0, 1)])));
/// assert!(!irreflexive(&Relation::from_pairs(2, [(1, 1)])));
/// ```
pub fn irreflexive(r: &Relation) -> bool {
    (0..r.universe()).all(|i| !r.contains(i, i))
}

/// Returns `true` if `r` restricted to `elems` is a strict total order on
/// `elems` (transitive, irreflexive, and total: any two distinct elements
/// are comparable).
///
/// Memory models require e.g. that `co` is a per-location total order on
/// writes; this predicate checks that requirement.
pub fn total_on(r: &Relation, elems: &[usize]) -> bool {
    let t = r.transitive_closure();
    for (i, &a) in elems.iter().enumerate() {
        if t.contains(a, a) {
            return false;
        }
        for &b in &elems[i + 1..] {
            if t.contains(a, b) == t.contains(b, a) {
                return false; // incomparable or a cycle between them
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_on_accepts_chain() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 3)]);
        assert!(total_on(&r, &[0, 1, 3]));
        assert!(!total_on(&r, &[0, 1, 2, 3]));
    }

    #[test]
    fn total_on_rejects_cycle() {
        let r = Relation::from_pairs(3, [(0, 1), (1, 0)]);
        assert!(!total_on(&r, &[0, 1]));
    }

    #[test]
    fn acyclic_empty_is_true() {
        assert!(acyclic(&Relation::empty(0)));
        assert!(acyclic(&Relation::empty(5)));
    }
}
