//! The bit-matrix [`Relation`] type and its algebra.

use std::fmt;

const WORD: usize = 64;

/// A binary relation over the universe `{0, 1, .., n-1}`.
///
/// Stored as a dense bit matrix: row `a` is the set of `b` with `(a, b)` in
/// the relation. All operations that combine two relations require both to
/// have the same universe size and panic otherwise (mixing relations over
/// different event sets is always a logic error in this codebase).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// Creates the empty relation over a universe of size `n`.
    pub fn empty(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD);
        Relation {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Creates the identity relation `{(i, i)}` over a universe of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            r.insert(i, i);
        }
        r
    }

    /// Creates the full relation (every ordered pair) over `n` elements.
    pub fn full(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD);
        let mut bits = vec![!0u64; n * words_per_row];
        let tail = n % WORD;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            for row in 0..n {
                bits[row * words_per_row + words_per_row - 1] = mask;
            }
        }
        Relation {
            n,
            words_per_row,
            bits,
        }
    }

    /// Creates a relation from an iterator of pairs.
    ///
    /// # Panics
    ///
    /// Panics if any pair element is `>= n`.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut r = Self::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// The size of the universe this relation ranges over.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Returns `true` if the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Adds the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn insert(&mut self, a: usize, b: usize) {
        assert!(
            a < self.n && b < self.n,
            "pair ({a}, {b}) outside universe {}",
            self.n
        );
        self.bits[a * self.words_per_row + b / WORD] |= 1u64 << (b % WORD);
    }

    /// Removes the pair `(a, b)` if present.
    pub fn remove(&mut self, a: usize, b: usize) {
        if a < self.n && b < self.n {
            self.bits[a * self.words_per_row + b / WORD] &= !(1u64 << (b % WORD));
        }
    }

    /// Returns `true` if `(a, b)` is in the relation.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n
            && b < self.n
            && self.bits[a * self.words_per_row + b / WORD] & (1u64 << (b % WORD)) != 0
    }

    fn row(&self, a: usize) -> &[u64] {
        &self.bits[a * self.words_per_row..(a + 1) * self.words_per_row]
    }

    /// Iterates over the successors of `a` (all `b` with `(a, b)` present).
    pub fn successors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        let row = self.row(a);
        row.iter()
            .enumerate()
            .flat_map(|(wi, &w)| BitIter(w).map(move |b| wi * WORD + b))
    }

    /// Iterates over the predecessors of `b` (all `a` with `(a, b)` present).
    pub fn predecessors(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&a| self.contains(a, b))
    }

    /// Iterates over all pairs in the relation in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| self.successors(a).map(move |b| (a, b)))
    }

    fn assert_same_universe(&self, other: &Relation) {
        assert_eq!(
            self.n, other.n,
            "relations over different universes ({} vs {})",
            self.n, other.n
        );
    }

    /// Set union of two relations.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        self.assert_same_universe(other);
        let mut out = self.clone();
        for (w, o) in out.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
        out
    }

    /// In-place set union.
    pub fn union_in_place(&mut self, other: &Relation) {
        self.assert_same_universe(other);
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// Set intersection of two relations.
    #[must_use]
    pub fn intersect(&self, other: &Relation) -> Relation {
        self.assert_same_universe(other);
        let mut out = self.clone();
        for (w, o) in out.bits.iter_mut().zip(&other.bits) {
            *w &= o;
        }
        out
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Relation) -> Relation {
        self.assert_same_universe(other);
        let mut out = self.clone();
        for (w, o) in out.bits.iter_mut().zip(&other.bits) {
            *w &= !o;
        }
        out
    }

    /// Returns `true` if every pair of `self` is also in `other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.assert_same_universe(other);
        self.bits.iter().zip(&other.bits).all(|(w, o)| w & !o == 0)
    }

    /// Relational transpose: `{(b, a) | (a, b) in self}`.
    ///
    /// Written `r˘` (or `~r`) in the memory-model literature.
    #[must_use]
    pub fn transpose(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.pairs() {
            out.insert(b, a);
        }
        out
    }

    /// Relational composition (join): `{(a, c) | ∃b. (a, b) ∈ self ∧ (b, c) ∈ other}`.
    ///
    /// Written `self ; other` (or `self.other`) in the memory-model
    /// literature.
    #[must_use]
    pub fn compose(&self, other: &Relation) -> Relation {
        let mut out = Relation::empty(self.n);
        self.compose_into(other, &mut out);
        out
    }

    /// Relational composition into a caller-provided buffer.
    ///
    /// `out` is cleared and overwritten with `self ; other`; its
    /// allocation is reused, so closure-style loops that compose
    /// repeatedly allocate nothing after the first iteration.
    pub fn compose_into(&self, other: &Relation, out: &mut Relation) {
        self.assert_same_universe(other);
        self.assert_same_universe(out);
        out.bits.fill(0);
        for a in 0..self.n {
            let row_start = a * self.words_per_row;
            for wi in 0..self.words_per_row {
                let mut w = self.bits[row_start + wi];
                while w != 0 {
                    let b = wi * WORD + w.trailing_zeros() as usize;
                    w &= w - 1;
                    let other_row = other.row(b);
                    for (oi, &ow) in other_row.iter().enumerate() {
                        out.bits[row_start + oi] |= ow;
                    }
                }
            }
        }
    }

    /// Transitive closure `r⁺` via iterated squaring over the bit matrix.
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        // Floyd-Warshall on bit rows: O(n^2 * n/64).
        let mut out = self.clone();
        for k in 0..self.n {
            let krow: Vec<u64> = out.row(k).to_vec();
            for a in 0..self.n {
                if out.contains(a, k) {
                    let start = a * out.words_per_row;
                    for (wi, &kw) in krow.iter().enumerate() {
                        out.bits[start + wi] |= kw;
                    }
                }
            }
        }
        out
    }

    /// Reflexive-transitive closure `r*`.
    #[must_use]
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().union(&Relation::identity(self.n))
    }

    /// Restricts the relation to pairs whose endpoints both satisfy `keep`.
    #[must_use]
    pub fn restrict(&self, keep: impl Fn(usize) -> bool) -> Relation {
        Relation::from_pairs(self.n, self.pairs().filter(|&(a, b)| keep(a) && keep(b)))
    }

    /// Restricts to pairs whose *source* satisfies `keep`.
    #[must_use]
    pub fn restrict_domain(&self, keep: impl Fn(usize) -> bool) -> Relation {
        Relation::from_pairs(self.n, self.pairs().filter(|&(a, _)| keep(a)))
    }

    /// Restricts to pairs whose *target* satisfies `keep`.
    #[must_use]
    pub fn restrict_range(&self, keep: impl Fn(usize) -> bool) -> Relation {
        Relation::from_pairs(self.n, self.pairs().filter(|&(_, b)| keep(b)))
    }

    /// Finds a cycle if one exists, returned as a vector of nodes
    /// `[v0, v1, .., vk]` such that each consecutive pair is an edge and
    /// `(vk, v0)` is an edge. Self-loops yield a single-element cycle.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.n];
        let mut parent = vec![usize::MAX; self.n];
        // Iterative DFS with an explicit stack of (node, successor iterator
        // position materialised as Vec index).
        for start in 0..self.n {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(usize, Vec<usize>, usize)> =
                vec![(start, self.successors(start).collect(), 0)];
            color[start] = Color::Gray;
            while let Some((node, succs, idx)) = stack.last_mut() {
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match color[next] {
                        Color::White => {
                            parent[next] = *node;
                            color[next] = Color::Gray;
                            let nsuccs = self.successors(next).collect();
                            stack.push((next, nsuccs, 0));
                        }
                        Color::Gray => {
                            // Found a back edge node -> next: reconstruct.
                            let mut cycle = vec![*node];
                            let mut cur = *node;
                            while cur != next {
                                cur = parent[cur];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[*node] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Returns the elements reachable from `start` (excluding `start` itself
    /// unless it lies on a cycle through itself).
    pub fn reachable_from(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            for s in self.successors(v) {
                if !seen[s] {
                    seen[s] = true;
                    out.push(s);
                    stack.push(s);
                }
            }
        }
        out
    }

    /// A topological order of the universe consistent with the relation, or
    /// `None` if the relation is cyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for (_, b) in self.pairs() {
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for s in self.successors(v) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(n={}, {{", self.n)?;
        for (i, (a, b)) in self.pairs().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({a},{b})")?;
        }
        write!(f, "}})")
    }
}

impl FromIterator<(usize, usize)> for Relation {
    /// Collects pairs into a relation sized to fit the largest element.
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let pairs: Vec<_> = iter.into_iter().collect();
        let n = pairs.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(0);
        Relation::from_pairs(n, pairs)
    }
}

impl Extend<(usize, usize)> for Relation {
    fn extend<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) {
        for (a, b) in iter {
            self.insert(a, b);
        }
    }
}

struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: usize, pairs: &[(usize, usize)]) -> Relation {
        Relation::from_pairs(n, pairs.iter().copied())
    }

    #[test]
    fn insert_contains_remove() {
        let mut r = Relation::empty(70);
        r.insert(0, 69);
        r.insert(69, 0);
        assert!(r.contains(0, 69));
        assert!(r.contains(69, 0));
        assert!(!r.contains(1, 1));
        r.remove(0, 69);
        assert!(!r.contains(0, 69));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        Relation::empty(3).insert(3, 0);
    }

    #[test]
    fn compose_basic() {
        let a = rel(4, &[(0, 1), (1, 2)]);
        let b = rel(4, &[(1, 3), (2, 0)]);
        let c = a.compose(&b);
        assert!(c.contains(0, 3));
        assert!(c.contains(1, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn full_covers_every_pair_across_word_boundaries() {
        for n in [0, 1, 63, 64, 65, 70, 128] {
            let f = Relation::full(n);
            assert_eq!(f.len(), n * n, "n={n}");
            if n > 0 {
                assert!(f.contains(0, n - 1));
                assert!(f.contains(n - 1, 0));
                assert!(!f.contains(n, 0), "out-of-universe stays absent");
            }
        }
    }

    #[test]
    fn compose_into_matches_compose_and_clears_buffer() {
        let a = rel(70, &[(0, 1), (1, 65), (69, 0)]);
        let b = rel(70, &[(1, 3), (65, 69)]);
        let mut out = Relation::full(70); // stale contents must be cleared
        a.compose_into(&b, &mut out);
        assert_eq!(out, a.compose(&b));
        assert!(out.contains(0, 3));
        assert!(out.contains(1, 69));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn transpose_involutive() {
        let r = rel(5, &[(0, 1), (3, 2), (4, 4)]);
        assert_eq!(r.transpose().transpose(), r);
    }

    #[test]
    fn closure_chain() {
        let r = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = r.transitive_closure();
        assert!(t.contains(0, 3));
        assert!(t.contains(1, 3));
        assert!(!t.contains(3, 0));
        assert_eq!(t, t.transitive_closure(), "closure is idempotent");
    }

    #[test]
    fn closure_cycle_has_self_loops() {
        let r = rel(3, &[(0, 1), (1, 0)]);
        let t = r.transitive_closure();
        assert!(t.contains(0, 0));
        assert!(t.contains(1, 1));
        assert!(!t.contains(2, 2));
    }

    #[test]
    fn identity_is_compose_neutral() {
        let r = rel(6, &[(0, 5), (2, 3), (5, 5)]);
        let id = Relation::identity(6);
        assert_eq!(r.compose(&id), r);
        assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn find_cycle_reports_real_cycle() {
        let r = rel(6, &[(0, 1), (1, 2), (2, 3), (3, 1), (4, 5)]);
        let cyc = r.find_cycle().expect("has a cycle");
        // Each consecutive pair, plus the wrap-around, must be an edge.
        for w in cyc.windows(2) {
            assert!(r.contains(w[0], w[1]));
        }
        assert!(r.contains(*cyc.last().unwrap(), cyc[0]));
    }

    #[test]
    fn find_cycle_none_on_dag() {
        let r = rel(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        assert!(r.find_cycle().is_none());
    }

    #[test]
    fn find_cycle_self_loop() {
        let r = rel(3, &[(1, 1)]);
        assert_eq!(r.find_cycle(), Some(vec![1]));
    }

    #[test]
    fn topo_order_respects_edges() {
        let r = rel(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let order = r.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (a, b) in r.pairs() {
            assert!(pos[a] < pos[b]);
        }
    }

    #[test]
    fn topo_order_none_on_cycle() {
        assert!(rel(3, &[(0, 1), (1, 0)]).topological_order().is_none());
    }

    #[test]
    fn union_intersect_difference_laws() {
        let a = rel(4, &[(0, 1), (1, 2)]);
        let b = rel(4, &[(1, 2), (2, 3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b), rel(4, &[(1, 2)]));
        assert_eq!(a.difference(&b), rel(4, &[(0, 1)]));
        assert!(a.intersect(&b).is_subset(&a));
        assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn restrict_variants() {
        let r = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(r.restrict(|x| x != 2), rel(4, &[(0, 1)]));
        assert_eq!(r.restrict_domain(|x| x == 1), rel(4, &[(1, 2)]));
        assert_eq!(r.restrict_range(|x| x == 3), rel(4, &[(2, 3)]));
    }

    #[test]
    fn successors_and_predecessors() {
        let r = rel(5, &[(1, 0), (1, 2), (1, 4), (3, 4)]);
        assert_eq!(r.successors(1).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(r.predecessors(4).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn reachable_from_basic() {
        let r = rel(6, &[(0, 1), (1, 2), (3, 4)]);
        let mut reach = r.reachable_from(0);
        reach.sort_unstable();
        assert_eq!(reach, vec![1, 2]);
    }

    #[test]
    fn from_iter_sizes_universe() {
        let r: Relation = [(0usize, 3usize), (2, 1)].into_iter().collect();
        assert_eq!(r.universe(), 4);
        assert!(r.contains(0, 3));
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Relation::empty(2)).is_empty());
    }
}
