//! Offline stand-in for the `criterion` crate (see DESIGN.md §6).
//!
//! The build environment cannot fetch the real `criterion`, so this crate
//! implements the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`Bencher::iter`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Measurement is
//! deliberately simple: each sample times one closure invocation with
//! `Instant`, and the harness reports min/median/max over the sample set.
//! No statistical analysis, warm-up calibration, or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot delete benched work.
pub fn black_box<T>(x: T) -> T {
    // Volatile read of a pointer to the value defeats const-folding
    // without touching unstable intrinsics.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Times closures handed to `bench_function` / `bench_with_input`.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Runs `f` once per sample and records wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.target {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A benchmark identifier: `BenchmarkId::new("stage", size)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        target: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{label:<40} [{} {} {}]  ({} samples)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        b.samples.len()
    );
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// The bench harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{id}"), self.default_sample_size, &mut f);
        self
    }
}

/// Bundles bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sized", 42), &42u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(7), 7);
        assert_eq!(black_box(String::from("x")), "x");
    }
}
