//! Offline stand-in for the `proptest` crate (see DESIGN.md §6).
//!
//! The build environment cannot fetch the real `proptest`, so this crate
//! implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! range/tuple/[`Just`]/`any::<bool>()` strategies, weighted
//! [`prop_oneof!`], [`collection::vec`], and the [`proptest!`] /
//! `prop_assert*` macros. Cases are generated from a per-test
//! deterministic seed; there is **no shrinking** — a failure reports the
//! case number and the generated inputs via `Debug` where available.

use std::rc::Rc;

/// Deterministic case generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a stable string (the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name keeps seeds stable across runs/platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// A uniform boolean.
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` — see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted union of strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// A union of weighted, type-erased options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted option");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Weighted choice between strategies: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` != `{}`: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{}` == `{}`: both {:?}",
            stringify!($a),
            stringify!($b),
            __l
        );
    }};
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0..10usize, flip in any::<bool>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { <$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!("proptest {} failed at case {}/{}: {}", stringify!($name), __case + 1, __config.cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = (3..9usize).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1..=4i64).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::deterministic("vec");
        let s = crate::collection::vec(0..5usize, 2..=6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_honours_zero_weight() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let s = prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::TestRng::deterministic("flat");
        let s = (2..5usize).prop_flat_map(|n| crate::collection::vec(0..n, n..=n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0..100usize, b in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(b, b);
            prop_assert_ne!(x, x + 1);
        }
    }
}
