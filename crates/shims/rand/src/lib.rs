//! Offline stand-in for the `rand` crate (see DESIGN.md §6).
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rand` cannot be fetched. This crate provides the exact
//! API subset the workspace uses — `rngs::StdRng`, `SeedableRng`, and
//! `Rng::{gen_range, gen_bool}` over integer and float ranges — backed by
//! SplitMix64. Streams differ from upstream `rand`, but every consumer
//! seeds explicitly and treats the stream as an arbitrary deterministic
//! source, so behaviour stays reproducible run-to-run.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the subset of `rand::SeedableRng` in use).
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5..=9u32);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(3.4..5.2f64);
            assert!((3.4..5.2).contains(&f));
            let n = r.gen_range(-4i64..8);
            assert!((-4..8).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
