//! Property tests: the CDCL solver against brute-force enumeration.

use lcm_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random CNF instance as (num_vars, clauses of signed var indices).
#[derive(Debug, Clone)]
struct Instance {
    num_vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn instance_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Instance> {
    (2..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=3);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| Instance {
            num_vars: nv,
            clauses,
        })
    })
}

fn brute_force_sat(inst: &Instance, fixed: &[(usize, bool)]) -> bool {
    'outer: for bits in 0u64..(1u64 << inst.num_vars) {
        let val = |v: usize| bits >> v & 1 == 1;
        for &(v, pos) in fixed {
            if val(v) != pos {
                continue 'outer;
            }
        }
        if inst
            .clauses
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| val(v) == pos))
        {
            return true;
        }
    }
    false
}

fn load(inst: &Instance) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..inst.num_vars).map(|_| s.new_var()).collect();
    for c in &inst.clauses {
        s.add_clause(c.iter().map(|&(v, pos)| {
            if pos {
                Lit::pos(vars[v])
            } else {
                Lit::neg(vars[v])
            }
        }));
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_agrees_with_brute_force(inst in instance_strategy(10, 42)) {
        let expected = brute_force_sat(&inst, &[]);
        let (mut s, vars) = load(&inst);
        match s.solve() {
            SolveResult::Sat(m) => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                for c in &inst.clauses {
                    prop_assert!(
                        c.iter().any(|&(v, pos)| m.var_value(vars[v]) == pos),
                        "model does not satisfy clause {c:?}"
                    );
                }
            }
            SolveResult::Unsat(_) => prop_assert!(!expected, "solver said UNSAT, brute force says SAT"),
            SolveResult::Aborted(_) => prop_assert!(false, "no limits set, abort impossible"),
        }
    }

    #[test]
    fn assumptions_agree_with_brute_force(
        inst in instance_strategy(8, 30),
        assumps in proptest::collection::vec((0..8usize, any::<bool>()), 0..4),
    ) {
        let assumps: Vec<(usize, bool)> = assumps
            .into_iter()
            .filter(|&(v, _)| v < inst.num_vars)
            .collect();
        // Conflicting duplicate assumptions are legal inputs: brute force
        // handles them naturally.
        let expected = brute_force_sat(&inst, &assumps);
        let (mut s, vars) = load(&inst);
        let lits: Vec<Lit> = assumps
            .iter()
            .map(|&(v, pos)| if pos { Lit::pos(vars[v]) } else { Lit::neg(vars[v]) })
            .collect();
        match s.solve_with(&lits) {
            SolveResult::Sat(m) => {
                prop_assert!(expected);
                for &l in &lits {
                    prop_assert!(m.value(l), "assumption {l} not honoured");
                }
            }
            SolveResult::Unsat(core) => {
                prop_assert!(!expected);
                // Core is a subset of the assumptions...
                for l in &core {
                    prop_assert!(lits.contains(l), "core literal {l} not an assumption");
                }
                // ...and is itself sufficient for unsatisfiability.
                let core_fixed: Vec<(usize, bool)> = core
                    .iter()
                    .map(|l| (vars.iter().position(|&v| v == l.var()).unwrap(), l.is_pos()))
                    .collect();
                prop_assert!(
                    !brute_force_sat(&inst, &core_fixed),
                    "unsat core {core:?} is not actually unsat"
                );
            }
            SolveResult::Aborted(_) => prop_assert!(false, "no limits set, abort impossible"),
        }
    }

    /// The persistent-incremental usage pattern (one solver serving a
    /// whole sequence of assumption-stack queries, with a learnt-clause
    /// cap small enough to force clause-DB reductions mid-sequence)
    /// answers every query exactly like a fresh solver built for that
    /// query alone — and both agree with brute force. Unsat cores stay
    /// valid (subset of the assumptions, jointly unsat) even when the
    /// clauses that produced them have since been learned, retained,
    /// or deleted by a reduction.
    #[test]
    fn persistent_incremental_agrees_with_fresh_oracle(
        inst in instance_strategy(8, 24),
        stacks in proptest::collection::vec(
            proptest::collection::vec((0..8usize, any::<bool>()), 0..4),
            1..10,
        ),
    ) {
        let (mut persistent, vars) = load(&inst);
        // Tiny cap: a few conflicts trigger a reduction, so the
        // sequence exercises retention *and* deletion.
        persistent.set_learnt_cap(4);
        for stack in &stacks {
            let assumps: Vec<(usize, bool)> = stack
                .iter()
                .copied()
                .filter(|&(v, _)| v < inst.num_vars)
                .collect();
            let to_lits = |vs: &[Var]| -> Vec<Lit> {
                assumps
                    .iter()
                    .map(|&(v, pos)| if pos { Lit::pos(vs[v]) } else { Lit::neg(vs[v]) })
                    .collect()
            };
            let lits = to_lits(&vars);
            let expected = brute_force_sat(&inst, &assumps);
            // Fresh-per-query oracle: new solver, same formula, one query.
            let (mut fresh, fvars) = load(&inst);
            let fres = fresh.solve_with(&to_lits(&fvars));
            let pres = persistent.solve_with(&lits);
            prop_assert_eq!(
                pres.is_sat(),
                fres.is_sat(),
                "persistent and fresh-per-query disagree on {:?}",
                assumps
            );
            prop_assert_eq!(pres.is_sat(), expected, "solver disagrees with brute force");
            if let SolveResult::Unsat(core) = &pres {
                for l in core {
                    prop_assert!(lits.contains(l), "core literal {} not an assumption", l);
                }
                let core_fixed: Vec<(usize, bool)> = core
                    .iter()
                    .map(|l| (vars.iter().position(|&v| v == l.var()).unwrap(), l.is_pos()))
                    .collect();
                prop_assert!(
                    !brute_force_sat(&inst, &core_fixed),
                    "unsat core {core:?} is not actually unsat after retention"
                );
            }
        }
    }

    #[test]
    fn solver_is_reusable_after_any_query(
        inst in instance_strategy(8, 24),
        probe in 0..8usize,
    ) {
        let (mut s, vars) = load(&inst);
        let v = vars[probe % vars.len()];
        let first = s.solve().is_sat();
        let _ = s.solve_with(&[Lit::pos(v)]);
        let _ = s.solve_with(&[Lit::neg(v)]);
        let again = s.solve().is_sat();
        prop_assert_eq!(first, again, "satisfiability changed across queries");
    }
}
