//! Seeded stress tests at sizes beyond the brute-force property tests.

use lcm_sat::{Lit, SolveResult, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut StdRng, nv: usize, nc: usize) -> Vec<Vec<(usize, bool)>> {
    (0..nc)
        .map(|_| {
            (0..3)
                .map(|_| (rng.gen_range(0..nv), rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn load(nv: usize, clauses: &[Vec<(usize, bool)>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
    for c in clauses {
        s.add_clause(c.iter().map(|&(v, pos)| {
            if pos {
                Lit::pos(vars[v])
            } else {
                Lit::neg(vars[v])
            }
        }));
    }
    (s, vars)
}

#[test]
fn models_satisfy_all_clauses_at_scale() {
    let mut rng = StdRng::seed_from_u64(0xdecaf);
    let mut sat = 0;
    let mut unsat = 0;
    for _ in 0..150 {
        // Around the 3-SAT phase transition (ratio ≈ 4.26) to get a mix
        // of satisfiable and unsatisfiable instances.
        let nv = rng.gen_range(20..=40);
        let ratio = rng.gen_range(3.4..5.2);
        let nc = (nv as f64 * ratio) as usize;
        let clauses = random_instance(&mut rng, nv, nc);
        let (mut s, vars) = load(nv, &clauses);
        match s.solve() {
            SolveResult::Sat(m) => {
                sat += 1;
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, pos)| m.var_value(vars[v]) == pos),
                        "model violates a clause"
                    );
                }
            }
            SolveResult::Unsat(_) => unsat += 1,
            SolveResult::Aborted(_) => panic!("no limits set, abort impossible"),
        }
    }
    // The mix must exercise both outcomes.
    assert!(sat > 10, "sat instances: {sat}");
    assert!(unsat > 10, "unsat instances: {unsat}");
}

#[test]
fn solving_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(7);
    let clauses = random_instance(&mut rng, 25, 100);
    let run = || {
        let (mut s, _) = load(25, &clauses);
        match s.solve() {
            SolveResult::Sat(m) => Some(format!("{m:?}")),
            SolveResult::Unsat(_) => None,
            SolveResult::Aborted(_) => panic!("no limits set, abort impossible"),
        }
    };
    assert_eq!(run(), run(), "same instance, same result");
}

#[test]
fn incremental_assumption_sweep_is_consistent_with_fresh_solves() {
    let mut rng = StdRng::seed_from_u64(99);
    let clauses = random_instance(&mut rng, 18, 60);
    let (mut incremental, vars) = load(18, &clauses);
    for i in 0..18 {
        let inc_pos = incremental.solve_with(&[Lit::pos(vars[i])]).is_sat();
        let inc_neg = incremental.solve_with(&[Lit::neg(vars[i])]).is_sat();
        // Fresh solver with the literal as a clause.
        let (mut fresh_p, fv) = load(18, &clauses);
        fresh_p.add_clause([Lit::pos(fv[i])]);
        let (mut fresh_n, fv2) = load(18, &clauses);
        fresh_n.add_clause([Lit::neg(fv2[i])]);
        assert_eq!(inc_pos, fresh_p.solve().is_sat(), "var {i} positive");
        assert_eq!(inc_neg, fresh_n.solve().is_sat(), "var {i} negative");
    }
}

#[test]
fn unsat_cores_shrink_to_relevant_assumptions() {
    // Chain a0 -> a1 -> ... -> a9, plus ¬a9: assuming a0 is unsat and the
    // core must mention a0 (the only assumption).
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
    }
    s.add_clause([Lit::neg(vars[9])]);
    let r = s.solve_with(&[Lit::pos(vars[0])]);
    assert!(!r.is_sat());
    assert_eq!(r.core().unwrap(), &[Lit::pos(vars[0])]);

    // With unrelated assumptions mixed in, they stay out of the core.
    let mut extra = Solver::new();
    let vars: Vec<Var> = (0..12).map(|_| extra.new_var()).collect();
    for w in vars[..10].windows(2) {
        extra.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
    }
    extra.add_clause([Lit::neg(vars[9])]);
    let r = extra.solve_with(&[Lit::pos(vars[10]), Lit::pos(vars[0]), Lit::neg(vars[11])]);
    let core = r.core().unwrap();
    assert!(core.contains(&Lit::pos(vars[0])));
    assert!(!core.contains(&Lit::pos(vars[10])));
    assert!(!core.contains(&Lit::neg(vars[11])));
}
