//! A CDCL SAT solver with assumptions and unsat cores.
//!
//! Clou (§5.2–5.3) encodes the symbolic abstract event graph as a set of
//! first-order constraints over edge-presence variables and discharges
//! leakage queries to an SMT solver. The constraints this repository
//! generates are purely propositional — branch outcomes, speculation
//! windows, alias decisions, and edge presence connected by implications —
//! so a CDCL SAT solver with incremental assumptions fills the same role
//! Z3 fills in the paper (see DESIGN.md for the substitution argument).
//!
//! Features:
//!
//! * two-watched-literal propagation, first-UIP clause learning,
//!   VSIDS-style activity with phase saving, and Luby restarts
//!   ([`Solver`]);
//! * solving under **assumptions** with **unsat core** extraction
//!   ([`Solver::solve_with`]) — the mechanism behind minimal fence
//!   insertion;
//! * a formula-building layer with Tseitin encodings of and/or/implies/iff
//!   and cardinality helpers ([`cnf::Cnf`]).
//!
//! # Examples
//!
//! ```
//! use lcm_sat::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! match s.solve() {
//!     SolveResult::Sat(model) => assert!(model.value(Lit::pos(b))),
//!     _ => unreachable!(),
//! }
//! ```

pub mod cnf;
mod solver;

pub use solver::{AbortReason, LearntStats, Model, SolveLimits, SolveResult, Solver};

use std::fmt;
use std::ops::Not;

/// A boolean variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}",
            if self.is_pos() { "" } else { "¬" },
            self.var().0
        )
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).is_pos());
        assert!(!Lit::neg(v).is_pos());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
    }

    #[test]
    fn literal_display() {
        assert_eq!(Lit::pos(Var(3)).to_string(), "x3");
        assert_eq!(Lit::neg(Var(3)).to_string(), "¬x3");
    }
}
