//! Formula-building helpers: Tseitin encodings and cardinality constraints.
//!
//! [`Cnf`] wraps a [`Solver`] and provides gate-level operations that
//! return a literal representing the gate output, so constraint generators
//! (the S-AEG builder in `lcm-aeg`) can compose formulas without manual
//! clause bookkeeping.

use crate::{Lit, Solver, Var};

/// Clause/gate builder over a [`Solver`].
///
/// # Examples
///
/// ```
/// use lcm_sat::cnf::Cnf;
///
/// let mut f = Cnf::new();
/// let a = f.fresh();
/// let b = f.fresh();
/// let both = f.and(a, b);
/// f.assert_lit(both);
/// let m = f.solver_mut().solve();
/// let m = m.model().unwrap();
/// assert!(m.value(a) && m.value(b));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    solver: Solver,
    true_lit: Option<Lit>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Access to the underlying solver (e.g. to call
    /// [`Solver::solve_with`]).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Consumes the builder, returning the solver.
    pub fn into_solver(self) -> Solver {
        self.solver
    }

    /// A fresh positive literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// A fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// The constant-true literal (allocated lazily).
    pub fn constant_true(&mut self) -> Lit {
        match self.true_lit {
            Some(t) => t,
            None => {
                let t = self.fresh();
                self.solver.add_clause([t]);
                self.true_lit = Some(t);
                t
            }
        }
    }

    /// The constant-false literal.
    pub fn constant_false(&mut self) -> Lit {
        !self.constant_true()
    }

    /// Asserts a literal (unit clause).
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Asserts a disjunction.
    pub fn assert_or(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.solver.add_clause(lits);
    }

    /// Asserts `a → b`.
    pub fn assert_implies(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause([!a, b]);
    }

    /// Asserts `a → (b₁ ∨ b₂ ∨ …)`.
    pub fn assert_implies_or(&mut self, a: Lit, bs: impl IntoIterator<Item = Lit>) {
        let mut c = vec![!a];
        c.extend(bs);
        self.solver.add_clause(c);
    }

    /// Asserts `¬(a ∧ b)`.
    pub fn assert_not_both(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause([!a, !b]);
    }

    /// Tseitin AND gate: returns `t ↔ a ∧ b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let t = self.fresh();
        self.solver.add_clause([!t, a]);
        self.solver.add_clause([!t, b]);
        self.solver.add_clause([t, !a, !b]);
        t
    }

    /// Tseitin OR gate: returns `t ↔ a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let t = self.fresh();
        self.solver.add_clause([t, !a]);
        self.solver.add_clause([t, !b]);
        self.solver.add_clause([!t, a, b]);
        t
    }

    /// N-ary Tseitin AND. The empty conjunction is constant true.
    pub fn and_all(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.constant_true(),
            [l] => *l,
            _ => {
                let t = self.fresh();
                for &l in lits {
                    self.solver.add_clause([!t, l]);
                }
                let mut c = vec![t];
                c.extend(lits.iter().map(|&l| !l));
                self.solver.add_clause(c);
                t
            }
        }
    }

    /// N-ary Tseitin OR. The empty disjunction is constant false.
    pub fn or_all(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.constant_false(),
            [l] => *l,
            _ => {
                let t = self.fresh();
                for &l in lits {
                    self.solver.add_clause([t, !l]);
                }
                let mut c = vec![!t];
                c.extend(lits.iter().copied());
                self.solver.add_clause(c);
                t
            }
        }
    }

    /// Tseitin equivalence: returns `t ↔ (a ↔ b)`.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        let t = self.fresh();
        self.solver.add_clause([!t, !a, b]);
        self.solver.add_clause([!t, a, !b]);
        self.solver.add_clause([t, a, b]);
        self.solver.add_clause([t, !a, !b]);
        t
    }

    /// Asserts that at most one of the literals is true (pairwise
    /// encoding — fine for the small groups this repo produces).
    pub fn assert_at_most_one(&mut self, lits: &[Lit]) {
        for (i, &a) in lits.iter().enumerate() {
            for &b in &lits[i + 1..] {
                self.solver.add_clause([!a, !b]);
            }
        }
    }

    /// Asserts that exactly one of the literals is true.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (an empty exactly-one is unsatisfiable by
    /// construction and always indicates a generator bug).
    pub fn assert_exactly_one(&mut self, lits: &[Lit]) {
        assert!(!lits.is_empty(), "exactly-one over no literals");
        self.assert_or(lits.iter().copied());
        self.assert_at_most_one(lits);
    }

    /// Asserts that at most `k` of the literals are true, via Sinz's
    /// sequential-counter encoding (O(n·k) clauses and auxiliaries).
    /// Used by the fence-minimality certificate in `lcm-fuzz` for its
    /// MaxSAT-style descending-`k` search.
    pub fn assert_at_most_k(&mut self, lits: &[Lit], k: usize) {
        if k >= lits.len() {
            return; // vacuous
        }
        if k == 0 {
            for &l in lits {
                self.assert_lit(!l);
            }
            return;
        }
        if k == 1 {
            self.assert_at_most_one(lits);
            return;
        }
        // s[i][j] ⇔ "at least j+1 of lits[..=i] are true".
        let mut prev: Vec<Lit> = Vec::new();
        for (i, &x) in lits.iter().enumerate() {
            let width = k.min(i + 1);
            let row: Vec<Lit> = (0..width).map(|_| self.fresh()).collect();
            // x → s[i][0]
            self.assert_implies(x, row[0]);
            if i > 0 {
                // s[i-1][j] → s[i][j]
                for j in 0..prev.len().min(width) {
                    self.assert_implies(prev[j], row[j]);
                }
                // x ∧ s[i-1][j-1] → s[i][j]
                for j in 1..width {
                    if j - 1 < prev.len() {
                        self.solver.add_clause([!x, !prev[j - 1], row[j]]);
                    }
                }
                // Overflow: x ∧ s[i-1][k-1] is forbidden.
                if prev.len() == k && i >= k {
                    self.solver.add_clause([!x, !prev[k - 1]]);
                }
            }
            prev = row;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    fn model_of(f: &mut Cnf) -> crate::Model {
        match f.solver_mut().solve() {
            SolveResult::Sat(m) => m,
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn and_gate_semantics() {
        let mut f = Cnf::new();
        let a = f.fresh();
        let b = f.fresh();
        let t = f.and(a, b);
        f.assert_lit(t);
        let m = model_of(&mut f);
        assert!(m.value(a) && m.value(b));

        let mut f = Cnf::new();
        let a = f.fresh();
        let b = f.fresh();
        let t = f.and(a, b);
        f.assert_lit(!t);
        f.assert_lit(a);
        let m = model_of(&mut f);
        assert!(!m.value(b));
    }

    #[test]
    fn or_gate_semantics() {
        let mut f = Cnf::new();
        let a = f.fresh();
        let b = f.fresh();
        let t = f.or(a, b);
        f.assert_lit(!t);
        let m = model_of(&mut f);
        assert!(!m.value(a) && !m.value(b));
    }

    #[test]
    fn iff_gate_semantics() {
        let mut f = Cnf::new();
        let a = f.fresh();
        let b = f.fresh();
        let t = f.iff(a, b);
        f.assert_lit(t);
        f.assert_lit(a);
        let m = model_of(&mut f);
        assert!(m.value(b));

        let mut f = Cnf::new();
        let a = f.fresh();
        let b = f.fresh();
        let t = f.iff(a, b);
        f.assert_lit(!t);
        f.assert_lit(a);
        let m = model_of(&mut f);
        assert!(!m.value(b));
    }

    #[test]
    fn nary_gates() {
        let mut f = Cnf::new();
        let xs: Vec<Lit> = (0..5).map(|_| f.fresh()).collect();
        let all = f.and_all(&xs);
        f.assert_lit(all);
        let m = model_of(&mut f);
        assert!(xs.iter().all(|&x| m.value(x)));

        let mut f = Cnf::new();
        let xs: Vec<Lit> = (0..5).map(|_| f.fresh()).collect();
        let any = f.or_all(&xs);
        f.assert_lit(!any);
        let m = model_of(&mut f);
        assert!(xs.iter().all(|&x| !m.value(x)));
    }

    #[test]
    fn empty_gates_are_constants() {
        let mut f = Cnf::new();
        let t = f.and_all(&[]);
        let fa = f.or_all(&[]);
        f.assert_lit(t);
        f.assert_lit(!fa);
        assert!(f.solver_mut().solve().is_sat());
    }

    #[test]
    fn exactly_one_enforced() {
        let mut f = Cnf::new();
        let xs: Vec<Lit> = (0..4).map(|_| f.fresh()).collect();
        f.assert_exactly_one(&xs);
        let m = model_of(&mut f);
        assert_eq!(xs.iter().filter(|&&x| m.value(x)).count(), 1);

        // Forcing two of them true is unsat.
        f.assert_lit(xs[0]);
        f.assert_lit(xs[2]);
        assert!(!f.solver_mut().solve().is_sat());
    }

    #[test]
    fn implies_or_semantics() {
        let mut f = Cnf::new();
        let a = f.fresh();
        let b = f.fresh();
        let c = f.fresh();
        f.assert_implies_or(a, [b, c]);
        f.assert_lit(a);
        f.assert_lit(!b);
        let m = model_of(&mut f);
        assert!(m.value(c));
    }

    #[test]
    #[should_panic(expected = "exactly-one over no literals")]
    fn exactly_one_empty_panics() {
        Cnf::new().assert_exactly_one(&[]);
    }

    #[test]
    fn at_most_k_bounds_true_count() {
        for n in 1..7usize {
            for k in 0..=n {
                let mut f = Cnf::new();
                let xs: Vec<Lit> = (0..n).map(|_| f.fresh()).collect();
                f.assert_at_most_k(&xs, k);
                let m = model_of(&mut f);
                assert!(
                    xs.iter().filter(|&&x| m.value(x)).count() <= k,
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn at_most_k_allows_exactly_k() {
        let mut f = Cnf::new();
        let xs: Vec<Lit> = (0..6).map(|_| f.fresh()).collect();
        f.assert_at_most_k(&xs, 3);
        for &x in &xs[..3] {
            f.assert_lit(x);
        }
        assert!(f.solver_mut().solve().is_sat(), "k true literals are fine");
    }

    #[test]
    fn at_most_k_rejects_k_plus_one() {
        let mut f = Cnf::new();
        let xs: Vec<Lit> = (0..6).map(|_| f.fresh()).collect();
        f.assert_at_most_k(&xs, 3);
        for &x in &xs[..4] {
            f.assert_lit(x);
        }
        assert!(!f.solver_mut().solve().is_sat(), "k+1 must be unsat");
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut f = Cnf::new();
        let xs: Vec<Lit> = (0..4).map(|_| f.fresh()).collect();
        f.assert_at_most_k(&xs, 0);
        let m = model_of(&mut f);
        assert!(xs.iter().all(|&x| !m.value(x)));
    }
}
