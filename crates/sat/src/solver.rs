//! The CDCL solving engine.

use std::time::Instant;

use crate::{Lit, Var};

/// A satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The truth value of a literal under this model.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable was not part of the solved
    /// instance.
    pub fn value(&self, l: Lit) -> bool {
        self.values[l.var().index()] == l.is_pos()
    }

    /// The truth value of a variable.
    pub fn var_value(&self, v: Var) -> bool {
        self.values[v.index()]
    }
}

/// Why a solve call gave up before reaching SAT or UNSAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The conflict budget of [`SolveLimits::max_conflicts`] ran out.
    Conflicts,
    /// The wall-clock deadline of [`SolveLimits::deadline`] passed.
    Deadline,
}

/// Resource limits for a solve call. The default is unlimited; limits
/// persist across calls until changed via [`Solver::set_limits`].
///
/// These deliberately mirror (a subset of) the resource governor in
/// `lcm-core` without depending on it — `lcm-sat` stays a leaf crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveLimits {
    /// Conflicts this call may spend before aborting. A call that
    /// finishes with at most this many conflicts is unaffected.
    pub max_conflicts: Option<u64>,
    /// Absolute deadline, checked at entry and every 128 conflicts.
    pub deadline: Option<Instant>,
}

impl SolveLimits {
    /// No limits (same as `Default`).
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// Outcome of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable. Under assumptions, carries an unsat core: a subset of
    /// the assumptions that is already jointly unsatisfiable with the
    /// clauses.
    Unsat(Vec<Lit>),
    /// The call gave up (see [`SolveLimits`]) before determining
    /// satisfiability. The solver remains usable; learned clauses from
    /// the aborted call are kept.
    Aborted(AbortReason),
}

impl SolveResult {
    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` if the call hit a resource limit.
    pub fn is_aborted(&self) -> bool {
        matches!(self, SolveResult::Aborted(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// The unsat core, if unsatisfiable.
    pub fn core(&self) -> Option<&[Lit]> {
        match self {
            SolveResult::Unsat(c) => Some(c),
            _ => None,
        }
    }
}

const UNASSIGNED: u8 = 2;

type ClauseRef = u32;

/// Learnt clauses retained before a reduction pass halves the long ones,
/// when no explicit cap is set via [`Solver::set_learnt_cap`].
const DEFAULT_LEARNT_CAP: usize = 8192;

/// Learnt-clause database statistics (see [`Solver::learnt_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearntStats {
    /// Learnt clauses currently retained in the database.
    pub retained: usize,
    /// Learnt clauses deleted by reduction passes over the solver's
    /// lifetime.
    pub deleted: u64,
    /// Reduction passes run.
    pub reductions: u64,
}

/// A CDCL SAT solver (MiniSat-style).
///
/// # Examples
///
/// ```
/// use lcm_sat::{Lit, Solver};
///
/// let mut s = Solver::new();
/// let (a, b) = (s.new_var(), s.new_var());
/// s.add_clause([Lit::pos(a), Lit::pos(b)]);
/// // Under the assumption ¬a ∧ ¬b the instance is unsat, and the core
/// // names both assumptions:
/// let r = s.solve_with(&[Lit::neg(a), Lit::neg(b)]);
/// assert!(!r.is_sat());
/// assert_eq!(r.core().unwrap().len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    // watches[lit.index()] = clause refs watching ¬lit... we watch the
    // first two literals of each clause; watches are indexed by the
    // *falsified* literal.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    contradiction: bool,
    n_conflicts: u64,
    n_decisions: u64,
    n_propagations: u64,
    limits: SolveLimits,
    /// Refs of retained learnt clauses, in learn (age) order.
    learnts: Vec<ClauseRef>,
    /// Clause slots freed by reduction, reusable by `attach_clause`.
    free: Vec<ClauseRef>,
    /// Reduction threshold; `0` means [`DEFAULT_LEARNT_CAP`].
    learnt_cap: usize,
    n_learnts_deleted: u64,
    n_reductions: u64,
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Default::default()
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Statistics: `(conflicts, decisions, propagations)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.n_conflicts, self.n_decisions, self.n_propagations)
    }

    /// Sets the resource limits for subsequent solve calls.
    pub fn set_limits(&mut self, limits: SolveLimits) {
        self.limits = limits;
    }

    /// Sets the learnt-clause cap: when more learnt clauses than this
    /// are retained at the start of a solve call, a reduction pass
    /// deletes the older half of the non-binary ones. `0` restores the
    /// default cap; `usize::MAX` effectively disables reduction.
    pub fn set_learnt_cap(&mut self, cap: usize) {
        self.learnt_cap = cap;
    }

    /// Learnt-clause database statistics: clauses currently retained,
    /// clauses deleted, and reduction passes run.
    pub fn learnt_stats(&self) -> LearntStats {
        LearntStats {
            retained: self.learnts.len(),
            deleted: self.n_learnts_deleted,
            reductions: self.n_reductions,
        }
    }

    /// The limits currently in force.
    pub fn limits(&self) -> SolveLimits {
        self.limits
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn value_lit(&self, l: Lit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNASSIGNED {
            UNASSIGNED
        } else {
            (a == l.is_pos() as u8) as u8
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Duplicate literals are removed; tautological clauses are dropped;
    /// the empty clause makes the instance trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable not created with
    /// [`Self::new_var`].
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert!(
            self.trail_lim.is_empty(),
            "add_clause at decision level 0 only"
        );
        if self.contradiction {
            return;
        }
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l}");
        }
        c.sort_unstable();
        c.dedup();
        // Tautology?
        if c.windows(2)
            .any(|w| w[0] == !w[1] || w[0].var() == w[1].var())
        {
            return;
        }
        // Remove root-level falsified literals; detect satisfied clauses.
        c.retain(|&l| self.value_lit(l) != 0);
        if c.iter().any(|&l| self.value_lit(l) == 1) {
            return;
        }
        match c.len() {
            0 => self.contradiction = true,
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.contradiction = true;
                }
            }
            _ => {
                self.attach_clause(c, false);
            }
        }
    }

    fn attach_clause(&mut self, c: Vec<Lit>, learnt: bool) -> ClauseRef {
        let cref = match self.free.pop() {
            Some(r) => {
                self.clauses[r as usize] = c;
                r
            }
            None => {
                self.clauses.push(c);
                (self.clauses.len() - 1) as ClauseRef
            }
        };
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            (c[0], c[1])
        };
        self.watches[(!w0).index()].push(cref);
        self.watches[(!w1).index()].push(cref);
        if learnt {
            self.learnts.push(cref);
        }
        cref
    }

    /// Deletes the older half of the non-binary learnt clauses once the
    /// database exceeds the cap. Runs only at decision level 0 with no
    /// assumptions applied, so no in-flight reason can dangle: conflict
    /// analysis (`analyze`, `analyze_final`) never follows the reason of
    /// a level-0 assignment, and those are the only assignments alive
    /// here. Deterministic: age order, no heuristics with ties.
    fn maybe_reduce(&mut self) {
        debug_assert!(self.trail_lim.is_empty());
        let cap = if self.learnt_cap == 0 {
            DEFAULT_LEARNT_CAP
        } else {
            self.learnt_cap
        };
        if self.learnts.len() <= cap {
            return;
        }
        self.n_reductions += 1;
        let long: Vec<ClauseRef> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| self.clauses[c as usize].len() > 2)
            .collect();
        let mut dead: Vec<ClauseRef> = long[..long.len() / 2].to_vec();
        // Free-list reuse means learnt refs are not monotone; sort for
        // the membership probes below (still deterministic).
        dead.sort_unstable();
        for &cref in &dead {
            let c = std::mem::take(&mut self.clauses[cref as usize]);
            self.watches[(!c[0]).index()].retain(|&r| r != cref);
            self.watches[(!c[1]).index()].retain(|&r| r != cref);
            self.free.push(cref);
            self.n_learnts_deleted += 1;
        }
        let is_dead = |r: ClauseRef| dead.binary_search(&r).is_ok();
        self.learnts.retain(|&r| !is_dead(r));
        // Level-0 assignments may cite a deleted clause as their reason;
        // analysis never reads those, but clear them so the slot can be
        // reused without leaving a confusable reference behind.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            if self.reason[v].is_some_and(is_dead) {
                self.reason[v] = None;
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, from: Option<ClauseRef>) -> bool {
        if self.value_lit(l) != UNASSIGNED {
            return self.value_lit(l) == 1;
        }
        let v = l.var().index();
        self.assign[v] = l.is_pos() as u8;
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
        true
    }

    /// Unit propagation. Returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.n_propagations += 1;
            let mut i = 0;
            // Take the watch list for p (clauses where ¬p is watched... we
            // index watches by the literal that became true; stored under
            // (!watched_lit).index()). A clause watching literal w is in
            // watches[(!w).index()], so when w becomes false (i.e. !w = p
            // becomes true) we visit it.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            'clauses: while i < ws.len() {
                let cref = ws[i];
                let false_lit = !p;
                // Normalize: watched literals are positions 0 and 1.
                {
                    let c = &mut self.clauses[cref as usize];
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                }
                let first = self.clauses[cref as usize][0];
                if self.value_lit(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref as usize].len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize][k];
                    if self.value_lit(lk) != 0 {
                        self.clauses[cref as usize].swap(1, k);
                        let new_watch = self.clauses[cref as usize][1];
                        self.watches[(!new_watch).index()].push(cref);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore remaining watches and report.
                    self.watches[p.index()].extend_from_slice(&ws[i..]);
                    self.watches[p.index()].extend_from_slice(&ws[..i]);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[p.index()].extend_from_slice(&ws);
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = Some(confl);
        let mut index = self.trail.len();

        loop {
            let c = confl.expect("analysis requires a reason") as usize;
            let start = usize::from(p.is_some());
            let clause_lits: Vec<Lit> = self.clauses[c][start..].to_vec();
            for q in clause_lits {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                if seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            confl = self.reason[lit.var().index()];
        }

        // Backtrack level: max level among learnt[1..].
        let bt = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        self.var_inc *= 1.0 / 0.95;
        (learnt, bt)
    }

    fn cancel_until(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let lim = self.trail_lim[lvl as usize];
        for &l in &self.trail[lim..] {
            let v = l.var().index();
            self.phase[v] = l.is_pos();
            self.assign[v] = UNASSIGNED;
            self.reason[v] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        (0..self.num_vars())
            .filter(|&v| self.assign[v] == UNASSIGNED)
            .max_by(|&a, &b| {
                self.activity[a]
                    .partial_cmp(&self.activity[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|v| Var(v as u32))
    }

    /// Derives an unsat core from a conflict that involves only assumption
    /// levels: the subset of assumptions reachable through reasons.
    fn analyze_final(&self, confl: ClauseRef, n_assumps: usize) -> Vec<Lit> {
        let mut seen = vec![false; self.num_vars()];
        let mut core = Vec::new();
        let mut stack: Vec<Lit> = self.clauses[confl as usize].clone();
        while let Some(l) = stack.pop() {
            let v = l.var().index();
            if seen[v] || self.level[v] == 0 {
                continue;
            }
            seen[v] = true;
            match self.reason[v] {
                Some(r) => {
                    for &q in &self.clauses[r as usize][1..] {
                        stack.push(q);
                    }
                }
                None => {
                    // A decision: within the assumption prefix it is an
                    // assumption literal (the assignment is !l since l is
                    // falsified in the clause context). Record the
                    // assumption as given.
                    let lvl = self.level[v] as usize;
                    if lvl >= 1 && lvl <= n_assumps {
                        core.push(!l);
                    }
                }
            }
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Solves the instance with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On UNSAT, the result carries a subset of `assumptions` that is
    /// already unsatisfiable together with the clauses (the *unsat core*).
    /// The solver remains usable afterwards (assumptions are retracted).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.contradiction {
            return SolveResult::Unsat(Vec::new());
        }
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return SolveResult::Aborted(AbortReason::Deadline);
            }
        }
        self.cancel_until(0);
        self.maybe_reduce();
        let call_conflicts_start = self.n_conflicts;
        let mut restarts = 0u32;
        let mut conflicts_budget = luby(restarts) * 64;

        loop {
            if let Some(confl) = self.propagate() {
                self.n_conflicts += 1;
                let call_conflicts = self.n_conflicts - call_conflicts_start;
                if self
                    .limits
                    .max_conflicts
                    .is_some_and(|max| call_conflicts > max)
                {
                    self.cancel_until(0);
                    return SolveResult::Aborted(AbortReason::Conflicts);
                }
                if self.limits.deadline.is_some() && call_conflicts % 128 == 0 {
                    let d = self.limits.deadline.unwrap();
                    if Instant::now() >= d {
                        self.cancel_until(0);
                        return SolveResult::Aborted(AbortReason::Deadline);
                    }
                }
                if self.decision_level() == 0 {
                    self.contradiction = true;
                    self.cancel_until(0);
                    return SolveResult::Unsat(Vec::new());
                }
                if (self.decision_level() as usize) <= assumptions.len() {
                    // Conflict entirely under assumptions.
                    let core = self.analyze_final(confl, assumptions.len());
                    self.cancel_until(0);
                    return SolveResult::Unsat(core);
                }
                let (learnt, bt) = self.analyze(confl);
                let bt = bt.min(self.decision_level() - 1);
                self.cancel_until(bt);
                let assert_lit = learnt[0];
                if learnt.len() == 1 {
                    self.cancel_until(0);
                    self.enqueue(assert_lit, None);
                } else {
                    let cref = self.attach_clause(learnt, true);
                    self.enqueue(assert_lit, Some(cref));
                }
                conflicts_budget -= 1;
                if conflicts_budget == 0 {
                    restarts += 1;
                    conflicts_budget = luby(restarts) * 64;
                    self.cancel_until(0);
                }
                continue;
            }

            // Re-apply assumptions that were rolled back (by restarts or
            // deep backjumps).
            if (self.decision_level() as usize) < assumptions.len() {
                let a = assumptions[self.decision_level() as usize];
                match self.value_lit(a) {
                    1 => {
                        // Already implied: introduce an empty decision level
                        // so indices stay aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    0 => {
                        // Assumption conflicts with current implications.
                        let core = self.final_core_for_falsified(a, assumptions.len());
                        self.cancel_until(0);
                        return SolveResult::Unsat(core);
                    }
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
                continue;
            }

            match self.pick_branch_var() {
                None => {
                    let values = (0..self.num_vars()).map(|v| self.assign[v] == 1).collect();
                    self.cancel_until(0);
                    return SolveResult::Sat(Model { values });
                }
                Some(v) => {
                    self.n_decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let lit = if self.phase[v.index()] {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    };
                    self.enqueue(lit, None);
                }
            }
        }
    }

    /// Core when an assumption is directly falsified by implications of
    /// earlier assumptions.
    fn final_core_for_falsified(&self, a: Lit, n_assumps: usize) -> Vec<Lit> {
        let mut seen = vec![false; self.num_vars()];
        let mut core = vec![a];
        // Trace from the falsified literal itself: its variable's
        // assignment (¬a) is what contradicts the assumption.
        let mut stack = vec![a];
        while let Some(l) = stack.pop() {
            let v = l.var().index();
            if seen[v] || self.level[v] == 0 {
                continue;
            }
            seen[v] = true;
            match self.reason[v] {
                Some(r) => {
                    for &q in &self.clauses[r as usize][1..] {
                        stack.push(q);
                    }
                }
                None => {
                    let lvl = self.level[v] as usize;
                    if lvl >= 1 && lvl <= n_assumps {
                        core.push(!l);
                    }
                }
            }
        }
        core.sort_unstable();
        core.dedup();
        core
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed.
fn luby(i: u32) -> u64 {
    let mut i = i as u64 + 1;
    loop {
        let k = 64 - i.leading_zeros() as u64;
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i -= (1 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn n(v: Var) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([p(a)]);
        assert!(s.solve().is_sat());
        s.add_clause([n(a)]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn empty_instance_is_sat() {
        assert!(Solver::new().solve().is_sat());
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause([n(w[0]), p(w[1])]); // v_i -> v_{i+1}
        }
        s.add_clause([p(vars[0])]);
        match s.solve() {
            SolveResult::Sat(m) => {
                for &v in &vars {
                    assert!(m.var_value(v));
                }
            }
            _ => panic!("should be sat"),
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 xor x2, x2 xor x3, x1 xor x3 with odd parity constraints is
        // unsat: encode (a!=b), (b!=c), (a!=c).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        for (x, y) in [(a, b), (b, c), (a, c)] {
            s.add_clause([p(x), p(y)]);
            s.add_clause([n(x), n(y)]);
        }
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut v = [[Var(0); 2]; 3];
        for row in &mut v {
            for x in row.iter_mut() {
                *x = s.new_var();
            }
        }
        for row in &v {
            s.add_clause([p(row[0]), p(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([n(v[i1][j]), n(v[i2][j])]);
                }
            }
        }
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        let clauses: Vec<Vec<Lit>> = vec![
            vec![p(vars[0]), n(vars[1]), p(vars[2])],
            vec![n(vars[0]), p(vars[3])],
            vec![p(vars[4]), p(vars[5])],
            vec![n(vars[4]), n(vars[5])],
            vec![n(vars[2]), n(vars[3]), p(vars[6])],
            vec![p(vars[7]), n(vars[6])],
            vec![n(vars[7]), p(vars[1])],
        ];
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                for c in &clauses {
                    assert!(c.iter().any(|&l| m.value(l)), "clause {c:?} unsatisfied");
                }
            }
            _ => panic!("should be sat"),
        }
    }

    #[test]
    fn assumptions_flip_satisfiability() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([n(a), p(b)]);
        s.add_clause([n(b)]);
        assert!(s.solve().is_sat());
        let r = s.solve_with(&[p(a)]);
        assert!(!r.is_sat());
        let core = r.core().unwrap();
        assert_eq!(core, &[p(a)]);
        // Solver usable again afterwards.
        assert!(s.solve().is_sat());
        assert!(s.solve_with(&[n(a)]).is_sat());
    }

    #[test]
    fn unsat_core_is_minimal_subset_here() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        s.add_clause([n(a), n(b)]); // a ∧ b impossible
        let r = s.solve_with(&[p(a), p(c), p(b), p(d)]);
        assert!(!r.is_sat());
        let core = r.core().unwrap();
        assert!(core.contains(&p(a)));
        assert!(core.contains(&p(b)));
        assert!(!core.contains(&p(c)));
        assert!(!core.contains(&p(d)));
    }

    #[test]
    fn implied_assumption_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([p(a)]);
        s.add_clause([n(a), p(b)]);
        // Both assumptions already implied.
        assert!(s.solve_with(&[p(a), p(b)]).is_sat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..9).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    /// A pigeonhole instance big enough to guarantee conflicts.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let v: Vec<Vec<Var>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var()).collect())
            .collect();
        for row in &v {
            s.add_clause(row.iter().map(|&x| p(x)));
        }
        for j in 0..n {
            for i1 in 0..n + 1 {
                for i2 in (i1 + 1)..n + 1 {
                    s.add_clause([n_(v[i1][j]), n_(v[i2][j])]);
                }
            }
        }
        s
    }

    fn n_(v: Var) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn conflict_limit_aborts_and_solver_stays_usable() {
        let mut s = pigeonhole(6);
        s.set_limits(SolveLimits {
            max_conflicts: Some(5),
            deadline: None,
        });
        let r = s.solve();
        assert_eq!(r, SolveResult::Aborted(AbortReason::Conflicts));
        assert!(r.model().is_none());
        assert!(r.core().is_none());
        // Lifting the limit finds the real answer on the same solver.
        s.set_limits(SolveLimits::unlimited());
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn past_deadline_aborts_before_any_work() {
        let mut s = pigeonhole(4);
        s.set_limits(SolveLimits {
            max_conflicts: None,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        });
        assert_eq!(s.solve(), SolveResult::Aborted(AbortReason::Deadline));
        s.set_limits(SolveLimits::unlimited());
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn generous_limits_do_not_change_results() {
        let mut s = pigeonhole(4);
        s.set_limits(SolveLimits {
            max_conflicts: Some(u64::MAX),
            deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
        });
        assert!(!s.solve().is_sat());
    }

    /// Pigeonhole with a selector literal: satisfiable outright, the
    /// full unsat pigeonhole under the assumption `¬sel` — so repeated
    /// queries keep generating conflicts on a reusable solver.
    fn guarded_pigeonhole(n: usize) -> (Solver, Lit) {
        let mut s = Solver::new();
        let sel = Lit::pos(s.new_var());
        let v: Vec<Vec<Var>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var()).collect())
            .collect();
        for row in &v {
            s.add_clause(row.iter().map(|&x| p(x)).chain(std::iter::once(sel)));
        }
        for j in 0..n {
            for i1 in 0..n + 1 {
                for i2 in (i1 + 1)..n + 1 {
                    s.add_clause([n_(v[i1][j]), n_(v[i2][j])]);
                }
            }
        }
        (s, sel)
    }

    #[test]
    fn learnt_reduction_bounds_db_and_preserves_answers() {
        let (mut s, sel) = guarded_pigeonhole(6);
        s.set_learnt_cap(16);
        for _ in 0..3 {
            assert!(s.solve().is_sat());
            assert!(!s.solve_with(&[!sel]).is_sat());
        }
        let st = s.learnt_stats();
        assert!(st.reductions >= 1, "cap 16 must trigger reduction: {st:?}");
        assert!(st.deleted > 0, "reduction must delete clauses: {st:?}");
    }

    #[test]
    fn reduction_reuses_freed_clause_slots() {
        let (mut s, sel) = guarded_pigeonhole(6);
        s.set_learnt_cap(8);
        assert!(!s.solve_with(&[!sel]).is_sat());
        s.maybe_reduce();
        let freed = s.free.len();
        assert!(freed > 0, "reduction must free slots");
        for &r in &s.free {
            assert!(s.clauses[r as usize].is_empty(), "freed slot not cleared");
            assert!(
                !s.learnts.contains(&r),
                "freed slot still tracked as learnt"
            );
        }
        // A new clause must fill a freed slot instead of growing the arena.
        let before = s.clauses.len();
        let (x, y, z) = (s.new_var(), s.new_var(), s.new_var());
        s.add_clause([p(x), p(y), p(z)]);
        assert_eq!(s.clauses.len(), before, "clause arena must not grow");
        assert_eq!(s.free.len(), freed - 1);
    }

    #[test]
    fn cloned_solver_diverges_independently() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([p(a), p(b)]);
        let mut t = s.clone();
        t.add_clause([n(a)]);
        t.add_clause([n(b)]);
        assert!(!t.solve().is_sat());
        assert!(s.solve().is_sat());
        assert!(s.solve_with(&[n(a)]).is_sat());
    }

    #[test]
    fn solver_reusable_across_many_queries() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        s.add_clause([p(vars[0]), p(vars[1]), p(vars[2])]);
        s.add_clause([n(vars[0]), p(vars[3])]);
        for v in vars.iter().take(3) {
            assert!(s.solve_with(&[p(*v)]).is_sat());
            assert!(s.solve_with(&[n(*v)]).is_sat());
        }
        s.add_clause([n(vars[3])]);
        assert!(!s.solve_with(&[p(vars[0])]).is_sat());
        assert!(s.solve_with(&[p(vars[1])]).is_sat());
    }
}
