//! Per-function resource governance for graceful degradation.
//!
//! Clou's evaluation (§6, Table 2) runs every function under a
//! wall-clock timeout and still reports the functions that finish. The
//! [`ResourceGovernor`] reproduces that discipline for the whole
//! pipeline: one governor per analyzed function carries the configured
//! [`Budgets`] (deadline, solver-conflict budget, S-AEG size budget)
//! plus any armed [`FaultPlan`](crate::fault::FaultPlan) sites, and the
//! pipeline polls it at cheap points — engine loop heads, feasibility
//! queries, phase boundaries.
//!
//! Degradation is *sticky and first-wins*: the first exceeded budget
//! (or injected fault) trips the governor with a typed
//! [`AnalysisError`]; every subsequent poll answers "stop" and the
//! engines drain quickly without threading `Result` through every
//! signature. The driver reads [`ResourceGovernor::tripped`] at the end
//! and marks the function `Degraded` instead of aborting the module.
//!
//! With no budgets set and no faults armed (the default), every check
//! is a single relaxed atomic load — the governed pipeline is
//! observationally identical to the ungoverned one.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::fault::{site, FaultPlan};

/// Which budget a [`AnalysisError::BudgetExceeded`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Total SAT-solver conflicts across the function's queries.
    SolverConflicts,
    /// S-AEG event count after construction.
    SaegNodes,
    /// S-AEG dependency-edge count after construction.
    SaegEdges,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::SolverConflicts => "solver conflicts",
            BudgetKind::SaegNodes => "S-AEG nodes",
            BudgetKind::SaegEdges => "S-AEG edges",
        })
    }
}

/// Why a function's analysis was degraded rather than completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The per-function wall-clock deadline passed.
    Timeout {
        /// The configured budget, in milliseconds (0 if fault-injected
        /// with no timeout configured).
        budget_ms: u64,
    },
    /// A resource budget was exhausted.
    BudgetExceeded { kind: BudgetKind },
    /// The input IR could not be turned into an A-CFG.
    MalformedIr { message: String },
    /// The worker thread analyzing this function panicked.
    WorkerPanic { message: String },
    /// The SAT backend aborted a query for a reason not attributable
    /// to our own budgets.
    SolverAbort,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Timeout { budget_ms } => {
                write!(f, "timeout (budget {budget_ms} ms)")
            }
            AnalysisError::BudgetExceeded { kind } => {
                write!(f, "budget exceeded: {kind}")
            }
            AnalysisError::MalformedIr { message } => {
                write!(f, "malformed IR: {message}")
            }
            AnalysisError::WorkerPanic { message } => {
                write!(f, "worker panic: {message}")
            }
            AnalysisError::SolverAbort => f.write_str("solver abort"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Per-function resource budgets. The default is fully unlimited, which
/// makes the governor a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Wall-clock deadline per function.
    pub timeout: Option<Duration>,
    /// Total solver conflicts per function (summed over its queries).
    pub max_conflicts: Option<u64>,
    /// S-AEG event-count ceiling, checked once after construction.
    pub max_saeg_nodes: Option<usize>,
    /// S-AEG dependency-edge ceiling, checked once after construction.
    pub max_saeg_edges: Option<usize>,
}

impl Budgets {
    /// No limits at all (same as `Default`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_conflicts.is_none()
            && self.max_saeg_nodes.is_none()
            && self.max_saeg_edges.is_none()
    }
}

/// How many strided polls skip the `Instant::now()` deadline read.
/// Poll points sit in engine inner loops, so the common case must be a
/// couple of atomic ops; 32 keeps worst-case deadline overshoot tiny.
const POLL_STRIDE: u64 = 32;

fn governor_trips() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::GOVERNOR_TRIPS,
            "Resource-governor budget trips (timeouts, conflict/node/edge budgets, injected faults)",
        )
    })
}

/// One per analyzed function; shared across the solver/AEG/engine
/// layers via `Arc`. All state is atomic, so polling needs no lock.
#[derive(Debug)]
pub struct ResourceGovernor {
    start: Instant,
    deadline: Option<Instant>,
    budgets: Budgets,
    /// Solver conflicts charged so far via [`charge_conflicts`].
    ///
    /// [`charge_conflicts`]: ResourceGovernor::charge_conflicts
    conflicts_used: AtomicU64,
    /// Strided-poll counter (see [`POLL_STRIDE`]).
    polls: AtomicU64,
    /// Fast path: set once the governor has tripped.
    dead: AtomicBool,
    /// First error wins; later trips are ignored.
    error: Mutex<Option<AnalysisError>>,
    faults: FaultPlan,
    fn_index: usize,
    /// False when budgets are unlimited and no faults are armed: every
    /// check reduces to one relaxed load of `dead`.
    active: bool,
}

impl ResourceGovernor {
    pub fn new(budgets: Budgets, faults: &FaultPlan, fn_index: usize) -> Self {
        let start = Instant::now();
        let active = !budgets.is_unlimited() || !faults.is_empty();
        Self {
            start,
            deadline: budgets.timeout.map(|t| start + t),
            budgets,
            conflicts_used: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            error: Mutex::new(None),
            faults: faults.clone(),
            fn_index,
            active,
        }
    }

    /// Index of the governed function in module order (fault keys).
    pub fn fn_index(&self) -> usize {
        self.fn_index
    }

    /// Does the armed fault plan fire `site` for this function?
    #[inline]
    pub fn fault_fires(&self, site: &str) -> bool {
        self.active && self.faults.fires(site, self.fn_index)
    }

    /// Trips the governor; the first error wins and later calls no-op.
    /// The first trip per governor also counts into the process-wide
    /// `lcm_governor_trips_total` metric.
    pub fn trip(&self, err: AnalysisError) {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
            governor_trips().inc();
        }
        self.dead.store(true, Ordering::Release);
    }

    /// The error this governor tripped with, if any.
    pub fn tripped(&self) -> Option<AnalysisError> {
        if !self.dead.load(Ordering::Acquire) {
            return None;
        }
        self.error.lock().unwrap().clone()
    }

    /// Cheap liveness check without advancing the poll counter.
    #[inline]
    pub fn ok(&self) -> bool {
        !self.dead.load(Ordering::Relaxed)
    }

    fn timeout_error(&self) -> AnalysisError {
        AnalysisError::Timeout {
            budget_ms: self
                .budgets
                .timeout
                .map(|t| t.as_millis() as u64)
                .unwrap_or(0),
        }
    }

    /// Strided poll for hot loops: checks the deadline (and the
    /// `timeout` fault site) every [`POLL_STRIDE`] calls. Returns false
    /// once tripped — callers break out of their loop.
    #[inline]
    pub fn poll(&self) -> bool {
        if !self.active {
            return self.ok();
        }
        if !self.ok() {
            return false;
        }
        if self.polls.fetch_add(1, Ordering::Relaxed) % POLL_STRIDE == 0 {
            return self.poll_now();
        }
        true
    }

    /// Unstrided poll for phase boundaries: always checks the deadline.
    #[inline]
    pub fn poll_now(&self) -> bool {
        if !self.active {
            return self.ok();
        }
        if !self.ok() {
            return false;
        }
        if self.fault_fires(site::TIMEOUT) {
            self.trip(self.timeout_error());
            return false;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.trip(self.timeout_error());
                return false;
            }
        }
        true
    }

    /// Trips with the timeout error; used when a lower layer (e.g. the
    /// SAT backend) observed the deadline pass itself.
    pub fn trip_timeout(&self) {
        self.trip(self.timeout_error());
    }

    /// Conflicts the solver may still spend, if a budget is set.
    pub fn remaining_conflicts(&self) -> Option<u64> {
        self.budgets
            .max_conflicts
            .map(|max| max.saturating_sub(self.conflicts_used.load(Ordering::Relaxed)))
    }

    /// The absolute deadline, if a timeout is configured.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Charges `n` solver conflicts against the budget; trips (and
    /// returns false) once the budget is strictly exceeded.
    #[inline]
    pub fn charge_conflicts(&self, n: u64) -> bool {
        if !self.active {
            return self.ok();
        }
        let used = self.conflicts_used.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.budgets.max_conflicts {
            if used > max {
                self.trip(AnalysisError::BudgetExceeded {
                    kind: BudgetKind::SolverConflicts,
                });
                return false;
            }
        }
        self.ok()
    }

    /// Post-construction S-AEG size check (and the `node_budget` /
    /// `edge_budget` fault sites). Returns false once tripped.
    #[inline]
    pub fn check_saeg(&self, nodes: usize, edges: usize) -> bool {
        if !self.active {
            return self.ok();
        }
        let node_over = self.fault_fires(site::NODE_BUDGET)
            || self.budgets.max_saeg_nodes.is_some_and(|max| nodes > max);
        if node_over {
            self.trip(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegNodes,
            });
            return false;
        }
        let edge_over = self.fault_fires(site::EDGE_BUDGET)
            || self.budgets.max_saeg_edges.is_some_and(|max| edges > max);
        if edge_over {
            self.trip(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegEdges,
            });
            return false;
        }
        self.ok()
    }

    /// Time since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_governor_never_trips() {
        let gov = ResourceGovernor::new(Budgets::default(), &FaultPlan::default(), 0);
        for _ in 0..1000 {
            assert!(gov.poll());
        }
        assert!(gov.poll_now());
        assert!(gov.charge_conflicts(u64::MAX / 2));
        assert!(gov.check_saeg(usize::MAX, usize::MAX));
        assert!(gov.tripped().is_none());
    }

    #[test]
    fn zero_timeout_trips_on_first_unstrided_poll() {
        let budgets = Budgets {
            timeout: Some(Duration::ZERO),
            ..Budgets::default()
        };
        let gov = ResourceGovernor::new(budgets, &FaultPlan::default(), 0);
        assert!(!gov.poll_now());
        assert_eq!(gov.tripped(), Some(AnalysisError::Timeout { budget_ms: 0 }));
    }

    #[test]
    fn strided_poll_checks_on_first_call() {
        let budgets = Budgets {
            timeout: Some(Duration::ZERO),
            ..Budgets::default()
        };
        let gov = ResourceGovernor::new(budgets, &FaultPlan::default(), 0);
        // fetch_add returns 0 on the first call, so the very first
        // strided poll already consults the clock.
        assert!(!gov.poll());
    }

    #[test]
    fn conflict_budget_trips_when_exceeded() {
        let budgets = Budgets {
            max_conflicts: Some(10),
            ..Budgets::default()
        };
        let gov = ResourceGovernor::new(budgets, &FaultPlan::default(), 0);
        assert!(gov.charge_conflicts(10)); // exactly at budget: fine
        assert_eq!(gov.remaining_conflicts(), Some(0));
        assert!(!gov.charge_conflicts(1));
        assert_eq!(
            gov.tripped(),
            Some(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SolverConflicts
            })
        );
    }

    #[test]
    fn saeg_budgets_trip() {
        let budgets = Budgets {
            max_saeg_nodes: Some(5),
            max_saeg_edges: Some(100),
            ..Budgets::default()
        };
        let gov = ResourceGovernor::new(budgets.clone(), &FaultPlan::default(), 0);
        assert!(gov.check_saeg(5, 100));
        let gov = ResourceGovernor::new(budgets.clone(), &FaultPlan::default(), 0);
        assert!(!gov.check_saeg(6, 0));
        assert_eq!(
            gov.tripped(),
            Some(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegNodes
            })
        );
        let gov = ResourceGovernor::new(budgets, &FaultPlan::default(), 0);
        assert!(!gov.check_saeg(0, 101));
        assert_eq!(
            gov.tripped(),
            Some(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegEdges
            })
        );
    }

    #[test]
    fn first_trip_wins() {
        let gov = ResourceGovernor::new(Budgets::default(), &FaultPlan::default(), 0);
        gov.trip(AnalysisError::SolverAbort);
        gov.trip(AnalysisError::Timeout { budget_ms: 7 });
        assert_eq!(gov.tripped(), Some(AnalysisError::SolverAbort));
        assert!(!gov.ok());
    }

    #[test]
    fn fault_sites_keyed_by_index() {
        let faults = FaultPlan::default().arm(site::TIMEOUT, Some(3));
        let gov = ResourceGovernor::new(Budgets::default(), &faults, 3);
        assert!(!gov.poll_now());
        assert!(matches!(
            gov.tripped(),
            Some(AnalysisError::Timeout { budget_ms: 0 })
        ));
        let gov = ResourceGovernor::new(Budgets::default(), &faults, 2);
        assert!(gov.poll_now());
        assert!(gov.tripped().is_none());
    }
}
